#!/usr/bin/env python
"""Hierarchical synthesis: latch cutting plus subcircuit timing (§3, §5).

The paper's second motivating application: two communicating sequential
components must meet a cycle time; only one component may be re-optimized,
so the cycle-time constraint must be mapped onto its boundary.  The recipe
(Section 3) is to cut at latch boundaries — latch inputs become primary
outputs required at (cycle - setup), latch outputs become primary inputs
arriving at the clock edge — and then run the Section 5 flexibility
analyses at the component boundary.

This script builds a small sequential design in BLIF, cuts it, and prints
the complete timing specification of an internal subcircuit: the
arrival-time table at its inputs (with satisfiability don't cares) and the
required-time relation at its outputs.

Run:  python examples/hierarchical_flexibility.py
"""

from repro.core.flexibility import subcircuit_timing
from repro.core.required_time import format_time
from repro.timing import cut_at_latches

SEQUENTIAL_BLIF = """
.model pipeline
.inputs x1 x2 x3
.outputs out
# combinational front: the paper's Figure 6 structure
.names x2 x3 a
11 1
.names x1 a u1
11 1
.names x1 a u2
1- 1
-1 1
# consumer stage feeding a latch
.names u1 u2 d
1- 1
-1 1
.latch d q re clk 0
.names q out
1 1
.end
"""

CYCLE_TIME = 6.0
SETUP_TIME = 0.5


def main() -> None:
    cut = cut_at_latches(SEQUENTIAL_BLIF, cycle_time=CYCLE_TIME, setup_time=SETUP_TIME)
    net = cut.network
    print(f"cut network: {net.num_inputs} PI, {net.num_outputs} PO, {net.num_gates} gates")
    print(f"latch boundary: D={cut.latch_inputs}, Q={cut.latch_outputs}")
    print("boundary timing constraints:")
    for po, t in sorted(cut.required.items()):
        print(f"  required({po}) = {t:g}")
    for pi, t in sorted(cut.arrivals.items()):
        print(f"  arrival({pi}) = {t:g}")

    # ------------------------------------------------------------------
    # the subcircuit to re-optimize: the consumer gate d with boundary
    # inputs (u1, u2)
    print("\n=== Section 5 timing specification of the subcircuit ===")
    spec = subcircuit_timing(
        net,
        sub_inputs=["u1", "u2"],
        sub_outputs=["d"],
        input_arrivals=cut.arrivals,
        output_required=cut.required,
    )

    print("arrival flexibility at (u1, u2)  [Section 5.1]:")
    for vec, tuples in spec.arrivals.rows():
        label = "".join(str(b) for b in vec)
        if spec.arrivals.is_dont_care(vec):
            print(f"  u1u2={label}: never driven (satisfiability don't care)")
        else:
            rendered = ", ".join(
                "(" + ", ".join(format_time(t) for t in tup) + ")"
                for tup in tuples
            )
            print(f"  u1u2={label}: arrival tuples {rendered}")

    print("\nrequired flexibility at d  [Section 5.2]:")
    for vec, profiles in spec.required.rows():
        label = "".join(str(b) for b in vec)
        if not profiles:
            print(f"  d={label}: unconstrained")
            continue
        for profile in sorted(profiles, key=str):
            r0, r1 = profile.of("d")
            active = r0 if vec[0] == 0 else r1
            print(f"  d={label}: stable by {format_time(active)}")

    print(
        "\nany resynthesis of the subcircuit meeting this specification "
        "preserves the pipeline's cycle time — without ever looking at "
        "the rest of the design."
    )


if __name__ == "__main__":
    main()
