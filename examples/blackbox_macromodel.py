#!/usr/bin/env python
"""Hierarchical timing with black-box macro-models (the paper's [7] idea).

The conclusions of the paper point to a follow-up: "an abstract delay
model for black boxes.  The delay model can be accurate taking into
account false paths, without giving the internal details of the box."

This script extracts such a model from a carry-skip block, shows that

1. a naive pin-to-pin constant-delay abstraction (the industry-standard
   black box) over-reports the block's delay because it charges the false
   ripple path, while the macro-model stays exact for *any* combination
   of input arrival times, and
2. macro-models compose: chaining two block models reproduces the flat
   whole-adder analysis without ever looking inside the blocks again.

Run:  python examples/blackbox_macromodel.py
"""

from repro.circuits import carry_skip_block
from repro.core.macromodel import TimingMacroModel, compose_arrivals
from repro.timing import FunctionalTiming, TopologicalTiming
from repro.timing.ternary import stabilization_times


def main() -> None:
    block = carry_skip_block()
    print(
        f"box: {block.name} ({block.num_inputs} PI, {block.num_gates} gates)"
    )

    model = TimingMacroModel.extract(block)
    print(
        f"macro-model footprint: {model.size()} (vector, alternative) atoms "
        "- no gate-level detail retained\n"
    )

    # ------------------------------------------------------------------
    print("=== exactness vs the naive pin-to-pin abstraction ===")
    topo = TopologicalTiming.analyze(block, output_required=0.0)
    print(f"  naive black box (topological pin-to-pin): delay {topo.topological_delay():g}")
    flat_true = FunctionalTiming(block, engine='bdd').true_arrival('cout')
    print(f"  exact XBD0 delay of the box:              {flat_true:g}")
    print(f"  macro-model worst arrival (zero inputs):  {model.worst_arrival('cout', {}):g}")

    print("\n  with the carry-in arriving late (arr(cin) = 10):")
    arr = {pi: 0.0 for pi in block.inputs}
    arr["cin"] = 10.0
    naive = 10.0 + topo.topological_delay()  # pin-to-pin charges the ripple
    exact = model.worst_arrival("cout", arr)
    print(f"  naive pin-to-pin estimate: {naive:g}")
    print(
        f"  macro-model (exact):       {exact:g}   "
        "(the ripple path from cin is false; only the skip path counts)"
    )

    # ------------------------------------------------------------------
    print("\n=== composition: two blocks back to back ===")
    # rename block 2's interface so the blocks chain: cout of block 1
    # drives cin of block 2
    block1 = carry_skip_block()
    block1.name = "blk1"
    block2 = _renamed_block()
    m1 = TimingMacroModel.extract(block1)
    m2 = TimingMacroModel.extract(block2)

    # flat reference: merge the two blocks into one network
    flat = _flat_two_blocks()

    import itertools

    worst_gap = 0.0
    checked = 0
    pis = flat.inputs
    for bits in itertools.product((0, 1), repeat=len(pis)):
        env = dict(zip(pis, bits))
        composed = compose_arrivals(
            [m1, m2],
            system_vector=env,
            primary_arrivals={pi: 0.0 for pi in pis},
        )
        stab = stabilization_times(flat, env)
        gap = abs(composed["cout2"] - stab["cout2"])
        worst_gap = max(worst_gap, gap)
        checked += 1
    print(
        f"  checked {checked} input vectors: composed-model arrival == "
        f"flat analysis (max gap {worst_gap:g})"
    )


def _renamed_block():
    from repro.network import Network

    src = carry_skip_block()
    net = Network("blk2")
    renaming = {"cin": "cout", "p0": "q0", "p1": "q1", "g0": "h0", "g1": "h1"}
    for pi in src.inputs:
        net.add_input(renaming[pi])
    for name in src.topological_order():
        node = src.nodes[name]
        if node.is_input:
            continue
        new = "cout2" if name == "cout" else f"b2_{name}"
        renaming[name] = new
        net.add_node(new, [renaming[f] for f in node.fanins], node.cover.copy())
    net.set_outputs(["cout2"])
    return net


def _flat_two_blocks():
    from repro.network import Network

    b1 = carry_skip_block()
    b2 = _renamed_block()
    net = Network("flat")
    for pi in ["cin", "p0", "p1", "g0", "g1", "q0", "q1", "h0", "h1"]:
        net.add_input(pi)
    for name in b1.topological_order():
        node = b1.nodes[name]
        if node.is_input:
            continue
        net.add_node(name, list(node.fanins), node.cover.copy())
    for name in b2.topological_order():
        node = b2.nodes[name]
        if node.is_input:
            continue
        net.add_node(name, list(node.fanins), node.cover.copy())
    net.set_outputs(["cout2"])
    return net


if __name__ == "__main__":
    main()
