#!/usr/bin/env python
"""Performance-oriented resynthesis: true slack via false-path detection.

The paper's first motivating application (Section 3): when a subcircuit is
to be re-synthesized for speed, the timing budget handed to the synthesis
tool should come from false-path-aware analysis — topological required
times "may completely mislead resynthesis due to the unawareness of false
paths in the driven circuit."

Scenario reproduced here: a *driving* cone feeds the carry-in of a
*driven* carry-skip block.  Topological backward propagation budgets the
driver against the block's ripple path; but the block-traversing ripple
path is false (propagating through both mux stages needs p0 = p1 = 1,
which activates the skip), so the true constraint is only the much shorter
skip path.  We compute the boundary requirement both ways and print the
slack each grants the driver.

Run:  python examples/resynthesis_slack.py
"""

from repro import Network
from repro.core.flexibility import required_flexibility
from repro.core.required_time import format_time
from repro.sop import Cover
from repro.timing import TopologicalTiming
from repro.timing.topological import required_times


def build_system() -> Network:
    net = Network("resynth_demo")
    for pi in ["d0", "d1", "p0", "p1", "g0", "g1"]:
        net.add_input(pi)

    # the driving subcircuit: its output `drv` is the block's carry-in and
    # is the signal to be resynthesized
    net.add_gate("drv_t", "AND", ["d0", "d1"])
    net.add_gate("drv", "OR", ["drv_t", "d0"])

    # the driven carry-skip block (cin = drv), padded so the ripple path
    # is structurally longest
    net.add_gate("cin_d1", "BUF", ["drv"])
    net.add_gate("cin_d2", "BUF", ["cin_d1"])
    net.add_gate("np0", "NOT", ["p0"])
    net.add_gate("np1", "NOT", ["p1"])
    net.add_gate("a1", "AND", ["p0", "cin_d2"])
    net.add_gate("b1", "AND", ["np0", "g0"])
    net.add_gate("c1", "OR", ["a1", "b1"])
    net.add_gate("a2", "AND", ["p1", "c1"])
    net.add_gate("b2", "AND", ["np1", "g1"])
    net.add_gate("c2", "OR", ["a2", "b2"])
    net.add_gate("sk", "AND", ["p0", "p1"])
    net.add_gate("nsk", "NOT", ["sk"])
    net.add_gate("u", "AND", ["sk", "drv"])
    net.add_gate("v", "AND", ["nsk", "c2"])
    net.add_gate("cout", "OR", ["u", "v"])
    net.set_outputs(["cout"])
    return net


def main() -> None:
    net = build_system()
    tt0 = TopologicalTiming.analyze(net, output_required=0.0)
    required_at_output = tt0.topological_delay()  # the achievable cycle
    boundary = ["drv"]

    print(f"system: {net.name} ({net.num_inputs} PI, {net.num_gates} gates)")
    print(f"required time at cout: {required_at_output:g} (its topological delay)\n")

    # -- naive: topological backward propagation -----------------------
    topo_req = required_times(net, output_required=required_at_output)
    print("topological required time at the boundary (Figure 3):")
    print(f"  req(drv) = {format_time(topo_req['drv'])}   "
          "(budgeted against the ripple path)")

    # -- false-path aware: Section 5.2 ---------------------------------
    flex = required_flexibility(
        net, boundary, output_required=required_at_output
    )
    print("\nfalse-path aware required times (per boundary value, §5.2):")
    loosest = None
    for vec, profiles in flex.rows():
        label = f"drv={vec[0]}"
        if not profiles:
            print(f"  {label}: requirement infeasible")
            continue
        for profile in sorted(profiles, key=str):
            active = profile.of("drv")[vec[0]]
            print(f"  {label}: stable by {format_time(active)}")
            loosest = active if loosest is None else min(loosest, active)

    # -- what that buys the resynthesis tool ---------------------------
    tt = TopologicalTiming.analyze(net, output_required=required_at_output)
    print("\ninterpretation:")
    print(
        f"  topological budget for the driver: arrive by "
        f"{format_time(topo_req['drv'])} "
        f"(slack {topo_req['drv'] - tt.arrival['drv']:g})"
    )
    if loosest is not None:
        print(
            f"  false-path aware budget:           arrive by "
            f"{format_time(loosest)} "
            f"(slack {loosest - tt.arrival['drv']:g})"
        )
        print(
            f"  the ripple path is false, so the driver gains "
            f"{loosest - topo_req['drv']:g} time units of synthesis freedom."
        )


if __name__ == "__main__":
    main()
