#!/usr/bin/env python
"""The interval delay model: parity, bounds, and the lo-corner climb.

Walks the interval-delay story (docs/DELAY_MODELS.md) on the paper's
Figure 4 circuit and a carry-skip adder:

1. **point-interval degeneracy** — an interval model with bounds
   ``[d, d]`` produces a canonical result row byte-identical to the
   scalar model's, for every engine (the model's central correctness
   oracle),
2. **conservative bounds** — widening the intervals yields ``[lo, hi]``
   required-time bounds per input that bracket the scalar answer
   (Figure 3 at both delay corners in one pass),
3. **the widened report** — a genuinely widened approx2 run stamps an
   ``interval`` block onto the report/row: the bounds plus the
   lo-corner lattice climb (``best_upper``), the best requirement any
   delay assignment in the box supports,
4. **the spec round-trip** — the JSON form the CLI's ``--delay-spec``
   reads, with its ``"model": "interval"`` marker.

Run:  python examples/interval_timing.py
"""

import json

from repro.cache.results import CachedRequiredResult
from repro.circuits import carry_skip_adder, figure4
from repro.core.required_time import (
    analyze_required_times,
    topological_input_required_times,
)
from repro.timing import (
    IntervalDelayModel,
    delay_model_from_spec,
    required_time_bounds,
    unit_delay,
)


def canonical_row(net, method, delays, **options):
    """One engine run reduced to its canonical (cacheable) row."""
    baseline = topological_input_required_times(net, delays, 2.0)
    report = analyze_required_times(
        net, method, delays=delays, output_required=2.0, **options
    )
    return CachedRequiredResult.from_report(report, baseline).row()


def main() -> None:
    net = figure4()
    scalar = unit_delay()
    point = IntervalDelayModel.from_scalar(scalar)

    # 1. degeneracy: point interval == scalar, byte for byte, per engine
    print("== point-interval degeneracy (Figure 4) ==")
    for method in ("topological", "exact", "approx1", "approx2"):
        a = json.dumps(canonical_row(net, method, scalar), sort_keys=True)
        b = json.dumps(
            canonical_row(net, method, point, delay_model="interval"),
            sort_keys=True,
        )
        assert a == b, f"{method}: degeneracy violated"
        print(f"  {method:<12} scalar row == point-interval row")

    # 2. conservative bounds under widening: [lo, hi] brackets scalar
    widened = IntervalDelayModel.from_scalar(scalar, widen=0.5)
    scalar_req = topological_input_required_times(net, scalar, 2.0)
    bounds = required_time_bounds(net, widened, 2.0)
    print("\n== widened bounds (every gate delay in [0.5, 1.5]) ==")
    for pi in net.inputs:
        lo, hi = bounds[pi]
        assert lo <= scalar_req[pi] <= hi
        print(f"  {pi}: required in [{lo}, {hi}]  (scalar {scalar_req[pi]})")

    # 3. the widened report: bounds + the approx2 lo-corner climb
    adder = carry_skip_adder(2, 2)
    wide = IntervalDelayModel.from_scalar(unit_delay(), widen=0.5)
    report = analyze_required_times(
        adder, "approx2", delays=wide, output_required=0.0,
        delay_model="interval", engine="sat",
    )
    stamp = report.stats["interval"]
    print(f"\n== widened approx2 on {adder.name} ==")
    print(f"  hi-corner nontrivial: {report.nontrivial}")
    print(f"  lo-corner (best_upper) nontrivial: "
          f"{stamp['best_upper']['nontrivial']}")
    sample = sorted(stamp["bounds"])[:4]
    for pi in sample:
        print(f"  {pi}: bounds {stamp['bounds'][pi]}")

    # 4. the JSON spec round-trip the CLI's --delay-spec reads
    spec = wide.to_spec()
    assert spec["model"] == "interval"
    assert delay_model_from_spec(spec).to_spec() == spec
    print(f"\n== spec round-trip ==\n  {json.dumps(spec)}")


if __name__ == "__main__":
    main()
