#!/usr/bin/env python
"""Quickstart: the paper's Figure 4 example on all three algorithms.

Builds the two-cascaded-AND circuit, sets the required time of the output
to 2 under the unit delay model, and prints

* the topological (Figure 3) baseline required times,
* the exact Boolean relation, its minimal sub-relation, and the latest
  required-time tuples per input minterm (the Section 4.1 tables),
* the prime of F(α, β) and its value-dependent interpretation (§4.2),
* the approximate-2 lattice climb (which finds nothing here — the Figure 4
  looseness is value-dependent, exactly as the paper explains).

Run:  python examples/quickstart.py
"""

from repro import (
    Network,
    analyze_required_times,
    topological_input_required_times,
)
from repro.core.approx1 import Approx1Analysis
from repro.core.exact import ExactAnalysis
from repro.core.required_time import format_time


def build_figure4() -> Network:
    net = Network("figure4")
    net.add_input("x1")
    net.add_input("x2")
    net.add_gate("w", "AND", ["x1", "x2"])
    net.add_gate("z", "AND", ["w", "x2"])
    net.set_outputs(["z"])
    return net


def main() -> None:
    net = build_figure4()
    required = 2.0

    print(f"circuit: {net.name}  ({net.num_inputs} PI, {net.num_gates} gates)")
    print(f"required time at z: {required} (unit delay model)\n")

    baseline = topological_input_required_times(net, output_required=required)
    print("topological required times (Figure 3 algorithm):")
    for x, t in sorted(baseline.items()):
        print(f"  req({x}) = {format_time(t)}")

    print("\n=== exact algorithm (Section 4.1) ===")
    relation = ExactAnalysis(net, output_required=required).relation()
    print(f"leaf chi variables ({relation.num_leaf_variables}):")
    for lv in relation.leaf_vars:
        print(f"  chi_[{lv.input},{lv.value}]^{lv.time:g}")
    header = " ".join(
        f"({lv.input},{lv.value},{lv.time:g})" for lv in relation.leaf_vars
    )
    for v1 in (0, 1):
        for v2 in (0, 1):
            minterm = {"x1": v1, "x2": v2}
            rows = sorted(relation.rows(minterm))
            minimal = sorted(relation.minimal_rows(minterm))
            print(f"  x1x2={v1}{v2}: rows={rows}")
            print(f"            minimal={minimal}")
            for profile in sorted(
                relation.required_tuples(minterm), key=str
            ):
                vi = profile.value_independent()
                pretty = ", ".join(
                    f"req({x})={format_time(t)}" for x, t in sorted(vi.items())
                )
                print(f"            latest: {pretty}")
    print(f"  non-trivial (looser than topological): {relation.nontrivial()}")

    print("\n=== approximate approach 1 (Section 4.2) ===")
    result = Approx1Analysis(net, output_required=required).run()
    for prime in result.primes:
        print(f"  prime of F(alpha, beta): {' '.join(sorted(prime))}")
    for profile in result.profiles:
        for x, (r0, r1) in sorted(profile.as_dict().items()):
            print(
                f"  {x}: stable by {format_time(r1)} when it settles to 1, "
                f"by {format_time(r0)} when it settles to 0"
            )
    print(f"  non-trivial: {result.nontrivial}")

    print("\n=== approximate approach 2 (Section 4.3) ===")
    report = analyze_required_times(
        net, "approx2", output_required=required, engine="bdd"
    )
    print(
        f"  non-trivial: {report.nontrivial}  "
        "(the Figure 4 looseness is value-dependent; the value-independent "
        "lattice search cannot express it — exactly the paper's point)"
    )


if __name__ == "__main__":
    main()
