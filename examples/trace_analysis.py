#!/usr/bin/env python
"""Observability walkthrough: trace the carry-skip false-path analysis.

The carry-skip block is the paper's motivating example — its skip mux
makes the topologically longest path false, and the approx-2 lattice
climb proves `cin` may arrive 6 units later than classical STA allows.
This example records that analysis (and the exact relation build) with
the `repro.obs` tracing layer and shows the three ways to consume a
trace:

* the in-memory span tree, with per-span BDD/SAT counter deltas,
* the JSONL export and its `render_summary` pretty-printer
  (what `python -m repro trace` prints),
* the Chrome `trace_event` export for `about:tracing` / Perfetto.

Run:  python examples/trace_analysis.py
"""

import json
import tempfile
from pathlib import Path

from repro.circuits import carry_skip_block
from repro.core.required_time import analyze_required_times
from repro.obs import REGISTRY, read_jsonl, render_summary, tracing


def main() -> None:
    net = carry_skip_block()
    print(f"circuit: {net.name}  ({net.num_inputs} PI, {net.num_gates} gates)")

    # -- record: one trace around both analyses -------------------------
    before = REGISTRY.snapshot()
    with tracing() as trace:
        approx2 = analyze_required_times(
            net.copy(), "approx2", output_required=0.0, engine="sat"
        )
        exact = analyze_required_times(
            net.copy(), "exact", output_required=0.0
        )
    run_delta = REGISTRY.snapshot().diff(before)

    print(f"approx2 non-trivial: {approx2.nontrivial}")
    print(f"exact   non-trivial: {exact.nontrivial}")

    # -- consume 1: the in-memory span tree -----------------------------
    print(
        f"\n{trace.num_spans} spans, "
        f"coverage {trace.coverage():.1%} of {trace.duration * 1000:.1f} ms"
    )
    for sp, depth in trace.walk():
        interesting = {
            k: v
            for k, v in sp.metrics.items()
            if k in ("bdd.nodes_created", "sat.propagations", "approx2.checks")
        }
        extra = f"  {interesting}" if interesting else ""
        print(f"{'  ' * depth}{sp.name:<{36 - 2 * depth}} "
              f"{sp.duration * 1000:>8.2f} ms{extra}")

    # -- consume 2: JSONL round-trip (the `repro trace` subcommand) -----
    with tempfile.TemporaryDirectory() as tmp:
        jsonl_path = Path(tmp) / "run.jsonl"
        chrome_path = Path(tmp) / "run.json"
        trace.save(str(jsonl_path))
        trace.save(str(chrome_path))  # .json extension → Chrome format

        header, roots = read_jsonl(jsonl_path.read_text())
        print("\n--- render_summary (what `python -m repro trace` prints) ---")
        print(render_summary(header, roots, max_depth=2, min_frac=0.01))

        # -- consume 3: Chrome trace_event ------------------------------
        doc = json.loads(chrome_path.read_text())
        print(
            f"\nChrome export: {len(doc['traceEvents'])} events "
            "(load the .json in about:tracing or ui.perfetto.dev)"
        )

    # -- the registry view: what the whole run cost ---------------------
    print("\nrun-level engine counter deltas:")
    for key in sorted(run_delta):
        if key.split(".")[0] in ("bdd", "sat", "approx2"):
            print(f"  {key:<24} {run_delta[key]:>12g}")


if __name__ == "__main__":
    main()
