#!/usr/bin/env python
"""The persistent result cache: cold, warm, and incremental runs.

Walks the full cache story (docs/CACHING.md) on ISCAS-85 C17:

1. a **cold** exact analysis through the cache (computes and stores),
2. the **warm** repeat — a hit: no engine runs, and the canonical row
   is byte-identical to the cold one,
3. content addressing in action: a *renamed* copy of the circuit still
   hits (the key is the structure, not the name),
4. **incremental** re-analysis after rewriting one gate (`G10` NAND →
   AND): only the output cone containing the rewrite (`G22`) is
   recomputed; the untouched `G23` cone is served from the cache.

Run:  python examples/cache_warmup.py
"""

import json
import tempfile
import time

from repro.cache import (
    ResultCache,
    cached_analyze_required_times,
    diff_cones,
    incremental_required_times,
)
from repro.circuits import c17
from repro.network import Network


def mutated_c17() -> Network:
    """C17 with G10 rewritten NAND → AND — a single-cone mutation."""
    net = Network("c17-resynth")
    for pi in ["G1", "G2", "G3", "G6", "G7"]:
        net.add_input(pi)
    net.add_gate("G10", "AND", ["G1", "G3"])
    net.add_gate("G11", "NAND", ["G3", "G6"])
    net.add_gate("G16", "NAND", ["G2", "G11"])
    net.add_gate("G19", "NAND", ["G11", "G7"])
    net.add_gate("G22", "NAND", ["G10", "G16"])
    net.add_gate("G23", "NAND", ["G16", "G19"])
    net.set_outputs(["G22", "G23"])
    return net


def timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-demo-") as cache_dir:
        cache = ResultCache(cache_dir)
        net = c17()

        # 1. cold: computes, stores one entry under the content digest
        (cold, hit), cold_s = timed(
            lambda: cached_analyze_required_times(
                net, "exact", cache, output_required=5.0
            )
        )
        print(f"cold:  hit={hit}  {cold_s * 1e3:7.2f} ms  "
              f"nontrivial={cold.nontrivial}")

        # 2. warm: the same five key ingredients -> the same digest -> hit
        (warm, hit), warm_s = timed(
            lambda: cached_analyze_required_times(
                net, "exact", cache, output_required=5.0
            )
        )
        same = json.dumps(cold.row(), sort_keys=True) == json.dumps(
            warm.row(), sort_keys=True
        )
        print(f"warm:  hit={hit}  {warm_s * 1e3:7.2f} ms  "
              f"row identical to cold: {same}  "
              f"({cold_s / max(warm_s, 1e-9):.0f}x faster)")

        # 3. the name is not part of the key
        renamed = net.copy(name="totally-different-name")
        _, hit = cached_analyze_required_times(
            renamed, "exact", cache, output_required=5.0
        )
        print(f"renamed copy: hit={hit} (content-addressed)")

        # 4. incremental: per-cone keys make reuse automatic
        print("\nrewriting G10, re-analyzing per output cone:")
        report = diff_cones(net, mutated_c17(), "exact", output_required=5.0)
        print(f"  diff_cones: clean={report['clean']} dirty={report['dirty']}")

        incremental_required_times(net, "exact", cache, output_required=5.0)
        result = incremental_required_times(
            mutated_c17(), "exact", cache, output_required=5.0
        )
        print(f"  recomputed: {result.dirty}   from cache: {result.clean}")
        for name, t in sorted(result.merged["input_times"].items()):
            print(f"  merged required time at {name}: {t}")


if __name__ == "__main__":
    main()
