#!/usr/bin/env python
"""False paths in a carry-skip adder, end to end.

The carry-skip adder is the canonical false-path circuit: the carry can
only ripple across a block when every propagate bit is 1, but exactly then
the skip mux routes the block's carry-in around the ripple chain — so the
structurally longest paths never carry an event.

This script shows the two consequences the paper builds on:

1. **Forward**: the functional (XBD0) delay of the adder is strictly
   smaller than its topological delay (Section 2's functional delay
   analysis, with both the BDD and the SAT engine).
2. **Backward**: the required time of the carry-in computed by the
   approximate algorithm 2 lattice climb is strictly *later* than the
   topological requirement — the paper's headline result — and the climb
   trace shows how the answer improves monotonically (the "any
   intermediate r is immediately useful" property of §4.3).

Run:  python examples/carry_skip_false_paths.py
"""

import time

from repro.circuits import carry_skip_adder
from repro.core.approx2 import Approx2Analysis
from repro.timing import FunctionalTiming, TopologicalTiming


def main() -> None:
    net = carry_skip_adder(n_blocks=2, block_bits=3)
    print(
        f"circuit: {net.name}  ({net.num_inputs} PI, {net.num_outputs} PO, "
        f"{net.num_gates} gates, depth {net.depth()})\n"
    )

    # ------------------------------------------------------------------
    print("=== forward: functional vs topological delay ===")
    for engine in ("bdd", "sat"):
        ft = FunctionalTiming(net, engine=engine)
        t0 = time.perf_counter()
        topo = ft.topological_arrivals()
        true = ft.true_arrivals()
        elapsed = time.perf_counter() - t0
        worst_topo = max(topo.values())
        worst_true = max(true.values())
        print(
            f"  [{engine}] topological delay = {worst_topo:g}, "
            f"true (false-path aware) delay = {worst_true:g}  "
            f"({elapsed:.2f}s)"
        )
        for out in net.outputs:
            if true[out] < topo[out]:
                print(
                    f"      {out}: longest path is false "
                    f"({topo[out]:g} -> {true[out]:g})"
                )

    # ------------------------------------------------------------------
    print("\n=== backward: required times at the inputs (approx 2) ===")
    analysis = Approx2Analysis(net, output_required=0.0, engine="bdd")
    result = analysis.run()
    print(
        f"  validation checks: {result.checks}, "
        f"first non-trivial r after {result.time_to_first_nontrivial:.3f}s, "
        f"maximal r after {result.time_to_max:.3f}s"
    )
    print("  input        topological   false-path aware   gain")
    for x in sorted(result.r_bottom):
        bottom = result.r_bottom[x]
        best = result.best[x]
        marker = f"  +{best - bottom:g}" if best > bottom else ""
        print(f"  {x:<12} {bottom:>11g} {best:>18g}{marker}")

    gained = [x for x in result.best if result.best[x] > result.r_bottom[x]]
    print(
        f"\n  {len(gained)} of {len(result.best)} inputs gained slack; "
        f"the carry-in gained {result.best['cin'] - result.r_bottom['cin']:g} "
        "time units because the block-crossing ripple paths are false."
    )

    # ------------------------------------------------------------------
    print("\n=== climb trace (first 10 events) ===")
    for elapsed, r, ok in result.trace.events[:10]:
        changed = {
            k: v for k, v in r.items() if v != result.r_bottom[k]
        }
        print(
            f"  t={elapsed:.3f}s {'accept' if ok else 'reject'} "
            f"{changed if changed else '(bottom)'}"
        )


if __name__ == "__main__":
    main()
