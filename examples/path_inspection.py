#!/usr/bin/env python
"""Path-level inspection: seeing the false paths individually.

The paper's algorithms never enumerate paths — that is their strength —
but when debugging a timing surprise it helps to look at the paths
themselves.  This script takes the canonical carry-skip block and

1. enumerates every input-to-output path sorted by delay,
2. computes the static-sensitization condition of the longest ones,
3. classifies each path with the sound XBD0 verdict
   (false / true / undetermined), and
4. prints the circuit-wide verdict census plus the one-page timing
   report that summarizes what the falseness buys.

Run:  python examples/path_inspection.py
"""

from repro.circuits import carry_skip_block
from repro.timing import (
    classify_path,
    enumerate_paths,
    false_path_report,
    longest_paths,
    static_sensitization_condition,
    timing_report,
)


def main() -> None:
    net = carry_skip_block()
    print(f"circuit: {net.name} ({net.num_inputs} PI, {net.num_gates} gates)\n")

    paths = enumerate_paths(net)
    print(f"{len(paths)} input-to-output paths; ten longest:")
    for path in paths[:10]:
        print(f"  delay {path.delay:>4g}: {' -> '.join(path.nodes)}")

    print("\n=== the structurally longest paths ===")
    for path in longest_paths(net):
        verdict = classify_path(net, path)
        condition = static_sensitization_condition(net, path)
        manager = condition.manager
        witness = manager.pick(condition)
        print(f"  [{verdict}] {' -> '.join(path.nodes)}")
        if witness is None:
            print("      not even statically sensitizable")
        else:
            print(f"      statically sensitized by {witness} — yet the XBD0")
            print("      verdict is 'false': by the time the side conditions")
            print("      hold, the skip mux has already decided the output")

    print("\n=== verdict census ===")
    census = false_path_report(net)
    for verdict, count in sorted(census.items()):
        print(f"  {verdict:>12}: {count}")

    print()
    print(timing_report(net, output_required=8.0, method="approx2").render())


if __name__ == "__main__":
    main()
