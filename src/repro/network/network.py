"""The Boolean network data structure.

Terminology follows the paper: a network N has primary inputs X and primary
outputs Z; every internal node has a completely specified local function of
its immediate fanins, given as a SOP cover (BLIF ``.names`` semantics).  A
node may simultaneously be a primary output and feed other nodes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import NetworkError
from repro.sop import Cover, blake_primes


class Node:
    """One node of a Boolean network.

    ``cover`` is the on-set SOP over the fanins, column *i* of each cube
    corresponding to ``fanins[i]``.  Primary inputs have no cover.
    """

    __slots__ = ("name", "fanins", "cover", "is_input", "_primes_cache")

    def __init__(
        self,
        name: str,
        fanins: list[str] | None = None,
        cover: Cover | None = None,
        is_input: bool = False,
    ):
        self.name = name
        self.fanins: list[str] = list(fanins or [])
        self.cover = cover
        self.is_input = is_input
        self._primes_cache: tuple[Cover, Cover] | None = None
        if is_input:
            if self.fanins or cover is not None:
                raise NetworkError(f"primary input {name!r} cannot have logic")
        else:
            if cover is None:
                raise NetworkError(f"internal node {name!r} needs a cover")
            if cover.width != len(self.fanins):
                raise NetworkError(
                    f"node {name!r}: cover width {cover.width} != "
                    f"{len(self.fanins)} fanins"
                )

    def local_value(self, fanin_values: Mapping[str, bool]) -> bool:
        """Evaluate the local function given fanin values."""
        if self.is_input:
            raise NetworkError(f"primary input {self.name!r} has no local function")
        assignment = 0
        for i, fanin in enumerate(self.fanins):
            if fanin_values[fanin]:
                assignment |= 1 << i
        return self.cover.evaluate(assignment)

    def primes(self) -> tuple[Cover, Cover]:
        """Primes of the local function and of its complement (cached).

        These are the paper's :math:`P_n^1` and :math:`P_n^0`, the covers
        the χ-function recursion of Section 2.3 sums over.
        """
        if self.is_input:
            raise NetworkError(f"primary input {self.name!r} has no local function")
        if self._primes_cache is None:
            onset = blake_primes(self.cover)
            offset = blake_primes(self.cover.complement())
            self._primes_cache = (onset, offset)
        return self._primes_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "PI" if self.is_input else f"{len(self.fanins)}-input"
        return f"<Node {self.name} ({kind})>"


class Network:
    """A combinational Boolean network (DAG of :class:`Node`)."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> Node:
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        node = Node(name, is_input=True)
        self.nodes[name] = node
        self.inputs.append(name)
        return node

    def add_node(self, name: str, fanins: list[str], cover: Cover) -> Node:
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        node = Node(name, fanins, cover)
        self.nodes[name] = node
        return node

    def add_gate(self, name: str, kind: str, fanins: list[str]) -> Node:
        """Convenience constructor for standard gate types.

        ``kind`` ∈ {AND, OR, NAND, NOR, NOT/INV, BUF/BUFF, XOR, XNOR}.
        """
        k = len(fanins)
        kind = kind.upper()
        if kind in ("NOT", "INV"):
            if k != 1:
                raise NetworkError("NOT takes exactly one fanin")
            cover = Cover.from_patterns(["0"])
        elif kind in ("BUF", "BUFF"):
            if k != 1:
                raise NetworkError("BUF takes exactly one fanin")
            cover = Cover.from_patterns(["1"])
        elif kind == "AND":
            cover = Cover.from_patterns(["1" * k])
        elif kind == "NAND":
            cover = Cover.from_patterns(["1" * k]).complement()
        elif kind == "OR":
            cover = Cover.from_patterns(
                ["-" * i + "1" + "-" * (k - i - 1) for i in range(k)]
            )
        elif kind == "NOR":
            cover = Cover.from_patterns(["0" * k])
        elif kind == "XOR":
            cover = Cover.from_minterms(
                k, [m for m in range(1 << k) if bin(m).count("1") % 2 == 1]
            )
        elif kind == "XNOR":
            cover = Cover.from_minterms(
                k, [m for m in range(1 << k) if bin(m).count("1") % 2 == 0]
            )
        elif kind in ("ZERO", "CONST0"):
            cover = Cover.zero(k)
        elif kind in ("ONE", "CONST1"):
            cover = Cover.one(k)
        else:
            raise NetworkError(f"unknown gate kind {kind!r}")
        return self.add_node(name, fanins, cover)

    def set_outputs(self, names: Iterable[str]) -> None:
        names = list(names)
        for n in names:
            if n not in self.nodes:
                raise NetworkError(f"unknown output node {n!r}")
        self.outputs = names

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def fanouts(self) -> dict[str, list[str]]:
        """Fanout adjacency: node name -> names of nodes it feeds."""
        result: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for fanin in node.fanins:
                result[fanin].append(node.name)
        return result

    def validate(self) -> None:
        """Check structural sanity: fanins exist, DAG, outputs known."""
        for node in self.nodes.values():
            for fanin in node.fanins:
                if fanin not in self.nodes:
                    raise NetworkError(
                        f"node {node.name!r} references unknown fanin {fanin!r}"
                    )
        for out in self.outputs:
            if out not in self.nodes:
                raise NetworkError(f"unknown primary output {out!r}")
        # cycle detection via the topological sort
        self.topological_order()

    def topological_order(self) -> list[str]:
        """Node names sorted so fanins precede fanouts.  Raises on cycles."""
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        for root in self.nodes:
            if root in state:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            while stack:
                name, idx = stack.pop()
                if idx == 0:
                    if state.get(name) == 1:
                        continue
                    if state.get(name) == 0:
                        raise NetworkError(f"combinational cycle through {name!r}")
                    state[name] = 0
                node = self.nodes[name]
                if idx < len(node.fanins):
                    stack.append((name, idx + 1))
                    fanin = node.fanins[idx]
                    if state.get(fanin) != 1:
                        if state.get(fanin) == 0:
                            raise NetworkError(
                                f"combinational cycle through {fanin!r}"
                            )
                        stack.append((fanin, 0))
                else:
                    state[name] = 1
                    order.append(name)
        return order

    def reverse_topological_order(self) -> list[str]:
        return list(reversed(self.topological_order()))

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(self, input_values: Mapping[str, bool | int]) -> dict[str, bool]:
        """Evaluate every node under a full primary-input assignment."""
        values: dict[str, bool] = {}
        for name in self.inputs:
            try:
                values[name] = bool(input_values[name])
            except KeyError:
                raise NetworkError(f"missing value for primary input {name!r}") from None
        for name in self.topological_order():
            node = self.nodes[name]
            if node.is_input:
                continue
            values[name] = node.local_value(values)
        return values

    def output_values(self, input_values: Mapping[str, bool | int]) -> dict[str, bool]:
        values = self.simulate(input_values)
        return {out: values[out] for out in self.outputs}

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def num_gates(self) -> int:
        return sum(1 for n in self.nodes.values() if not n.is_input)

    def depth(self) -> int:
        """Longest input-to-output path length in gate counts."""
        level: dict[str, int] = {}
        for name in self.topological_order():
            node = self.nodes[name]
            if node.is_input:
                level[name] = 0
            else:
                level[name] = 1 + max((level[f] for f in node.fanins), default=0)
        return max((level[o] for o in self.outputs), default=0)

    def copy(self, name: str | None = None) -> "Network":
        clone = Network(name or self.name)
        for pi in self.inputs:
            clone.add_input(pi)
        for node_name in self.topological_order():
            node = self.nodes[node_name]
            if node.is_input:
                continue
            clone.add_node(node_name, list(node.fanins), node.cover.copy())
        clone.set_outputs(list(self.outputs))
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network {self.name}: {self.num_inputs} PI, "
            f"{self.num_outputs} PO, {self.num_gates} gates>"
        )
