"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational subset the paper's experiments need:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (with both on-set and
off-set cover polarity), constants, comments, and line continuations.
Latches are rejected with a clear message: the paper handles sequential
circuits by cutting at latch boundaries *before* analysis (Section 3), and
:func:`repro.timing.sequential.cut_at_latches` performs that cut.
"""

from __future__ import annotations

import io
from typing import Iterable, TextIO

from repro.errors import ParseError
from repro.network.network import Network
from repro.sop import Cover, Cube


def parse_blif_file(path: str) -> Network:
    with open(path) as handle:
        return parse_blif(handle.read(), filename=path)


def parse_blif(text: str, filename: str | None = None) -> Network:
    """Parse BLIF source text into a :class:`Network`."""
    lines = _logical_lines(text, filename)
    network: Network | None = None
    inputs: list[str] = []
    outputs: list[str] = []
    names_blocks: list[tuple[int, list[str], list[tuple[str, str]]]] = []
    current_block: tuple[int, list[str], list[tuple[str, str]]] | None = None

    for lineno, line in lines:
        tokens = line.split()
        if not tokens:
            continue
        head = tokens[0]
        if head.startswith(".") and current_block is not None:
            names_blocks.append(current_block)
            current_block = None
        if head == ".model":
            name = tokens[1] if len(tokens) > 1 else "model"
            if network is not None:
                raise ParseError("multiple .model sections", filename, lineno)
            network = Network(name)
        elif head == ".inputs":
            inputs.extend(tokens[1:])
        elif head == ".outputs":
            outputs.extend(tokens[1:])
        elif head == ".names":
            if len(tokens) < 2:
                raise ParseError(".names needs at least an output", filename, lineno)
            current_block = (lineno, tokens[1:], [])
        elif head == ".latch":
            raise ParseError(
                ".latch found: cut sequential circuits at latch boundaries "
                "first (see repro.timing.sequential.cut_at_latches)",
                filename,
                lineno,
            )
        elif head == ".end":
            break
        elif head.startswith("."):
            raise ParseError(f"unsupported construct {head!r}", filename, lineno)
        else:
            if current_block is None:
                raise ParseError(
                    f"cover line outside .names block: {line!r}", filename, lineno
                )
            if len(tokens) == 1:
                # single-column line of a constant node
                current_block[2].append(("", tokens[0]))
            elif len(tokens) == 2:
                current_block[2].append((tokens[0], tokens[1]))
            else:
                raise ParseError(f"malformed cover line {line!r}", filename, lineno)
    if current_block is not None:
        names_blocks.append(current_block)

    if network is None:
        network = Network("model")
    for pi in inputs:
        network.add_input(pi)

    for lineno, signals, rows in names_blocks:
        *fanins, output = signals
        width = len(fanins)
        if not rows:
            # empty .names block: constant zero
            cover = Cover.zero(width)
        else:
            out_values = {v for _, v in rows}
            if out_values <= {"1"}:
                patterns = [p for p, _ in rows]
                cover = _cover_from_patterns(width, patterns, filename, lineno)
            elif out_values <= {"0"}:
                patterns = [p for p, _ in rows]
                cover = _cover_from_patterns(width, patterns, filename, lineno).complement()
            else:
                raise ParseError(
                    f"mixed output polarity in .names {output}", filename, lineno
                )
        network.add_node(output, fanins, cover)

    network.set_outputs(outputs)
    network.validate()
    return network


def _cover_from_patterns(
    width: int, patterns: list[str], filename: str | None, lineno: int
) -> Cover:
    cubes = []
    for p in patterns:
        if len(p) != width:
            raise ParseError(
                f"cover row {p!r} does not match {width} fanins", filename, lineno
            )
        try:
            cubes.append(Cube.from_pattern(p))
        except ValueError as exc:
            raise ParseError(str(exc), filename, lineno) from None
    return Cover(width, cubes)


def _logical_lines(text: str, filename: str | None) -> list[tuple[int, str]]:
    """Strip comments and join backslash continuations."""
    result: list[tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line and not pending:
            continue
        if pending:
            line = pending + " " + line.strip()
        else:
            pending_start = lineno
        if line.endswith("\\"):
            pending = line[:-1].rstrip()
            continue
        pending = ""
        result.append((pending_start, line.strip()))
    if pending:
        raise ParseError("dangling line continuation", filename, pending_start)
    return result


def write_blif(network: Network, handle: TextIO | None = None) -> str:
    """Serialize the network as BLIF; returns the text (and writes to
    ``handle`` when given)."""
    out = io.StringIO()
    out.write(f".model {network.name}\n")
    out.write(_wrapped(".inputs", network.inputs))
    out.write(_wrapped(".outputs", network.outputs))
    for name in network.topological_order():
        node = network.nodes[name]
        if node.is_input:
            continue
        out.write(f".names {' '.join(node.fanins + [name])}\n")
        if node.cover.is_empty():
            continue  # constant zero: empty cover
        for cube in node.cover:
            pattern = cube.to_pattern()
            out.write(f"{pattern} 1\n" if pattern else "1\n")
    out.write(".end\n")
    text = out.getvalue()
    if handle is not None:
        handle.write(text)
    return text


def _wrapped(keyword: str, names: Iterable[str]) -> str:
    names = list(names)
    if not names:
        return f"{keyword}\n"
    return f"{keyword} {' '.join(names)}\n"
