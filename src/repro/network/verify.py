"""Global functions and equivalence checking via BDDs.

Builds the BDD of every node in terms of the primary inputs (in topological
order, evaluating each SOP cover over the fanin BDDs) and compares two
networks output-by-output.  Used throughout the test suite and by the
Section 5 analyses, which need the onset/offset of outputs and the global
functions of subcircuit inputs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bdd import BddManager, BddNode, create_manager
from repro.errors import NetworkError
from repro.network.network import Network


def global_functions(
    network: Network,
    manager: BddManager | None = None,
    input_map: Mapping[str, BddNode] | None = None,
) -> dict[str, BddNode]:
    """BDDs of every node in terms of the primary inputs.

    ``input_map`` lets the caller supply existing BDDs for the primary
    inputs (e.g. variables of a shared manager, or global functions of a
    surrounding network); otherwise a fresh variable per input is declared
    in ``manager`` (a fresh manager when none is given).
    """
    if manager is None:
        manager = create_manager()
    functions: dict[str, BddNode] = {}
    for pi in network.inputs:
        if input_map is not None and pi in input_map:
            functions[pi] = input_map[pi]
        elif manager.has_var(pi):
            functions[pi] = manager.var(pi)
        else:
            functions[pi] = manager.add_var(pi)

    for name in network.topological_order():
        node = network.nodes[name]
        if node.is_input:
            continue
        fanin_bdds = [functions[f] for f in node.fanins]
        functions[name] = _cover_bdd(manager, node.cover, fanin_bdds)
    return functions


def _cover_bdd(
    manager: BddManager, cover, fanin_bdds: Sequence[BddNode]
) -> BddNode:
    """Evaluate a SOP cover over fanin BDDs (balanced and/or trees)."""
    terms: list[BddNode] = []
    for cube in cover:
        operands: list[BddNode] = []
        for i, fanin in enumerate(fanin_bdds):
            lit = cube.literal(i)
            if lit == 1:
                operands.append(fanin)
            elif lit == 0:
                operands.append(~fanin)
        term = manager.conjoin(operands)
        if term.is_true:
            return manager.true
        if not term.is_false:
            terms.append(term)
    return manager.disjoin(terms)


def equivalent(a: Network, b: Network) -> bool:
    """Combinational equivalence: same I/O names, same output functions."""
    if set(a.inputs) != set(b.inputs):
        raise NetworkError("networks have different primary inputs")
    if list(a.outputs) != list(b.outputs):
        raise NetworkError("networks have different primary outputs")
    manager = create_manager()
    fa = global_functions(a, manager)
    fb = global_functions(b, manager)
    return all(fa[o] == fb[o] for o in a.outputs)
