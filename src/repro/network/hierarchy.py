"""Hierarchical BLIF: multiple ``.model`` sections and ``.subckt`` calls.

``parse_blif_hierarchy`` reads a BLIF file containing several models,
resolves ``.subckt`` instantiations recursively, and returns the
*flattened* network of the top model (the first one, or the one named via
``top``).  Instance-local signals are namespaced ``<instancepath>/<name>``
so flattening never collides; formal/actual port bindings follow the
standard ``.subckt model formal=actual ...`` syntax.

This is the front end the hierarchical-analysis features (Section 3 latch
cutting, Section 5 flexibility, the [7] macro-models) want: design entry
stays hierarchical, analysis runs on the flattened network or per box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.network.blif import _cover_from_patterns, _logical_lines
from repro.network.network import Network
from repro.sop import Cover


@dataclass
class _Model:
    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    #: (lineno, [fanins..., output], [(pattern, value), ...])
    names: list[tuple[int, list[str], list[tuple[str, str]]]] = field(
        default_factory=list
    )
    #: (lineno, model_name, {formal: actual})
    subckts: list[tuple[int, str, dict[str, str]]] = field(default_factory=list)


def _split_models(text: str, filename: str | None) -> list[_Model]:
    models: list[_Model] = []
    current: _Model | None = None
    block: tuple[int, list[str], list[tuple[str, str]]] | None = None

    def flush_block():
        nonlocal block
        if block is not None and current is not None:
            current.names.append(block)
        block = None

    for lineno, line in _logical_lines(text, filename):
        tokens = line.split()
        head = tokens[0]
        if head.startswith("."):
            flush_block()
        if head == ".model":
            current = _Model(tokens[1] if len(tokens) > 1 else f"model{len(models)}")
            models.append(current)
        elif head == ".inputs":
            if current is None:
                raise ParseError(".inputs before .model", filename, lineno)
            current.inputs.extend(tokens[1:])
        elif head == ".outputs":
            if current is None:
                raise ParseError(".outputs before .model", filename, lineno)
            current.outputs.extend(tokens[1:])
        elif head == ".names":
            if current is None:
                raise ParseError(".names before .model", filename, lineno)
            block = (lineno, tokens[1:], [])
        elif head == ".subckt":
            if current is None:
                raise ParseError(".subckt before .model", filename, lineno)
            if len(tokens) < 2:
                raise ParseError(".subckt needs a model name", filename, lineno)
            binding: dict[str, str] = {}
            for pair in tokens[2:]:
                if "=" not in pair:
                    raise ParseError(
                        f"malformed port binding {pair!r}", filename, lineno
                    )
                formal, actual = pair.split("=", 1)
                binding[formal] = actual
            current.subckts.append((lineno, tokens[1], binding))
        elif head == ".latch":
            raise ParseError(
                ".latch found: cut sequential circuits first "
                "(repro.timing.sequential.cut_at_latches)",
                filename,
                lineno,
            )
        elif head == ".end":
            flush_block()
            current = None
        elif head.startswith("."):
            raise ParseError(f"unsupported construct {head!r}", filename, lineno)
        else:
            if block is None:
                raise ParseError(
                    f"cover line outside .names block: {line!r}", filename, lineno
                )
            if len(tokens) == 1:
                block[2].append(("", tokens[0]))
            elif len(tokens) == 2:
                block[2].append((tokens[0], tokens[1]))
            else:
                raise ParseError(f"malformed cover line {line!r}", filename, lineno)
    flush_block()
    if not models:
        raise ParseError("no .model section found", filename, 1)
    return models


def parse_blif_hierarchy(
    text: str, top: str | None = None, filename: str | None = None
) -> Network:
    """Parse multi-model BLIF and flatten the ``top`` model (default: the
    first model in the file)."""
    models = {m.name: m for m in _split_models(text, filename)}
    first = next(iter(models))
    top_name = top if top is not None else first
    if top_name not in models:
        raise ParseError(f"top model {top_name!r} not defined", filename)

    network = Network(top_name)
    top_model = models[top_name]
    for pi in top_model.inputs:
        network.add_input(pi)

    def instantiate(
        model: _Model,
        prefix: str,
        binding: dict[str, str],
        stack: tuple[str, ...],
    ) -> None:
        if model.name in stack:
            raise ParseError(
                f"recursive instantiation of model {model.name!r}", filename
            )

        def resolve(signal: str) -> str:
            if signal in binding:
                return binding[signal]
            return f"{prefix}{signal}" if prefix else signal

        for lineno, signals, rows in model.names:
            *fanins, output = signals
            width = len(fanins)
            if not rows:
                cover = Cover.zero(width)
            else:
                values = {v for _, v in rows}
                patterns = [p for p, _ in rows]
                if values <= {"1"}:
                    cover = _cover_from_patterns(width, patterns, filename, lineno)
                elif values <= {"0"}:
                    cover = _cover_from_patterns(
                        width, patterns, filename, lineno
                    ).complement()
                else:
                    raise ParseError(
                        f"mixed output polarity in .names {output}", filename, lineno
                    )
            network.add_node(
                resolve(output), [resolve(f) for f in fanins], cover
            )
        for lineno, sub_name, ports in model.subckts:
            if sub_name not in models:
                raise ParseError(
                    f"unknown subcircuit model {sub_name!r}", filename, lineno
                )
            sub = models[sub_name]
            child_prefix = f"{prefix}{sub_name}{lineno}/"
            child_binding: dict[str, str] = {}
            for formal in sub.inputs:
                if formal not in ports:
                    raise ParseError(
                        f"unbound input {formal!r} of {sub_name!r}", filename, lineno
                    )
                child_binding[formal] = resolve(ports[formal])
            for formal in sub.outputs:
                if formal in ports:
                    child_binding[formal] = resolve(ports[formal])
                # unbound outputs stay internal (namespaced) signals
            extra = set(ports) - set(sub.inputs) - set(sub.outputs)
            if extra:
                raise ParseError(
                    f"unknown ports {sorted(extra)} on {sub_name!r}", filename, lineno
                )
            instantiate(sub, child_prefix, child_binding, stack + (model.name,))

    instantiate(top_model, "", {}, ())
    network.set_outputs(list(top_model.outputs))
    network.validate()
    return network


def parse_blif_hierarchy_file(path: str, top: str | None = None) -> Network:
    with open(path) as handle:
        return parse_blif_hierarchy(handle.read(), top=top, filename=path)
