"""Structural network clean-up passes.

Small, classical transforms used before/after resynthesis:

* :func:`propagate_constants` — fold constant nodes into their fanouts;
* :func:`sweep` — remove nodes that reach no primary output;
* :func:`collapse_output` — flatten one output's logic into a single
  two-level node over the primary inputs (via BDD path cubes), the
  textbook "collapse" step;
* :func:`buffer_chains` — report/remove single-input BUF chains.

All passes preserve I/O functionality (asserted in the test suite with
BDD equivalence checking).
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.network.network import Network
from repro.network.transform import transitive_fanin
from repro.network.verify import global_functions
from repro.sop import Cover, Cube


def propagate_constants(network: Network) -> int:
    """Fold constant-function nodes into their fanouts.

    Returns the number of node references simplified.  Constant nodes
    that remain (e.g. as primary outputs) are kept.
    """
    changed = 0
    # identify constant nodes (empty cover or tautological cover)
    constants: dict[str, int] = {}
    for name in network.topological_order():
        node = network.nodes[name]
        if node.is_input:
            continue
        # a node is constant if its cover is constant OR all its fanins are
        # known constants
        if node.cover.is_empty():
            constants[name] = 0
            continue
        if any(c.is_tautology() for c in node.cover):
            constants[name] = 1
            continue
        if all(f in constants for f in node.fanins):
            assignment = 0
            for i, f in enumerate(node.fanins):
                if constants[f]:
                    assignment |= 1 << i
            constants[name] = int(node.cover.evaluate(assignment))

    for name, node in network.nodes.items():
        if node.is_input or not node.fanins:
            continue
        const_positions = [
            (i, constants[f])
            for i, f in enumerate(node.fanins)
            if f in constants
        ]
        if not const_positions:
            continue
        cover = node.cover
        for i, value in const_positions:
            cover = cover.cofactor(i, value)
        # rebuild over the remaining fanins
        keep = [
            (i, f) for i, f in enumerate(node.fanins) if f not in constants
        ]
        new_fanins = [f for _, f in keep]
        remap = {old: new for new, (old, _) in enumerate(keep)}
        new_cubes = []
        for cube in cover:
            literals = {
                remap[v]: cube.literal(v)
                for v in cube.variables()
                if v in remap
            }
            new_cubes.append(Cube.from_literals(len(new_fanins), literals))
        node.fanins = new_fanins
        node.cover = Cover(len(new_fanins), new_cubes).single_cube_containment()
        node._primes_cache = None
        changed += len(const_positions)
    return changed


def sweep(network: Network) -> int:
    """Delete nodes not in the transitive fanin of any primary output."""
    needed = transitive_fanin(network, list(network.outputs))
    victims = [
        name
        for name, node in network.nodes.items()
        if name not in needed and not node.is_input
    ]
    for name in victims:
        del network.nodes[name]
    return len(victims)


def collapse_output(network: Network, output: str, max_cubes: int = 10_000) -> Network:
    """A new single-node network computing ``output`` over the primary
    inputs, extracted from the BDD's disjoint path cubes."""
    if output not in network.nodes:
        raise NetworkError(f"unknown node {output!r}")
    funcs = global_functions(network)
    manager = funcs[output].manager
    support_inputs = list(network.inputs)
    width = len(support_inputs)
    index = {name: i for i, name in enumerate(support_inputs)}

    cubes = []
    for cube_dict in manager.cube_iter(funcs[output]):
        cubes.append(
            Cube.from_literals(
                width, {index[n]: v for n, v in cube_dict.items()}
            )
        )
        if len(cubes) > max_cubes:
            raise NetworkError(
                f"collapse of {output!r} exceeds {max_cubes} cubes"
            )

    flat = Network(f"{network.name}_{output}_flat")
    for pi in support_inputs:
        flat.add_input(pi)
    flat.add_node(output, support_inputs, Cover(width, cubes))
    flat.set_outputs([output])
    return flat


def buffer_chains(network: Network) -> list[list[str]]:
    """Maximal chains of single-fanin BUF nodes (candidates for removal in
    area-driven flows; deliberately *kept* by timing flows, where padding
    is meaningful)."""
    buf_cover = Cover.from_patterns(["1"])
    is_buf = {
        name
        for name, node in network.nodes.items()
        if not node.is_input
        and len(node.fanins) == 1
        and node.cover.equivalent(buf_cover)
    }
    fanouts = network.fanouts()
    chains = []
    seen: set[str] = set()
    for name in network.topological_order():
        if name not in is_buf or name in seen:
            continue
        # walk forward while the next node is also a lone buf
        chain = [name]
        seen.add(name)
        current = name
        while True:
            outs = fanouts[current]
            if len(outs) == 1 and outs[0] in is_buf and outs[0] not in seen:
                current = outs[0]
                chain.append(current)
                seen.add(current)
            else:
                break
        chains.append(chain)
    return chains
