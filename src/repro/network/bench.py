"""ISCAS ``.bench`` netlist reader and writer.

The ISCAS-85 combinational benchmark suite (C432 ... C7552 in the paper's
Table 2) is traditionally distributed in this format:

.. code-block:: text

    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

Gate kinds supported: AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR, XNOR.
``DFF`` is rejected — cut sequential circuits at latch boundaries first.
"""

from __future__ import annotations

import io
import re
from typing import TextIO

from repro.errors import ParseError
from repro.network.network import Network

_ASSIGN = re.compile(r"^\s*([^\s=]+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\)\s*$")
_IO = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$", re.IGNORECASE)

_KIND_MAP = {
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "NOT": "NOT",
    "INV": "NOT",
    "BUF": "BUF",
    "BUFF": "BUF",
    "XOR": "XOR",
    "XNOR": "XNOR",
}


def parse_bench_file(path: str) -> Network:
    with open(path) as handle:
        return parse_bench(handle.read(), filename=path)


def parse_bench(text: str, filename: str | None = None) -> Network:
    network = Network("bench")
    outputs: list[str] = []
    gates: list[tuple[int, str, str, list[str]]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO.match(line)
        if io_match:
            kind, name = io_match.group(1).upper(), io_match.group(2)
            if kind == "INPUT":
                network.add_input(name)
            else:
                outputs.append(name)
            continue
        assign = _ASSIGN.match(line)
        if assign:
            target, kind, arglist = assign.groups()
            kind = kind.upper()
            if kind == "DFF":
                raise ParseError(
                    "DFF found: cut sequential circuits at latch boundaries "
                    "first (see repro.timing.sequential.cut_at_latches)",
                    filename,
                    lineno,
                )
            if kind not in _KIND_MAP:
                raise ParseError(f"unknown gate kind {kind!r}", filename, lineno)
            fanins = [a.strip() for a in arglist.split(",") if a.strip()]
            if not fanins:
                raise ParseError(f"gate {target!r} has no fanins", filename, lineno)
            gates.append((lineno, target, _KIND_MAP[kind], fanins))
            continue
        raise ParseError(f"unparseable line: {line!r}", filename, lineno)

    for lineno, target, kind, fanins in gates:
        try:
            network.add_gate(target, kind, fanins)
        except Exception as exc:
            raise ParseError(str(exc), filename, lineno) from exc

    network.set_outputs(outputs)
    network.validate()
    return network


def write_bench(network: Network, handle: TextIO | None = None) -> str:
    """Serialize as .bench.  Nodes whose covers match standard gates are
    emitted with the matching kind; anything else is an error — decompose
    exotic nodes before writing."""
    out = io.StringIO()
    for pi in network.inputs:
        out.write(f"INPUT({pi})\n")
    for po in network.outputs:
        out.write(f"OUTPUT({po})\n")
    for name in network.topological_order():
        node = network.nodes[name]
        if node.is_input:
            continue
        kind = _classify(node)
        if kind is None:
            raise ParseError(
                f"node {name!r} is not a standard gate; decompose before "
                "writing .bench"
            )
        out.write(f"{name} = {kind}({', '.join(node.fanins)})\n")
    text = out.getvalue()
    if handle is not None:
        handle.write(text)
    return text


def _classify(node) -> str | None:
    from repro.sop import Cover

    k = len(node.fanins)
    candidates = {
        "AND": Cover.from_patterns(["1" * k]),
        "NOR": Cover.from_patterns(["0" * k]),
        "OR": Cover.from_patterns(
            ["-" * i + "1" + "-" * (k - i - 1) for i in range(k)]
        ),
        "NAND": Cover.from_patterns(["1" * k]).complement(),
        "XOR": Cover.from_minterms(
            k, [m for m in range(1 << k) if bin(m).count("1") % 2 == 1]
        ),
        "XNOR": Cover.from_minterms(
            k, [m for m in range(1 << k) if bin(m).count("1") % 2 == 0]
        ),
    }
    if k == 1:
        candidates = {
            "NOT": Cover.from_patterns(["0"]),
            "BUFF": Cover.from_patterns(["1"]),
        }
    for kind, cover in candidates.items():
        if node.cover.equivalent(cover):
            return kind
    return None
