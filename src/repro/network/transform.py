"""Structural transforms used by the Section 5 flexibility analysis.

Given a network N and a subcircuit boundary, the paper analyzes two derived
networks (Figure 5):

* N_FI — the transitive fanin of the subcircuit inputs U, with U as its
  primary outputs; the arrival-time analysis of Section 5.1 runs on it.
* N_FO — N with the subcircuit outputs V relabeled as primary inputs; the
  required-time analysis of Section 5.2 runs on it.

Both are built with the functions in this module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import NetworkError
from repro.network.network import Network


def transitive_fanin(network: Network, roots: Sequence[str]) -> set[str]:
    """All node names on paths from primary inputs to ``roots`` (inclusive)."""
    seen: set[str] = set()
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(network.node(name).fanins)
    return seen


def transitive_fanout(network: Network, roots: Sequence[str]) -> set[str]:
    """All node names reachable from ``roots`` following fanout (inclusive)."""
    fanouts = network.fanouts()
    seen: set[str] = set()
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(fanouts[name])
    return seen


def fanin_network(network: Network, boundary: Sequence[str], name: str | None = None) -> Network:
    """The paper's N_FI: transitive fanin of ``boundary``, with ``boundary``
    as the primary outputs."""
    for b in boundary:
        network.node(b)  # raises on unknown names
    keep = transitive_fanin(network, boundary)
    result = Network(name or f"{network.name}_FI")
    for pi in network.inputs:
        if pi in keep:
            result.add_input(pi)
    for node_name in network.topological_order():
        if node_name not in keep:
            continue
        node = network.nodes[node_name]
        if node.is_input:
            continue
        result.add_node(node_name, list(node.fanins), node.cover.copy())
    result.set_outputs(list(boundary))
    result.validate()
    return result


def fanout_network(network: Network, boundary: Sequence[str], name: str | None = None) -> Network:
    """The paper's N_FO: ``network`` with the ``boundary`` nodes relabeled as
    primary inputs (their driving logic removed along with any logic that
    only feeds them)."""
    for b in boundary:
        node = network.node(b)
        if node.is_input:
            raise NetworkError(
                f"{b!r} is already a primary input; cutting it is a no-op"
            )
    boundary_set = set(boundary)
    # Nodes still needed: transitive fanin of the primary outputs, with the
    # search stopping at boundary nodes (they become PIs).
    needed: set[str] = set()
    stack = [o for o in network.outputs]
    while stack:
        n = stack.pop()
        if n in needed:
            continue
        needed.add(n)
        if n in boundary_set:
            continue
        stack.extend(network.node(n).fanins)

    result = Network(name or f"{network.name}_FO")
    for b in boundary:
        if b in needed:
            result.add_input(b)
    for pi in network.inputs:
        if pi in needed and pi not in boundary_set:
            result.add_input(pi)
    for node_name in network.topological_order():
        if node_name not in needed or node_name in boundary_set:
            continue
        node = network.nodes[node_name]
        if node.is_input:
            continue
        result.add_node(node_name, list(node.fanins), node.cover.copy())
    result.set_outputs([o for o in network.outputs])
    result.validate()
    return result


def extract_subnetwork(
    network: Network,
    sub_inputs: Sequence[str],
    sub_outputs: Sequence[str],
    name: str | None = None,
) -> Network:
    """Cut out the subcircuit N' with boundary (U=sub_inputs, V=sub_outputs).

    The subcircuit consists of every node on a path from U to V that does
    not pass through another U node.  The paper's footnote 2 requires that
    no path leads from a subcircuit output back to a subcircuit input; this
    is checked.
    """
    u_set = set(sub_inputs)
    for n in list(sub_inputs) + list(sub_outputs):
        network.node(n)

    # check footnote 2: V must not reach U
    reach_from_v = transitive_fanout(network, list(sub_outputs))
    offenders = (reach_from_v - set(sub_outputs)) & u_set
    if offenders:
        raise NetworkError(
            f"illegal cut: path from subcircuit outputs back to inputs {sorted(offenders)}"
        )

    # nodes between U and V: transitive fanin of V, stopping at U
    keep: set[str] = set()
    stack = list(sub_outputs)
    while stack:
        n = stack.pop()
        if n in keep:
            continue
        keep.add(n)
        if n in u_set:
            continue
        stack.extend(network.node(n).fanins)

    dangling = {
        n
        for n in keep
        if n not in u_set and network.node(n).is_input
    }
    if dangling:
        raise NetworkError(
            f"subcircuit depends on signals outside its input boundary: {sorted(dangling)}"
        )

    result = Network(name or f"{network.name}_sub")
    for u in sub_inputs:
        result.add_input(u)
    for node_name in network.topological_order():
        if node_name not in keep or node_name in u_set:
            continue
        node = network.nodes[node_name]
        if node.is_input:
            continue
        result.add_node(node_name, list(node.fanins), node.cover.copy())
    result.set_outputs(list(sub_outputs))
    result.validate()
    return result
