"""Visualization and reporting helpers for networks."""

from __future__ import annotations

from typing import Mapping

from repro.network.network import Network


def to_dot(
    network: Network,
    node_labels: Mapping[str, str] | None = None,
    highlight: set[str] | frozenset[str] | None = None,
) -> str:
    """Render the network as a Graphviz dot digraph.

    ``node_labels`` appends extra text per node (e.g. slack values);
    ``highlight`` draws the named nodes with a doubled border (e.g. a
    critical path).
    """
    node_labels = node_labels or {}
    highlight = highlight or set()
    lines = [f"digraph {network.name.replace('-', '_')} {{", "  rankdir=LR;"]
    for name, node in network.nodes.items():
        label = name
        extra = node_labels.get(name)
        if extra:
            label += f"\\n{extra}"
        shape = "box" if node.is_input else "ellipse"
        peripheries = ",peripheries=2" if name in highlight else ""
        outline = ",style=bold" if name in network.outputs else ""
        lines.append(
            f'  "{name}" [shape={shape},label="{label}"{peripheries}{outline}];'
        )
    for name, node in network.nodes.items():
        for fanin in node.fanins:
            lines.append(f'  "{fanin}" -> "{name}";')
    lines.append("}")
    return "\n".join(lines)


def summary(network: Network) -> dict[str, object]:
    """A size/shape profile of the network."""
    fanouts = network.fanouts()
    gate_fanins = [
        len(n.fanins) for n in network.nodes.values() if not n.is_input
    ]
    return {
        "name": network.name,
        "inputs": network.num_inputs,
        "outputs": network.num_outputs,
        "gates": network.num_gates,
        "depth": network.depth(),
        "max_fanin": max(gate_fanins, default=0),
        "max_fanout": max((len(v) for v in fanouts.values()), default=0),
        "literals": sum(
            cube.num_literals
            for n in network.nodes.values()
            if not n.is_input
            for cube in n.cover
        ),
    }
