"""Boolean networks: the combinational circuits under analysis.

A :class:`~repro.network.network.Network` is a DAG of named nodes.  Each
internal node carries a sum-of-products local function over its fanins
(BLIF ``.names`` semantics); primary inputs are leaf nodes.  The package
also provides

* BLIF and ISCAS ``.bench`` readers/writers,
* structural transforms (transitive fanin/fanout extraction, subcircuit
  cutting) used by the Section 5 flexibility analysis,
* simulation and BDD-based global-function construction / equivalence
  checking.
"""

from repro.network.network import Network, Node
from repro.network.blif import parse_blif, parse_blif_file, write_blif
from repro.network.bench import parse_bench, parse_bench_file, write_bench
from repro.network.transform import (
    extract_subnetwork,
    transitive_fanin,
    transitive_fanout,
)
from repro.network.verify import equivalent, global_functions
from repro.network.opt import (
    buffer_chains,
    collapse_output,
    propagate_constants,
    sweep,
)
from repro.network.dump import summary, to_dot
from repro.network.hierarchy import parse_blif_hierarchy, parse_blif_hierarchy_file

__all__ = [
    "Network",
    "Node",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "transitive_fanin",
    "transitive_fanout",
    "extract_subnetwork",
    "equivalent",
    "global_functions",
    "propagate_constants",
    "sweep",
    "collapse_output",
    "buffer_chains",
    "summary",
    "to_dot",
    "parse_blif_hierarchy",
    "parse_blif_hierarchy_file",
]
