"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """A netlist file (BLIF / ISCAS bench) could not be parsed.

    Carries the offending file name and line number when available.
    """

    def __init__(self, message: str, filename: str | None = None, lineno: int | None = None):
        self.filename = filename
        self.lineno = lineno
        location = ""
        if filename is not None:
            location = f"{filename}:"
        if lineno is not None:
            location += f"{lineno}:"
        if location:
            message = f"{location} {message}"
        super().__init__(message)


class NetworkError(ReproError):
    """The Boolean network is structurally invalid for the requested operation
    (cycles, dangling fanins, unknown node names, illegal subcircuit cuts...)."""


class BddError(ReproError):
    """BDD manager failure (unknown variable, node-table overflow, operands
    from different managers...)."""


class SatError(ReproError):
    """SAT solver failure (malformed clause, conflicting assumptions at level
    zero when not expected...)."""


class TimingError(ReproError):
    """Timing analysis failure (missing arrival/required times, negative gate
    delay, unstable output under every candidate...)."""


class EcoError(ReproError):
    """An engineering-change-order edit was rejected by a
    :class:`~repro.eco.NetworkSession` (unknown node, cycle-creating
    resubstitution, dangling fanin, illegal output retarget...).

    Raised *before* any mutation happens: a session that raises
    :class:`EcoError` is observably unchanged — same network, same cone
    digests, same cached rows (the atomicity contract of docs/ECO.md).
    """


class ObsError(ReproError):
    """Observability failure (double trace start, malformed trace file,
    unknown export format...)."""


class ServeError(ReproError):
    """A structured serving-layer failure with an HTTP mapping.

    Every error the ``repro serve`` daemon returns to a client is one of
    these: ``status`` is the HTTP status code, ``code`` a stable
    machine-readable identifier (``"queue-full"``, ``"session-not-found"``,
    ``"invalid-edit"``, ...), and ``retry_after`` an optional hint in
    seconds for 429 responses (docs/SERVING.md).
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 400,
        code: str = "bad-request",
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


class ResourceLimitError(ReproError):
    """An analysis exceeded a user-imposed resource budget.

    Mirrors the paper's 'memory out' / '> 12 hours' table entries: the
    algorithms raise this instead of running unbounded, and the benchmark
    harness records the event exactly as the paper does.
    """

    def __init__(self, message: str, partial_result: object | None = None):
        super().__init__(message)
        #: best result computed before the limit hit (e.g. the last validated
        #: required-time vector of the lattice climb), or ``None``.
        self.partial_result = partial_result
