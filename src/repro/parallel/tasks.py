"""The sharded task model of the process-parallel execution layer.

A :class:`Task` is one unit of work a pool worker can execute without any
shared state: everything it references must either travel in the (picklable)
payload or be reconstructable inside the worker from a :class:`CircuitRef`.
Required-time analysis shards along the natural axes of the paper's
experiments — per (circuit, output, engine) — the same per-output
decomposition ABC-style functional timing engines exploit: every output
cone is an independent required-time problem, and the network-level
requirement at an input is the earliest (min) requirement any cone imposes.

Scheduling metadata rides on the task itself:

* ``cost`` — an estimate of relative expense (node budgets, cone sizes,
  method weights).  The pool dispatches expensive tasks first so one big
  BDD job does not dangle off the end of the schedule (classic LPT
  ordering).
* ``circuit_key`` — the warm-cache identity.  Workers keep the parsed
  network (and a reusable :class:`~repro.bdd.BddManager`) per key, and the
  scheduler prefers handing a task to a worker that is already warm on
  its circuit.
* ``timeout`` / ``max_retries`` — the fault envelope (see
  :mod:`repro.parallel.pool`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.network.network import Network

#: method → relative expense weight used by :func:`estimate_cost`.  The
#: exact relation is the heavyweight (one fresh BDD variable per
#: ⟨input, value, time⟩ triple), approx1 builds a parameterized BDD per
#: output, approx2 is a lattice climb of cheap SAT/BDD checks.
METHOD_WEIGHTS = {
    "exact": 30.0,
    "approx1": 6.0,
    "approx2": 1.5,
    "topological": 0.01,
}


class ParallelError(ReproError):
    """A failure of the parallel execution layer itself (not of a task)."""


# ----------------------------------------------------------------------
# circuit references — how a worker obtains its Network
# ----------------------------------------------------------------------
#: registry of named circuit factories resolvable inside workers.  Keys
#: look like ``"mcnc:m4"`` or ``"example:figure4"``; values are zero-arg
#: callables returning a fresh :class:`Network`.
_FACTORIES: dict[str, object] = {}


def register_factory(name: str, factory) -> None:
    """Register a named zero-arg circuit factory (worker-resolvable)."""
    _FACTORIES[name] = factory


def _builtin_factory(name: str):
    """Resolve the built-in ``family:item`` factory namespace lazily."""
    family, _, item = name.partition(":")
    if family == "mcnc":
        from repro.circuits import mcnc_suite

        for spec in mcnc_suite():
            if spec.name == item:
                return lambda spec=spec: spec.network.copy()
        raise ParallelError(f"unknown mcnc suite circuit {item!r}")
    if family == "iscas":
        from repro.circuits import iscas_suite

        for spec in iscas_suite():
            if spec.name == item:
                return lambda spec=spec: spec.network.copy()
        raise ParallelError(f"unknown iscas suite circuit {item!r}")
    if family == "example":
        import repro.circuits as circuits

        factory = getattr(circuits, item, None)
        if factory is None:
            raise ParallelError(f"unknown example circuit {item!r}")
        return factory
    raise ParallelError(f"unknown circuit factory {name!r}")


@dataclass(frozen=True)
class CircuitRef:
    """A picklable recipe for materializing a :class:`Network` in a worker.

    ``kind`` is one of:

    * ``"inline"``  — ``payload`` is the Network itself (small circuits;
      pickled with the task);
    * ``"factory"`` — ``payload`` names a registered or built-in factory
      (``"mcnc:m4"``, ``"example:figure4"``), re-run inside the worker so
      only the name crosses the process boundary;
    * ``"blif"`` / ``"bench"`` — ``payload`` is netlist text, parsed in
      the worker.

    ``key`` identifies the circuit for warm caching; two refs with the
    same key are assumed to resolve to the same network.
    """

    kind: str
    payload: object
    key: str

    @classmethod
    def inline(cls, network: Network, key: str | None = None) -> "CircuitRef":
        return cls("inline", network, key or network.name)

    @classmethod
    def factory(cls, name: str) -> "CircuitRef":
        return cls("factory", name, name)

    @classmethod
    def from_file(cls, path: str) -> "CircuitRef":
        kind = "bench" if path.endswith(".bench") else "blif"
        with open(path) as fh:
            return cls(kind, fh.read(), path)

    def resolve(self) -> Network:
        """Materialize a fresh network (callers own mutation rights)."""
        if self.kind == "inline":
            return self.payload.copy()
        if self.kind == "factory":
            factory = _FACTORIES.get(self.payload) or _builtin_factory(
                str(self.payload)
            )
            return factory()
        if self.kind == "blif":
            from repro.network import parse_blif

            return parse_blif(str(self.payload))
        if self.kind == "bench":
            from repro.network import parse_bench

            return parse_bench(str(self.payload))
        raise ParallelError(f"unknown circuit ref kind {self.kind!r}")


# ----------------------------------------------------------------------
# output cones — the per-output shard
# ----------------------------------------------------------------------
def output_cone(network: Network, outputs: Sequence[str]) -> Network:
    """The sub-network feeding ``outputs`` (transitive fanin closure).

    Required times computed on the cone are exactly the requirements that
    subset of outputs imposes; min-merging cones over all outputs gives
    the network-level (value-independent) requirement.
    """
    unknown = [o for o in outputs if o not in network.nodes]
    if unknown:
        raise ParallelError(f"unknown outputs {unknown} in {network.name}")
    keep: set[str] = set()
    stack = list(outputs)
    while stack:
        name = stack.pop()
        if name in keep:
            continue
        keep.add(name)
        stack.extend(network.nodes[name].fanins)
    cone = Network(f"{network.name}")
    for name in network.topological_order():
        if name not in keep:
            continue
        node = network.nodes[name]
        if node.is_input:
            cone.add_input(name)
        else:
            cone.add_node(name, list(node.fanins), node.cover.copy())
    cone.set_outputs([o for o in network.outputs if o in set(outputs)])
    return cone


# ----------------------------------------------------------------------
# the task envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``kind`` selects the worker-side handler (see
    :data:`repro.parallel.worker.HANDLERS`); ``payload`` is the
    handler-specific picklable argument dict.
    """

    task_id: str
    kind: str
    payload: dict = field(default_factory=dict, hash=False)
    circuit_key: str | None = None
    cost: float = 1.0
    #: wall-clock seconds the pool allows one attempt before the worker
    #: is killed and the task requeued (None = no limit)
    timeout: float | None = None
    #: extra attempts after a worker death or timeout (a clean task
    #: exception is deterministic and is *not* retried)
    max_retries: int = 2


def estimate_cost(
    network: Network,
    method: str,
    options: Mapping[str, object] | None = None,
) -> float:
    """Relative cost of one required-time analysis, for LPT ordering.

    Scales the method weight by circuit size and depth; a ``max_nodes``
    budget caps the estimate (an aborting run costs roughly its budget).
    """
    options = options or {}
    size = max(1, network.num_gates)
    depth = max(1, network.depth())
    weight = METHOD_WEIGHTS.get(method, 1.0)
    cost = weight * size * (1.0 + depth / 16.0)
    max_nodes = options.get("max_nodes")
    if max_nodes:
        cost = min(cost, weight * float(max_nodes) / 100.0)
    time_budget = options.get("time_budget")
    if time_budget:
        cost = min(cost, 1e4 * float(time_budget))
    return cost


def required_time_task(
    circuit: CircuitRef,
    method: str,
    output_required: Mapping[str, float] | float = 0.0,
    outputs: Sequence[str] | None = None,
    delays=None,
    options: Mapping[str, object] | None = None,
    cost: float | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    task_id: str | None = None,
) -> Task:
    """Build one required-time analysis task.

    ``outputs=None`` analyzes the whole network (the Table-1 shard:
    one task per (circuit, method)); a non-empty tuple restricts the
    analysis to that output cone (the per-output shard).
    """
    if task_id is None:
        task_id = f"{circuit.key}/{method}"
        if outputs is not None:
            task_id += "/" + ",".join(outputs)
    payload = {
        "circuit": circuit,
        "method": method,
        "output_required": output_required,
        "outputs": tuple(outputs) if outputs is not None else None,
        "delays": delays,
        "options": dict(options or {}),
    }
    return Task(
        task_id=task_id,
        kind="required",
        payload=payload,
        circuit_key=circuit.key,
        cost=cost if cost is not None else 1.0,
        timeout=timeout,
        max_retries=max_retries,
    )


def shard_required_time(
    network: Network,
    method: str,
    output_required: Mapping[str, float] | float = 0.0,
    delays=None,
    options: Mapping[str, object] | None = None,
    timeout: float | None = None,
) -> list[Task]:
    """Shard one network's required-time analysis per primary output.

    Each task analyzes one output cone; :func:`repro.parallel.merge
    .merge_required_outcomes` min-combines the per-cone input
    requirements.  The merge is *sound* for every method (each output's
    constraint is enforced by its own cone) and *exact* for the
    topological baseline; for the approximate methods it can be tighter
    (less loose) than a whole-network run — see docs/PARALLEL.md.
    """
    ref = CircuitRef.inline(network)
    tasks = []
    req_map = (
        {o: float(t) for o, t in output_required.items()}
        if isinstance(output_required, Mapping)
        else {o: float(output_required) for o in network.outputs}
    )
    for out in network.outputs:
        cone = output_cone(network, [out])
        tasks.append(
            required_time_task(
                ref,
                method,
                output_required={out: req_map[out]},
                outputs=(out,),
                delays=delays,
                options=options,
                cost=estimate_cost(cone, method, options),
                timeout=timeout,
            )
        )
    return tasks


def order_by_cost(tasks: Iterable[Task]) -> list[Task]:
    """Longest-processing-time-first schedule order (stable on ties)."""
    indexed = list(enumerate(tasks))
    indexed.sort(key=lambda pair: (-pair[1].cost, pair[0]))
    return [task for _, task in indexed]


__all__ = [
    "CircuitRef",
    "METHOD_WEIGHTS",
    "ParallelError",
    "Task",
    "estimate_cost",
    "order_by_cost",
    "output_cone",
    "register_factory",
    "required_time_task",
    "shard_required_time",
]
