"""A persistent fork-based worker pool with warm workers and a fault envelope.

Design (see docs/PARALLEL.md for the full lifecycle):

* **Persistent workers** — ``jobs`` child processes are forked once and
  survive across :meth:`WorkerPool.run` calls, so warm per-circuit state
  (parsed networks) amortizes over a whole batch and across batches.
* **Parent-side scheduling** — each worker has a private duplex pipe and
  holds at most one task; the parent picks the next task itself instead
  of letting a shared queue decide.  That buys (a) LPT ordering — most
  expensive task first, so a big BDD job never dangles off the end of the
  schedule, (b) circuit affinity — a task prefers a worker already warm
  on its circuit, and (c) exact knowledge of which task died with which
  worker.
* **Fault envelope** — a worker that dies mid-task (segfault, OOM kill)
  or exceeds the task's ``timeout`` is killed and replaced; its task is
  requeued with exponential backoff up to ``task.max_retries`` extra
  attempts.  Exhausted retries produce an error :class:`TaskOutcome`,
  never an exception: one poisoned task cannot sink the batch, and the
  parent never hangs on a dead child.  A *clean* task exception is
  deterministic and is recorded immediately without retry.
* **Deterministic merge** — results are reassembled in submission order
  regardless of completion order; worker metric deltas and span trees are
  folded into the parent's observability registry/trace as they arrive
  (:mod:`repro.parallel.merge`).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time as _time
from multiprocessing.connection import wait as _conn_wait

from repro.obs.metrics import REGISTRY
from repro.obs import trace as _trace_mod
from repro.parallel import merge as _merge
from repro.parallel.results import BatchResult, PoolEvent, TaskOutcome
from repro.parallel.tasks import ParallelError, Task
from repro.parallel.worker import child_main


def default_jobs() -> int:
    """The ``--jobs 0`` resolution: one worker per available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover — non-Linux
        return max(1, os.cpu_count() or 1)


class _Worker:
    """Parent-side handle of one child process."""

    __slots__ = ("proc", "conn", "envelope", "deadline", "warm_key", "sent_at")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.envelope: dict | None = None
        self.deadline: float | None = None
        self.warm_key: str | None = None
        self.sent_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.envelope is not None

    @property
    def pid(self) -> int | None:
        return self.proc.pid


class _Pending:
    """One queued (task, attempts) entry with its backoff gate."""

    __slots__ = ("task", "index", "attempts", "not_before")

    def __init__(self, task: Task, index: int, attempts: int = 0, not_before: float = 0.0):
        self.task = task
        self.index = index
        self.attempts = attempts
        self.not_before = not_before


class WorkerPool:
    """``jobs`` warm fork workers executing :class:`Task` batches."""

    def __init__(
        self,
        jobs: int,
        start_method: str | None = None,
        retry_backoff: float = 0.05,
        poll_interval: float = 0.05,
    ):
        if jobs < 1:
            raise ParallelError(f"jobs must be >= 1 (got {jobs})")
        self.jobs = jobs
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self.retry_backoff = retry_backoff
        self.poll_interval = poll_interval
        self._workers: list[_Worker] = []
        self._closed = False
        self._spawned = 0

    # -- lifecycle ------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=child_main,
            args=(child_conn, os.getpid()),
            daemon=True,
            name=f"repro-pool-{self._spawned}",
        )
        proc.start()
        child_conn.close()
        self._spawned += 1
        REGISTRY.counter("parallel.workers_spawned").inc()
        return _Worker(proc, parent_conn)

    def _ensure_workers(self) -> None:
        if self._closed:
            raise ParallelError("pool is closed")
        while len(self._workers) < self.jobs:
            self._workers.append(self._spawn_worker())

    def _replace(self, worker: _Worker) -> None:
        """Kill/reap ``worker`` and fork a fresh one in its slot."""
        try:
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover — terminate failed
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
        finally:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers[self._workers.index(worker)] = self._spawn_worker()

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in self._workers:
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=2.0)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the batch loop -------------------------------------------------
    def run(self, tasks: list[Task], merge_obs: bool = True) -> BatchResult:
        """Execute ``tasks``; outcomes come back in submission order.

        ``merge_obs=True`` folds each worker's metric deltas into the
        parent registry and grafts worker span trees into the parent's
        active trace (when one is recording).
        """
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ParallelError("duplicate task_ids in batch")
        self._ensure_workers()
        t0 = _time.perf_counter()
        trace_tasks = _trace_mod.is_tracing()
        events: list[PoolEvent] = []
        results: dict[str, TaskOutcome] = {}
        # LPT order: most expensive first, submission order on ties
        pending: list[_Pending] = [
            _Pending(task, i) for i, task in enumerate(tasks)
        ]
        pending.sort(key=lambda p: (-p.task.cost, p.index))

        def record(outcome: TaskOutcome, worker: _Worker | None) -> None:
            results[outcome.task_id] = outcome
            REGISTRY.counter(
                "parallel.tasks_completed" if outcome.ok else "parallel.tasks_failed"
            ).inc()
            if merge_obs and worker is not None:
                _merge.merge_outcome_obs(
                    outcome, base_offset=worker.sent_at - t0
                )

        def attempt_failed(worker: _Worker, kind: str, detail: str) -> None:
            envelope = worker.envelope
            task: Task = envelope["task"]
            attempts = envelope["attempts"] + 1
            now = _time.perf_counter() - t0
            events.append(
                PoolEvent(
                    kind=kind,
                    task_id=task.task_id,
                    detail=detail,
                    worker_pid=worker.pid,
                    attempts=attempts,
                    t=now,
                )
            )
            REGISTRY.counter(f"parallel.{kind.replace('-', '_')}s").inc()
            self._replace(worker)
            if attempts <= task.max_retries:
                backoff = self.retry_backoff * (2 ** (attempts - 1))
                events.append(
                    PoolEvent(
                        kind="retry",
                        task_id=task.task_id,
                        detail=f"backoff {backoff:.2f}s",
                        attempts=attempts,
                        t=now,
                    )
                )
                REGISTRY.counter("parallel.retries").inc()
                entry = _Pending(
                    task,
                    index=ids.index(task.task_id),
                    attempts=attempts,
                    not_before=_time.perf_counter() + backoff,
                )
                pending.append(entry)
                pending.sort(key=lambda p: (-p.task.cost, p.index))
            else:
                record(
                    TaskOutcome(
                        task_id=task.task_id,
                        ok=False,
                        error=f"{kind} after {attempts} attempts: {detail}",
                        error_type="PoolFault",
                        attempts=attempts,
                    ),
                    None,
                )

        def pick(worker: _Worker) -> _Pending | None:
            """Highest-priority dispatchable task, warm-affinity first."""
            now = _time.perf_counter()
            fallback = None
            for entry in pending:
                if entry.not_before > now:
                    continue
                if worker.warm_key and entry.task.circuit_key == worker.warm_key:
                    return entry
                if fallback is None:
                    fallback = entry
            # when another idle worker is warm on the fallback's circuit,
            # leave it for that worker only if it could take it now
            if fallback is not None and fallback.task.circuit_key:
                for other in self._workers:
                    if (
                        other is not worker
                        and not other.busy
                        and other.warm_key == fallback.task.circuit_key
                    ):
                        for entry in pending:
                            if entry is not fallback and entry.not_before <= now:
                                return entry
                        break
            return fallback

        while len(results) < len(tasks):
            now = _time.perf_counter()
            # liveness sweep (busy deaths are handled below on EOF, but a
            # child can die without closing the pipe promptly)
            for worker in list(self._workers):
                if not worker.proc.is_alive():
                    if worker.busy:
                        attempt_failed(
                            worker,
                            "worker-death",
                            f"worker pid={worker.pid} exited "
                            f"(code {worker.proc.exitcode})",
                        )
                    else:
                        self._replace(worker)
            # dispatch
            for worker in self._workers:
                if worker.busy or not pending:
                    continue
                entry = pick(worker)
                if entry is None:
                    continue
                pending.remove(entry)
                envelope = {
                    "task": entry.task,
                    "attempts": entry.attempts,
                    "trace": trace_tasks,
                }
                try:
                    worker.conn.send(envelope)
                except (BrokenPipeError, OSError):
                    pending.append(entry)
                    pending.sort(key=lambda p: (-p.task.cost, p.index))
                    self._replace(worker)
                    continue
                worker.envelope = envelope
                worker.sent_at = _time.perf_counter()
                worker.deadline = (
                    worker.sent_at + entry.task.timeout
                    if entry.task.timeout is not None
                    else None
                )
                worker.warm_key = entry.task.circuit_key or worker.warm_key
            # wait for results / deaths / deadlines
            busy = [w for w in self._workers if w.busy]
            if not busy:
                if not pending:  # pragma: no cover — scheduler invariant
                    raise ParallelError(
                        f"pool lost track of "
                        f"{len(tasks) - len(results)} task(s)"
                    )
                _time.sleep(min(self.poll_interval, 0.02))
                continue
            timeout = self.poll_interval
            for worker in busy:
                if worker.deadline is not None:
                    timeout = min(timeout, max(0.0, worker.deadline - now))
            ready = _conn_wait([w.conn for w in busy], timeout)
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                worker = by_conn[conn]
                try:
                    outcome: TaskOutcome = conn.recv()
                except (EOFError, OSError):
                    attempt_failed(
                        worker,
                        "worker-death",
                        f"pipe to pid={worker.pid} closed mid-task",
                    )
                    continue
                worker.envelope = None
                worker.deadline = None
                record(outcome, worker)
                if not outcome.ok and outcome.error_type != "PoolFault":
                    events.append(
                        PoolEvent(
                            kind="task-error",
                            task_id=outcome.task_id,
                            detail=outcome.error or "",
                            worker_pid=worker.pid,
                            attempts=outcome.attempts,
                            t=_time.perf_counter() - t0,
                        )
                    )
            # deadline sweep
            now = _time.perf_counter()
            for worker in list(self._workers):
                if not worker.busy or worker.deadline is None:
                    continue
                if now < worker.deadline:
                    continue
                # the result may have landed right at the wire
                if worker.conn.poll(0):
                    continue  # picked up on the next iteration
                task: Task = worker.envelope["task"]
                attempt_failed(
                    worker,
                    "timeout",
                    f"exceeded {task.timeout:.2f}s budget",
                )

        outcomes = [results[tid] for tid in ids]
        return BatchResult(
            outcomes=outcomes,
            events=events,
            wall=_time.perf_counter() - t0,
            jobs=self.jobs,
        )


__all__ = ["WorkerPool", "default_jobs"]
