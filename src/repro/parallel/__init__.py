"""Process-parallel execution layer: sharded batches on warm worker pools.

The per-(circuit, output, engine) required-time tasks of the paper's
experiments are embarrassingly parallel — every task builds its own
χ-functions and BDD manager — so this package converts core count into
wall time while keeping results bit-identical to serial runs:

* :mod:`repro.parallel.tasks`   — the sharded task model (circuit refs,
  output cones, cost-based LPT ordering);
* :mod:`repro.parallel.pool`    — persistent fork workers with warm
  per-circuit caches, per-task timeouts, retry-with-backoff on worker
  death;
* :mod:`repro.parallel.worker`  — the execution core (shared with the
  serial path) plus obs snapshot/diff bracketing and span shipping;
* :mod:`repro.parallel.merge`   — deterministic reassembly: canonical
  result order, metric-delta folding, span grafting, per-output
  min-merge;
* :mod:`repro.parallel.batch`   — ``run_batch(tasks, jobs=N)``, the
  entry point the CLI / fuzz runner / benchmarks sit on.

See docs/PARALLEL.md for the task model, worker lifecycle, and metric
merge semantics.
"""

from repro.parallel.batch import run_batch
from repro.parallel.merge import (
    graft_spans,
    merge_metrics,
    merge_outcome_obs,
    merge_required_outcomes,
)
from repro.parallel.pool import WorkerPool, default_jobs
from repro.parallel.results import (
    BatchResult,
    FuzzCaseOutcome,
    PoolEvent,
    RequiredTimeOutcome,
    TaskOutcome,
)
from repro.parallel.tasks import (
    CircuitRef,
    ParallelError,
    Task,
    estimate_cost,
    order_by_cost,
    output_cone,
    register_factory,
    required_time_task,
    shard_required_time,
)

__all__ = [
    "BatchResult",
    "CircuitRef",
    "FuzzCaseOutcome",
    "ParallelError",
    "PoolEvent",
    "RequiredTimeOutcome",
    "Task",
    "TaskOutcome",
    "WorkerPool",
    "default_jobs",
    "estimate_cost",
    "graft_spans",
    "merge_metrics",
    "merge_outcome_obs",
    "merge_required_outcomes",
    "order_by_cost",
    "output_cone",
    "register_factory",
    "required_time_task",
    "run_batch",
    "shard_required_time",
]
