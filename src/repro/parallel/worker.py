"""Worker-side execution: handlers, warm per-circuit state, obs shipping.

The same :func:`execute_envelope` core runs in two places:

* inside a pool worker process (:func:`child_main`, the fork target), and
* in the parent for ``jobs=1`` — the serial path of
  :func:`repro.parallel.batch.run_batch` — so serial and parallel runs
  share every line of task-execution code and differ only in transport.

Each execution is bracketed with ``REGISTRY.snapshot()``/``diff()`` so the
counter deltas attributable to *this task alone* ship back with the
result, and (when the parent is tracing) with a worker-local trace whose
span tree is serialized into plain dicts for grafting into the parent
trace.  Merged parallel runs therefore expose the same ``bdd.*``/``sat.*``
metrics and span taxonomy as serial runs.

Warm state: a worker keeps the most recently resolved :class:`Network`
per ``circuit_key`` (and a bounded LRU of others), so a stream of tasks
against the same circuit pays parsing/construction once.  Analyses always
run on a private ``copy()`` — warmth never leaks mutation between tasks.
"""

from __future__ import annotations

import os
import time as _time
import traceback as _traceback
from collections import OrderedDict

from repro.obs.metrics import REGISTRY
from repro.obs import trace as _trace_mod
from repro.parallel.results import (
    FuzzCaseOutcome,
    RequiredTimeOutcome,
    TaskOutcome,
)
from repro.parallel.tasks import ParallelError, Task, output_cone


class WorkerState:
    """Per-worker warm caches (networks now, managers by opt-in)."""

    def __init__(self, max_networks: int = 8):
        self.max_networks = max_networks
        self._networks: OrderedDict[str, object] = OrderedDict()
        self.tasks_run = 0
        #: cache_dir → ResultCache: each worker keeps one two-tier handle
        #: per shared disk tree, so its memory tier stays warm across
        #: tasks while the disk tier is shared with every sibling worker
        self._result_caches: dict[str, object] = {}

    def result_cache(self, cache_dir: str):
        cache = self._result_caches.get(cache_dir)
        if cache is None:
            from repro.cache import ResultCache

            cache = ResultCache(cache_dir, memory_entries=64)
            self._result_caches[cache_dir] = cache
        return cache

    def network(self, ref) -> object:
        """A fresh private copy of ``ref``'s network, via the warm cache."""
        cached = self._networks.get(ref.key)
        if cached is None:
            cached = ref.resolve()
            self._networks[ref.key] = cached
            if len(self._networks) > self.max_networks:
                self._networks.popitem(last=False)
        else:
            self._networks.move_to_end(ref.key)
        return cached.copy()


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
def _handle_required(payload: dict, state: WorkerState) -> RequiredTimeOutcome:
    from repro.core.required_time import (
        analyze_required_times,
        topological_input_required_times,
    )

    from repro.cache import CachedRequiredResult, required_key
    from repro.cache.results import summarize_report

    ref = payload["circuit"]
    method = payload["method"]
    outputs = payload["outputs"]
    delays = payload["delays"]
    options = dict(payload["options"])
    # transport option: names the shared disk tier this worker consults
    cache_dir = options.pop("cache_dir", None)
    # key options still include exact_row_counts (it widens the digest);
    # the engine kwargs must not
    key_options = dict(options)
    row_counts_opt = options.pop("exact_row_counts", None)
    network = state.network(ref)
    circuit_name = network.name
    if outputs is not None:
        network = output_cone(network, list(outputs))
    output_required = payload["output_required"]

    cache = state.result_cache(cache_dir) if cache_dir else None
    key = None
    if cache is not None:
        key = required_key(network, method, delays, output_required, key_options)
        stored = cache.get(key)
        if stored is not None:
            result = CachedRequiredResult.from_payload(stored)
            result.circuit = circuit_name
            outcome = result.to_outcome()
            outcome.outputs = tuple(outputs) if outputs is not None else None
            return outcome

    baseline = topological_input_required_times(network, delays, output_required)
    report = analyze_required_times(
        network, method, delays=delays, output_required=output_required, **options
    )
    digest, input_times = summarize_report(report, baseline, row_counts_opt)
    outcome = RequiredTimeOutcome(
        method=method,
        circuit=circuit_name,
        outputs=outputs,
        nontrivial=report.nontrivial,
        elapsed=report.elapsed,
        aborted=report.aborted,
        abort_reason=report.abort_reason,
        stats=_plain(report.stats),
        digest=digest,
        input_times=input_times,
        baseline=dict(baseline),
    )
    if cache is not None and not report.aborted:
        cache.put(key, CachedRequiredResult.from_outcome(outcome).to_payload())
    return outcome


def _plain(value):
    """Deep-copy ``value`` keeping only plain JSON-ish data (defensive:
    engine stats must never smuggle an unpicklable object across)."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _handle_fuzz_case(payload: dict, state: WorkerState) -> FuzzCaseOutcome:
    from repro.fuzz.checks import EngineSuite, run_differential
    from repro.fuzz.gen import generate_case

    index = payload["index"]
    case = generate_case(payload["seed"], payload["profile"], index)
    suite = EngineSuite(**payload.get("suite", {}))
    result = run_differential(
        case,
        suite,
        oracle_max_inputs=payload.get("oracle_max_inputs", 6),
        exact_max_inputs=payload.get("exact_max_inputs", 7),
    )
    return FuzzCaseOutcome(
        index=index,
        case_id=case.case_id,
        family=case.family,
        num_inputs=case.num_inputs,
        num_gates=case.num_gates,
        ok=result.ok,
        failed_checks=list(result.failed_checks),
        failures=[(f.check, f.detail) for f in result.failures],
        checks_run=list(result.checks_run),
        skipped=list(result.skipped),
        elapsed=result.elapsed,
        metrics=dict(result.metrics),
    )


# -- fault-injection handlers (used only by the pool's own tests) -------
def _handle_test_probe(payload: dict, state: WorkerState):
    return {
        "echo": payload.get("echo"),
        "pid": os.getpid(),
        "tasks_run": state.tasks_run,
    }


def _handle_test_sleep(payload: dict, state: WorkerState):
    _time.sleep(float(payload["seconds"]))
    return {"slept": payload["seconds"], "pid": os.getpid()}


def _handle_test_kill(payload: dict, state: WorkerState):
    # dies (hard, no cleanup) until the given attempt number is reached,
    # so the pool's retry path is exercised end to end
    if payload["_attempts"] < int(payload.get("until_attempt", 1)):
        os.kill(os.getpid(), 9)
    return {"survived": True, "pid": os.getpid()}


def _handle_test_fail(payload: dict, state: WorkerState):
    raise RuntimeError(payload.get("message", "injected failure"))


HANDLERS = {
    "required": _handle_required,
    "fuzz_case": _handle_fuzz_case,
    "_test_probe": _handle_test_probe,
    "_test_sleep": _handle_test_sleep,
    "_test_kill": _handle_test_kill,
    "_test_fail": _handle_test_fail,
}


# ----------------------------------------------------------------------
# execution core (shared by the child loop and the serial path)
# ----------------------------------------------------------------------
def execute_envelope(envelope: dict, state: WorkerState) -> TaskOutcome:
    """Run one task envelope, bracketed with metrics (and a local trace)."""
    task: Task = envelope["task"]
    attempts: int = envelope.get("attempts", 0)
    want_trace: bool = envelope.get("trace", False)
    handler = HANDLERS.get(task.kind)
    outcome = TaskOutcome(
        task_id=task.task_id,
        ok=False,
        attempts=attempts + 1,
        worker_pid=os.getpid(),
    )
    if handler is None:
        outcome.error = f"unknown task kind {task.kind!r}"
        outcome.error_type = "ParallelError"
        return outcome

    payload = dict(task.payload)
    payload["_attempts"] = attempts
    before = REGISTRY.snapshot()
    local_trace = None
    if want_trace and not _trace_mod.is_tracing():
        local_trace = _trace_mod.start_trace()
    t0 = _time.perf_counter()
    try:
        with _trace_mod.span(
            "parallel.task", task=task.task_id, kind=task.kind, attempt=attempts + 1
        ):
            outcome.value = handler(payload, state)
        outcome.ok = True
    except Exception as exc:  # noqa: BLE001 — every task error is data
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.error_type = type(exc).__name__
        outcome.traceback = _traceback.format_exc()
    finally:
        outcome.elapsed = _time.perf_counter() - t0
        if local_trace is not None:
            finished = _trace_mod.stop_trace()
            outcome.spans = serialize_spans(finished.roots)
        outcome.metrics = REGISTRY.snapshot().diff(before)
        state.tasks_run += 1
    return outcome


def serialize_spans(roots) -> list[dict]:
    """Span tree → nested plain dicts (the picklable trace payload)."""
    def one(sp) -> dict:
        return {
            "name": sp.name,
            "start": sp.start,
            "dur": sp.duration,
            "status": sp.status,
            "attrs": dict(sp.attrs),
            "metrics": dict(sp.metrics),
            "children": [one(c) for c in sp.children],
        }

    return [one(sp) for sp in roots]


# ----------------------------------------------------------------------
# the child process loop
# ----------------------------------------------------------------------
def child_main(conn, parent_pid: int) -> None:  # pragma: no cover — runs in
    # a forked child; the execution core above is covered in-process
    state = WorkerState()
    # a fork inherits the parent's active trace object; recording into it
    # from the child would interleave two processes' span stacks
    _trace_mod._ACTIVE = None
    try:
        while True:
            try:
                envelope = conn.recv()
            except (EOFError, OSError):
                break
            if envelope is None:
                break
            outcome = execute_envelope(envelope, state)
            try:
                conn.send(outcome)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()


__all__ = [
    "HANDLERS",
    "WorkerState",
    "child_main",
    "execute_envelope",
    "serialize_spans",
]
