"""Worker-side execution: handlers, warm per-circuit state, obs shipping.

The same :func:`execute_envelope` core runs in two places:

* inside a pool worker process (:func:`child_main`, the fork target), and
* in the parent for ``jobs=1`` — the serial path of
  :func:`repro.parallel.batch.run_batch` — so serial and parallel runs
  share every line of task-execution code and differ only in transport.

Each execution is bracketed with ``REGISTRY.snapshot()``/``diff()`` so the
counter deltas attributable to *this task alone* ship back with the
result, and (when the parent is tracing) with a worker-local trace whose
span tree is serialized into plain dicts for grafting into the parent
trace.  Merged parallel runs therefore expose the same ``bdd.*``/``sat.*``
metrics and span taxonomy as serial runs.

Warm state: a worker keeps the most recently resolved :class:`Network`
per ``circuit_key`` (and a bounded LRU of others), so a stream of tasks
against the same circuit pays parsing/construction once.  Analyses always
run on a private ``copy()`` — warmth never leaks mutation between tasks.
"""

from __future__ import annotations

import os
import time as _time
import traceback as _traceback
from collections import OrderedDict

from repro.obs.metrics import REGISTRY
from repro.obs import trace as _trace_mod
from repro.parallel.results import (
    FuzzCaseOutcome,
    RequiredTimeOutcome,
    TaskOutcome,
)
from repro.parallel.tasks import ParallelError, Task, output_cone


class WorkerState:
    """Per-worker warm caches (networks now, managers by opt-in)."""

    def __init__(self, max_networks: int = 8):
        self.max_networks = max_networks
        self._networks: OrderedDict[str, object] = OrderedDict()
        self.tasks_run = 0

    def network(self, ref) -> object:
        """A fresh private copy of ``ref``'s network, via the warm cache."""
        cached = self._networks.get(ref.key)
        if cached is None:
            cached = ref.resolve()
            self._networks[ref.key] = cached
            if len(self._networks) > self.max_networks:
                self._networks.popitem(last=False)
        else:
            self._networks.move_to_end(ref.key)
        return cached.copy()


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
def _handle_required(payload: dict, state: WorkerState) -> RequiredTimeOutcome:
    from repro.core.required_time import (
        analyze_required_times,
        topological_input_required_times,
    )

    ref = payload["circuit"]
    method = payload["method"]
    outputs = payload["outputs"]
    delays = payload["delays"]
    options = dict(payload["options"])
    # layer options (digest controls) must not reach the engine kwargs
    row_counts_opt = options.pop("exact_row_counts", None)
    network = state.network(ref)
    circuit_name = network.name
    if outputs is not None:
        network = output_cone(network, list(outputs))
    output_required = payload["output_required"]

    baseline = topological_input_required_times(network, delays, output_required)
    report = analyze_required_times(
        network, method, delays=delays, output_required=output_required, **options
    )
    digest: dict = {}
    input_times: dict[str, float] | None = None
    detail = report.detail
    if method == "topological":
        input_times = dict(detail)
    elif method == "approx2" and detail is not None:
        digest["checks"] = getattr(detail, "checks", None)
        digest["best"] = dict(detail.best)
        digest["r_bottom"] = dict(detail.r_bottom)
        input_times = dict(detail.best)
    elif method == "approx1" and detail is not None:
        digest["num_parameters"] = detail.num_parameters
        digest["primes"] = [sorted(p) for p in detail.primes]
        digest["profiles"] = [
            sorted(pr.as_dict().items()) for pr in detail.profiles
        ]
        input_times = _loosest_profile_times(detail, baseline)
    elif method == "exact" and detail is not None and not report.aborted:
        digest["leaf_variables"] = detail.num_leaf_variables
        if row_counts_opt is not None:
            # bit-exact relation digests for small circuits (the Figure-4
            # parity check): row/minimal-row counts per input minterm
            digest["rows"] = _exact_row_counts(detail, int(row_counts_opt))
        # the relation itself cannot cross the process boundary; the
        # guaranteed-safe vector view is the topological baseline
        input_times = dict(baseline)
    if report.aborted:
        input_times = dict(baseline)
    return RequiredTimeOutcome(
        method=method,
        circuit=circuit_name,
        outputs=outputs,
        nontrivial=report.nontrivial,
        elapsed=report.elapsed,
        aborted=report.aborted,
        abort_reason=report.abort_reason,
        stats=_plain(report.stats),
        digest=digest,
        input_times=input_times,
        baseline=dict(baseline),
    )


def _plain(value):
    """Deep-copy ``value`` keeping only plain JSON-ish data (defensive:
    engine stats must never smuggle an unpicklable object across)."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _loosest_profile_times(result, baseline: dict) -> dict[str, float]:
    """The value-independent view of approx1's loosest single profile.

    Profiles are *alternative* safe assignments; coordinates from
    different profiles must not be mixed.  Picks the profile with the
    greatest total looseness gain over the baseline (ties broken
    lexicographically on the rendered profile, so the choice is
    deterministic), falling back to the baseline when there are none.
    """
    best = dict(baseline)
    best_gain = 0.0
    for profile in sorted(result.profiles, key=lambda p: sorted(p.as_dict().items())):
        times = profile.value_independent()
        gain = sum(
            (t - baseline[x]) if t != float("inf") else 1.0
            for x, t in times.items()
            if x in baseline and t > baseline[x]
        )
        if gain > best_gain:
            best_gain = gain
            best = {x: times.get(x, baseline[x]) for x in baseline}
    return best


def _exact_row_counts(relation, max_inputs: int) -> dict:
    import itertools

    inputs = relation.network.inputs
    if len(inputs) > max_inputs:
        return {}
    rows: dict[str, list[int]] = {}
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        minterm = dict(zip(inputs, bits))
        key = "".join(str(b) for b in bits)
        rows[key] = [
            len(relation.rows(minterm)),
            len(relation.minimal_rows(minterm)),
        ]
    return rows


def _handle_fuzz_case(payload: dict, state: WorkerState) -> FuzzCaseOutcome:
    from repro.fuzz.checks import EngineSuite, run_differential
    from repro.fuzz.gen import generate_case

    index = payload["index"]
    case = generate_case(payload["seed"], payload["profile"], index)
    suite = EngineSuite(**payload.get("suite", {}))
    result = run_differential(
        case,
        suite,
        oracle_max_inputs=payload.get("oracle_max_inputs", 6),
        exact_max_inputs=payload.get("exact_max_inputs", 7),
    )
    return FuzzCaseOutcome(
        index=index,
        case_id=case.case_id,
        family=case.family,
        num_inputs=case.num_inputs,
        num_gates=case.num_gates,
        ok=result.ok,
        failed_checks=list(result.failed_checks),
        failures=[(f.check, f.detail) for f in result.failures],
        checks_run=list(result.checks_run),
        skipped=list(result.skipped),
        elapsed=result.elapsed,
        metrics=dict(result.metrics),
    )


# -- fault-injection handlers (used only by the pool's own tests) -------
def _handle_test_probe(payload: dict, state: WorkerState):
    return {
        "echo": payload.get("echo"),
        "pid": os.getpid(),
        "tasks_run": state.tasks_run,
    }


def _handle_test_sleep(payload: dict, state: WorkerState):
    _time.sleep(float(payload["seconds"]))
    return {"slept": payload["seconds"], "pid": os.getpid()}


def _handle_test_kill(payload: dict, state: WorkerState):
    # dies (hard, no cleanup) until the given attempt number is reached,
    # so the pool's retry path is exercised end to end
    if payload["_attempts"] < int(payload.get("until_attempt", 1)):
        os.kill(os.getpid(), 9)
    return {"survived": True, "pid": os.getpid()}


def _handle_test_fail(payload: dict, state: WorkerState):
    raise RuntimeError(payload.get("message", "injected failure"))


HANDLERS = {
    "required": _handle_required,
    "fuzz_case": _handle_fuzz_case,
    "_test_probe": _handle_test_probe,
    "_test_sleep": _handle_test_sleep,
    "_test_kill": _handle_test_kill,
    "_test_fail": _handle_test_fail,
}


# ----------------------------------------------------------------------
# execution core (shared by the child loop and the serial path)
# ----------------------------------------------------------------------
def execute_envelope(envelope: dict, state: WorkerState) -> TaskOutcome:
    """Run one task envelope, bracketed with metrics (and a local trace)."""
    task: Task = envelope["task"]
    attempts: int = envelope.get("attempts", 0)
    want_trace: bool = envelope.get("trace", False)
    handler = HANDLERS.get(task.kind)
    outcome = TaskOutcome(
        task_id=task.task_id,
        ok=False,
        attempts=attempts + 1,
        worker_pid=os.getpid(),
    )
    if handler is None:
        outcome.error = f"unknown task kind {task.kind!r}"
        outcome.error_type = "ParallelError"
        return outcome

    payload = dict(task.payload)
    payload["_attempts"] = attempts
    before = REGISTRY.snapshot()
    local_trace = None
    if want_trace and not _trace_mod.is_tracing():
        local_trace = _trace_mod.start_trace()
    t0 = _time.perf_counter()
    try:
        with _trace_mod.span(
            "parallel.task", task=task.task_id, kind=task.kind, attempt=attempts + 1
        ):
            outcome.value = handler(payload, state)
        outcome.ok = True
    except Exception as exc:  # noqa: BLE001 — every task error is data
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.error_type = type(exc).__name__
        outcome.traceback = _traceback.format_exc()
    finally:
        outcome.elapsed = _time.perf_counter() - t0
        if local_trace is not None:
            finished = _trace_mod.stop_trace()
            outcome.spans = serialize_spans(finished.roots)
        outcome.metrics = REGISTRY.snapshot().diff(before)
        state.tasks_run += 1
    return outcome


def serialize_spans(roots) -> list[dict]:
    """Span tree → nested plain dicts (the picklable trace payload)."""
    def one(sp) -> dict:
        return {
            "name": sp.name,
            "start": sp.start,
            "dur": sp.duration,
            "status": sp.status,
            "attrs": dict(sp.attrs),
            "metrics": dict(sp.metrics),
            "children": [one(c) for c in sp.children],
        }

    return [one(sp) for sp in roots]


# ----------------------------------------------------------------------
# the child process loop
# ----------------------------------------------------------------------
def child_main(conn, parent_pid: int) -> None:  # pragma: no cover — runs in
    # a forked child; the execution core above is covered in-process
    state = WorkerState()
    # a fork inherits the parent's active trace object; recording into it
    # from the child would interleave two processes' span stacks
    _trace_mod._ACTIVE = None
    try:
        while True:
            try:
                envelope = conn.recv()
            except (EOFError, OSError):
                break
            if envelope is None:
                break
            outcome = execute_envelope(envelope, state)
            try:
                conn.send(outcome)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()


__all__ = [
    "HANDLERS",
    "WorkerState",
    "child_main",
    "execute_envelope",
    "serialize_spans",
]
