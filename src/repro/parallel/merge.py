"""Deterministic merging of worker results into the parent's world.

Three things come back from a worker besides the result value, and each
has a parent-side home:

* **Metric deltas** — the worker brackets its task with
  ``REGISTRY.snapshot()``/``diff()``; the parent folds the deltas into a
  dedicated ``parallel.worker`` *collector* (not into the engine
  telemetry, which only sums live in-process engines).  A parent-side
  ``snapshot()``/``diff()`` bracket around a parallel batch therefore
  reports the same ``bdd.*``/``sat.*`` counters a serial run would.
  Instantaneous gauges (``bdd.nodes_live``, ``*.peak_live``, ``*.live``)
  are dropped: summing live-node deltas across dead worker managers is
  meaningless.
* **Span trees** — serialized worker spans are grafted into the parent's
  active trace under the receiving ``parallel.task`` span, offset to the
  task's dispatch time, so a merged trace reads like a serial one with
  per-worker subtrees.
* **Result values** — canonical-order reassembly is the pool's job
  (:class:`repro.parallel.results.BatchResult`); this module adds the
  required-time-specific min-merge over output cones.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import REGISTRY
from repro.obs import trace as _trace_mod
from repro.parallel.results import RequiredTimeOutcome, TaskOutcome

#: worker metric deltas accumulated since process start; exposed to
#: ``REGISTRY.snapshot()`` through the ``parallel.worker`` collector
_MERGED: dict[str, float] = {}
_MERGED_LOCK = threading.Lock()

#: monotone counter names are merged; these instantaneous suffixes are not
_GAUGE_SUFFIXES = (".live", ".nodes_live", ".peak_live")


def _collect_merged() -> dict[str, float]:
    with _MERGED_LOCK:
        return dict(_MERGED)


REGISTRY.register_collector("parallel.worker", _collect_merged)


def merge_metrics(deltas: dict[str, float]) -> None:
    """Fold one worker's counter deltas into the parent registry view."""
    with _MERGED_LOCK:
        for key, value in deltas.items():
            if key.endswith(_GAUGE_SUFFIXES):
                continue
            if value <= 0:
                # counters only grow; a negative delta is a gauge artifact
                continue
            _MERGED[key] = _MERGED.get(key, 0.0) + value


def graft_spans(records: list[dict], base_offset: float = 0.0) -> None:
    """Attach serialized worker spans to the parent's active trace.

    ``base_offset`` is the task's dispatch time relative to the trace
    start; worker-local span starts are relative to the task start, so
    grafted spans land roughly where the work actually happened on the
    parent's timeline.
    """
    trace = _trace_mod.active_trace()
    if trace is None or not records:
        return
    stack = trace._stack()
    parent = stack[-1] if stack else None

    def build(record: dict) -> _trace_mod.Span:
        sp = _trace_mod.Span(record["name"], dict(record["attrs"]), trace)
        sp.start = base_offset + record["start"]
        sp.end = sp.start + record["dur"]
        sp.status = record["status"]
        sp.metrics = dict(record["metrics"])
        sp.children = [build(child) for child in record["children"]]
        return sp

    for record in records:
        sp = build(record)
        if parent is not None:
            parent.children.append(sp)
        else:
            with trace._lock:
                trace.roots.append(sp)


def merge_outcome_obs(outcome: TaskOutcome, base_offset: float = 0.0) -> None:
    """Fold one task outcome's metrics and spans into the parent."""
    if outcome.metrics:
        merge_metrics(outcome.metrics)
    if outcome.spans:
        with _trace_mod.span(
            "parallel.merge",
            task=outcome.task_id,
            worker=outcome.worker_pid,
            attempts=outcome.attempts,
        ):
            graft_spans(outcome.spans, base_offset=base_offset)


# ----------------------------------------------------------------------
# required-time-specific merging (the per-output shard)
# ----------------------------------------------------------------------
def merge_required_outcomes(
    outcomes: list[RequiredTimeOutcome],
) -> dict:
    """Min-combine per-output-cone requirements into the network view.

    Each cone's ``input_times`` is the requirement that cone's outputs
    impose on its inputs; an input feeding several cones must satisfy all
    of them, so the merged requirement is the earliest (min).  Inputs
    outside every analyzed cone are unconstrained (+inf).  The merge is
    exact for the topological baseline and *sound but possibly tighter*
    than a whole-network run for the approximate methods (a cone cannot
    see looseness that only exists network-wide) — see docs/PARALLEL.md.
    """
    merged: dict[str, float] = {}
    baseline: dict[str, float] = {}
    nontrivial = False
    aborted: list[str] = []
    for outcome in outcomes:
        times = outcome.input_times if outcome.input_times is not None else outcome.baseline
        for x, t in times.items():
            merged[x] = min(merged.get(x, float("inf")), t)
        for x, t in outcome.baseline.items():
            baseline[x] = min(baseline.get(x, float("inf")), t)
        nontrivial = nontrivial or outcome.nontrivial
        if outcome.aborted:
            aborted.append(
                ",".join(outcome.outputs) if outcome.outputs else outcome.circuit
            )
    #: strictly-looser-than-baseline after the merge (an input can lose
    #: its per-cone looseness to a tighter cone)
    merged_nontrivial = any(
        merged[x] > baseline.get(x, float("-inf")) for x in merged
    )
    return {
        "input_times": merged,
        "baseline": baseline,
        "nontrivial_any_cone": nontrivial,
        "nontrivial_merged": merged_nontrivial,
        "aborted_cones": aborted,
    }


__all__ = [
    "graft_spans",
    "merge_metrics",
    "merge_outcome_obs",
    "merge_required_outcomes",
]
