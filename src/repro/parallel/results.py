"""Picklable result types shipped from pool workers back to the parent.

Every field that crosses the process boundary is plain data (strings,
numbers, tuples, dicts): engine objects — BDD managers, relations, SAT
solvers — never leave the worker.  What does leave is the *canonical
result row* (:meth:`RequiredTimeOutcome.row`), which deliberately excludes
wall-clock fields so that serial and parallel runs of the same task are
bit-comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

INF = math.inf


@dataclass
class TaskOutcome:
    """What the pool records for one task, however it ended.

    ``ok=False`` covers both clean handler exceptions (``error`` carries
    the message, no retry: a deterministic failure would fail again) and
    exhausted fault retries (worker deaths / timeouts; see
    ``BatchResult.events`` for the per-attempt timeline).
    """

    task_id: str
    ok: bool
    #: handler-specific payload (e.g. :class:`RequiredTimeOutcome`);
    #: ``None`` on failure
    value: object = None
    error: str | None = None
    error_type: str | None = None
    traceback: str | None = None
    #: attempts consumed (1 = first try succeeded)
    attempts: int = 1
    elapsed: float = 0.0
    worker_pid: int | None = None
    #: obs-registry deltas bracketed around this task alone
    #: (``REGISTRY.snapshot()``/``diff()`` in the worker)
    metrics: dict[str, float] = field(default_factory=dict)
    #: serialized span tree recorded in the worker (when the parent was
    #: tracing), ready for grafting into the parent trace
    spans: list[dict] = field(default_factory=list)


@dataclass
class RequiredTimeOutcome:
    """One required-time analysis, reduced to its picklable essence."""

    method: str
    circuit: str
    #: the cone this task analyzed (None = whole network)
    outputs: tuple[str, ...] | None
    nontrivial: bool
    elapsed: float
    aborted: bool = False
    abort_reason: str | None = None
    #: engine stats (leaf counts, BDD/SAT counters) — plain dicts
    stats: dict = field(default_factory=dict)
    #: method-specific canonical results (approx2 best vector, approx1
    #: primes, exact row counts, …) — deterministic, time-free
    digest: dict = field(default_factory=dict)
    #: the value-independent requirement this task's cone imposes per
    #: input (the min-merge currency); None when the method yields no
    #: single safe vector (exact)
    input_times: dict[str, float] | None = None
    #: the topological baseline restricted to this cone's inputs
    baseline: dict[str, float] = field(default_factory=dict)

    @property
    def status(self) -> str:
        if not self.aborted:
            return "ok"
        reason = self.abort_reason or ""
        return "memory out" if "node budget" in reason else "aborted"

    def row(self) -> dict:
        """The canonical (time-free) result row used for parity checks."""
        return {
            "circuit": self.circuit,
            "method": self.method,
            "outputs": list(self.outputs) if self.outputs is not None else None,
            "nontrivial": self.nontrivial,
            "status": self.status,
            "digest": _canonical(self.digest),
        }


@dataclass
class FuzzCaseOutcome:
    """One differential-fuzzing case, reduced to its verdict."""

    index: int
    case_id: str
    family: str
    num_inputs: int
    num_gates: int
    ok: bool
    failed_checks: list[str] = field(default_factory=list)
    #: (check, detail) pairs of every violated invariant
    failures: list[tuple[str, str]] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    elapsed: float = 0.0
    metrics: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class PoolEvent:
    """One entry of the pool's fault/retry timeline."""

    kind: str  # "timeout" | "worker-death" | "retry" | "task-error"
    task_id: str
    detail: str = ""
    worker_pid: int | None = None
    attempts: int = 0
    #: seconds since the batch started
    t: float = 0.0


@dataclass
class BatchResult:
    """Everything one :meth:`WorkerPool.run` produced, in canonical order.

    ``outcomes[i]`` corresponds to ``tasks[i]`` as submitted, regardless
    of the order tasks actually completed in — the deterministic merge.
    """

    outcomes: list[TaskOutcome]
    events: list[PoolEvent] = field(default_factory=list)
    wall: float = 0.0
    jobs: int = 1

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def errors(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def num_retries(self) -> int:
        return sum(1 for e in self.events if e.kind == "retry")

    def outcome(self, task_id: str) -> TaskOutcome:
        for o in self.outcomes:
            if o.task_id == task_id:
                return o
        raise KeyError(task_id)

    def report(self) -> dict:
        """A JSON-ready run report (the CLI/bench summary block)."""
        return {
            "jobs": self.jobs,
            "tasks": len(self.outcomes),
            "failures": len(self.errors),
            "retries": self.num_retries,
            "wall_seconds": round(self.wall, 3),
            "events": [
                {
                    "kind": e.kind,
                    "task": e.task_id,
                    "detail": e.detail,
                    "attempts": e.attempts,
                    "t": round(e.t, 3),
                }
                for e in self.events
            ],
        }


def _canonical(value):
    """Recursively normalize containers for order-independent equality."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


__all__ = [
    "BatchResult",
    "FuzzCaseOutcome",
    "PoolEvent",
    "RequiredTimeOutcome",
    "TaskOutcome",
]
