"""The batch runner: one entry point for serial and parallel execution.

``run_batch(tasks, jobs=N)`` is the layer the CLI, the fuzz runner, and
the benchmark harnesses sit on:

* ``jobs=1`` executes the tasks **in submission order, in process**,
  through the very same :func:`repro.parallel.worker.execute_envelope`
  core a pool worker uses — no fork, no pickling, metrics hit the parent
  registry directly.  This is the reference semantics; the existing
  serial benchmarks keep their meaning.
* ``jobs>1`` runs the batch on a :class:`repro.parallel.pool.WorkerPool`
  (LPT/cost-ordered, circuit-affine, fault-tolerant) and merges results
  deterministically — ``outcomes[i]`` always matches ``tasks[i]``.

Because both paths share the execution core and results are canonical
(time-free digests), a batch's result rows are bit-identical across any
``jobs`` value; only the wall clock changes.
"""

from __future__ import annotations

import time as _time

from repro.obs.trace import span
from repro.parallel.pool import WorkerPool, default_jobs
from repro.parallel.results import BatchResult, PoolEvent, TaskOutcome
from repro.parallel.tasks import Task
from repro.parallel.worker import WorkerState, execute_envelope


def run_batch(
    tasks: list[Task],
    jobs: int = 1,
    pool: WorkerPool | None = None,
) -> BatchResult:
    """Execute ``tasks`` serially (``jobs=1``) or on a worker pool.

    Passing an existing ``pool`` reuses its warm workers (and ignores
    ``jobs``); the caller keeps ownership and must ``close()`` it.
    """
    if jobs == 0:
        jobs = default_jobs()
    if pool is not None:
        with span("parallel.batch", tasks=len(tasks), jobs=pool.jobs):
            return pool.run(tasks)
    if jobs <= 1:
        return _run_serial(tasks)
    with span("parallel.batch", tasks=len(tasks), jobs=jobs):
        with WorkerPool(jobs) as owned:
            return owned.run(tasks)


def _run_serial(tasks: list[Task]) -> BatchResult:
    """The in-process reference path (submission order, no transport)."""
    state = WorkerState()
    outcomes: list[TaskOutcome] = []
    events: list[PoolEvent] = []
    t0 = _time.perf_counter()
    for task in tasks:
        outcome = execute_envelope({"task": task, "attempts": 0}, state)
        if not outcome.ok:
            events.append(
                PoolEvent(
                    kind="task-error",
                    task_id=task.task_id,
                    detail=outcome.error or "",
                    attempts=1,
                    t=_time.perf_counter() - t0,
                )
            )
        outcomes.append(outcome)
    return BatchResult(
        outcomes=outcomes,
        events=events,
        wall=_time.perf_counter() - t0,
        jobs=1,
    )


__all__ = ["run_batch"]
