"""Engineering-change-order layer: incremental re-analysis under edits.

The paper's Section 5 resynthesis loop — analyze, rewrite a subcircuit,
re-analyze — is this package's workload.  :class:`NetworkSession` keeps
one network's per-output cone digests and required-time rows current
across typed edits (:mod:`repro.eco.edits`), recomputing only the cones
each edit dirtied while staying bit-identical to a cold full run.  See
docs/ECO.md for the session lifecycle, edit vocabulary, and trace format.
"""

from repro.eco.edits import (
    EDIT_KINDS,
    AddNode,
    Edit,
    EditEffect,
    RemoveNode,
    Resubstitute,
    RetargetFanout,
    RetargetOutputs,
    SetDelay,
    edit_from_dict,
    edits_from_json,
)
from repro.eco.session import EditResult, NetworkSession
from repro.errors import EcoError

__all__ = [
    "AddNode",
    "EDIT_KINDS",
    "EcoError",
    "Edit",
    "EditEffect",
    "EditResult",
    "NetworkSession",
    "RemoveNode",
    "Resubstitute",
    "RetargetFanout",
    "RetargetOutputs",
    "SetDelay",
    "edit_from_dict",
    "edits_from_json",
]
