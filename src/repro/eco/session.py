"""A stateful incremental analysis session over one evolving network.

:class:`NetworkSession` is the engineering-change-order API ROADMAP
item 5 promotes out of the cache layer: it keeps a live
:class:`~repro.network.network.Network` together with the per-output
cone digests and required-time rows of its *current* state, and
:meth:`~NetworkSession.apply_edit` keeps both in sync after every edit
while touching only what the edit dirtied:

1. the edit validates (raising :class:`~repro.errors.EcoError` before
   any mutation — the atomicity contract) and applies in place;
2. the dirty **candidates** are the outputs in the transitive fanout of
   the touched nodes (:func:`repro.network.transform.transitive_fanout`)
   — a pure graph walk, no hashing of unaffected cones;
3. only candidate cones are re-hashed (:func:`repro.cache.keys.required_key`);
   an unchanged digest proves the cone identical and keeps its row;
4. changed digests consult the session's :class:`ResultCache`, and real
   misses run through the same ``required_time_task``/``run_batch``
   worker core a sharded ``required --jobs N`` run uses;
5. all per-cone outcomes min-merge with
   :func:`repro.parallel.merge.merge_required_outcomes`.

Because steps 3–5 are byte-for-byte the pipeline of
:func:`repro.cache.incremental.incremental_required_times`, a session's
merged view and canonical rows after any edit sequence are bit-identical
to a cold full run of the final network — the invariant the ``eco`` fuzz
family and ``benchmarks/bench_eco.py`` check after every single edit
(:meth:`~NetworkSession.verify_against_full_recompute`).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cache.incremental import _required_map
from repro.cache.keys import required_key
from repro.cache.results import CachedRequiredResult, jsonify
from repro.cache.store import ResultCache
from repro.eco.edits import Edit, edit_from_dict
from repro.errors import EcoError
from repro.network.network import Network
from repro.network.transform import transitive_fanout
from repro.obs.trace import span


@dataclass
class EditResult:
    """What one :meth:`NetworkSession.apply_edit` call did.

    ``candidates`` are the outputs re-hashed (touched-node transitive
    fanout ∩ outputs, plus output-set changes); of those, ``clean`` kept
    an identical digest, ``cached`` hit the result cache under the new
    digest, and ``dirty`` actually re-ran an engine.
    """

    edit: Edit
    candidates: list[str] = field(default_factory=list)
    dirty: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    clean: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    wall: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every candidate cone hit or recomputed successfully."""
        return not self.failed

    def report(self) -> dict:
        """Machine-readable summary (one JSON line per edit in the CLI)."""
        return {
            "edit": self.edit.to_dict(),
            "candidates": sorted(self.candidates),
            "recomputed": sorted(self.dirty),
            "cache_hits": sorted(self.cached),
            "clean": sorted(self.clean),
            "added": sorted(self.added),
            "removed": sorted(self.removed),
            "failed": sorted(self.failed),
            "wall_seconds": round(self.wall, 3),
        }


class NetworkSession:
    """One network under edit, with always-current required-time rows.

    Parameters mirror :func:`incremental_required_times`; ``cache=None``
    uses a private memory-only :class:`ResultCache` (still useful — an
    edit that undoes a previous one replays the old rows instead of
    re-running engines).
    """

    def __init__(
        self,
        network: Network,
        method: str = "topological",
        delays=None,
        output_required: Mapping[str, float] | float = 0.0,
        options: Mapping[str, object] | None = None,
        cache: ResultCache | None = None,
        jobs: int = 1,
    ):
        if not network.outputs:
            raise EcoError(f"network {network.name!r} has no outputs")
        self.network = network.copy()
        self.method = method
        self.delays = delays
        self.required = _required_map(self.network, output_required)
        #: fallback requirement for outputs introduced by retarget_outputs
        self.default_required = (
            0.0 if isinstance(output_required, Mapping) else float(output_required)
        )
        self.options = dict(options or {})
        self.cache = cache if cache is not None else ResultCache(None)
        self.jobs = jobs
        self.edits_applied = 0
        self._digests: dict[str, str] = {}
        self._outcomes: dict[str, object] = {}
        self._failed: set[str] = set()
        # eager cold analysis: every output is a candidate of edit #0
        self._refresh(self.network.outputs)

    # ------------------------------------------------------------------
    # the incremental core
    # ------------------------------------------------------------------
    def _refresh(self, candidates: Iterable[str]) -> EditResult:
        """Re-hash ``candidates``' cones and recompute the changed ones.

        This is steps 3–5 of the module docstring — deliberately the
        same key/task/merge pipeline as ``incremental_required_times``
        so session rows can never drift from a cold run.
        """
        from repro.parallel import CircuitRef, required_time_task, run_batch
        from repro.parallel.tasks import estimate_cost, output_cone

        result = EditResult(edit=None)  # type: ignore[arg-type]  # stamped by caller
        tasks, task_outputs, task_keys = [], [], []
        # previously failed cones retry on every refresh until they run
        for name in dict.fromkeys([*candidates, *sorted(self._failed)]):
            cone = output_cone(self.network, [name])
            key = required_key(
                cone,
                self.method,
                self.delays,
                {name: self.required[name]},
                self.options,
            )
            result.candidates.append(name)
            if self._digests.get(name) == key.digest:
                result.clean.append(name)
                continue
            payload = self.cache.get(key)
            if payload is not None:
                cached = CachedRequiredResult.from_payload(payload)
                cached.circuit = self.network.name
                self._outcomes[name] = cached.to_outcome()
                self._digests[name] = key.digest
                self._failed.discard(name)
                result.cached.append(name)
                continue
            result.dirty.append(name)
            tasks.append(
                required_time_task(
                    CircuitRef.inline(cone, key=f"{self.network.name}/{name}"),
                    self.method,
                    output_required={name: self.required[name]},
                    delays=self.delays,
                    options=self.options,
                    cost=estimate_cost(cone, self.method, self.options),
                    task_id=f"{self.network.name}/{self.method}/{name}",
                )
            )
            task_outputs.append(name)
            task_keys.append(key)
        if tasks:
            batch = run_batch(tasks, jobs=self.jobs)
            for name, key, outcome in zip(task_outputs, task_keys, batch.outcomes):
                if not outcome.ok:
                    self._failed.add(name)
                    self._digests.pop(name, None)
                    self._outcomes.pop(name, None)
                    result.failed.append(name)
                    continue
                value = outcome.value
                self._outcomes[name] = value
                self._digests[name] = key.digest
                self._failed.discard(name)
                if not value.aborted:
                    self.cache.put(
                        key, CachedRequiredResult.from_outcome(value).to_payload()
                    )
        return result

    # ------------------------------------------------------------------
    # editing
    # ------------------------------------------------------------------
    def apply_edit(self, edit: Edit | Mapping) -> EditResult:
        """Validate, apply, and incrementally re-analyze one edit.

        Raises :class:`EcoError` with the session observably unchanged
        when the edit is invalid; otherwise returns the
        :class:`EditResult` ledger of what the edit dirtied.
        """
        if isinstance(edit, Mapping):
            edit = edit_from_dict(edit)
        t0 = _time.perf_counter()
        with span("eco.apply_edit", kind=edit.kind, circuit=self.network.name):
            # validation is the atomicity boundary: nothing below raises
            # on a well-formed session
            edit.validate(self.network, self.delays, self.required)
            old_outputs = list(self.network.outputs)
            old_required = dict(self.required)
            effect = edit.apply(self.network, self._delay_model(), self.required)
            if effect.delays is not None:
                self.delays = effect.delays
            if effect.required is not None:
                self.required = dict(effect.required)
            if effect.outputs_changed:
                candidates = [
                    o
                    for o in self.network.outputs
                    if o not in self._digests
                    or self.required[o] != old_required.get(o)
                ]
                result = self._refresh(candidates)
                result.added = [
                    o for o in self.network.outputs if o not in old_outputs
                ]
                result.removed = [
                    o for o in old_outputs if o not in self.network.outputs
                ]
                for name in result.removed:
                    self._digests.pop(name, None)
                    self._outcomes.pop(name, None)
                    self._failed.discard(name)
                    self.required.pop(name, None)
            else:
                downstream = (
                    transitive_fanout(self.network, sorted(effect.touched))
                    if effect.touched
                    else set()
                )
                result = self._refresh(
                    [o for o in self.network.outputs if o in downstream]
                )
            self.edits_applied += 1
        result.edit = edit
        result.wall = _time.perf_counter() - t0
        return result

    def apply_trace(self, edits: Iterable[Edit | Mapping]) -> list[EditResult]:
        """Apply a whole edit trace, one :class:`EditResult` per edit."""
        return [self.apply_edit(edit) for edit in edits]

    def _delay_model(self):
        """The materialized delay model edits mutate (``None`` and
        ``unit_delay()`` hash identically in cone keys)."""
        if self.delays is not None:
            return self.delays
        from repro.timing.delay import unit_delay

        return unit_delay()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def rows(self) -> dict[str, dict]:
        """Per-output canonical rows of the current state — the parity
        currency (byte-identical to a cold run's rows)."""
        return {
            name: CachedRequiredResult.from_outcome(self._outcomes[name]).row()
            for name in self.network.outputs
            if name in self._outcomes
        }

    def digests(self) -> dict[str, str]:
        """Per-output cone digests of the current state (a copy)."""
        return dict(self._digests)

    def merged(self) -> dict:
        """The min-merged network view of the current per-cone rows."""
        from repro.parallel import merge_required_outcomes

        return merge_required_outcomes(
            [
                self._outcomes[name]
                for name in self.network.outputs
                if name in self._outcomes
            ]
        )

    @property
    def failed(self) -> list[str]:
        """Outputs whose last recompute failed (excluded from views)."""
        return sorted(self._failed)

    # ------------------------------------------------------------------
    # the parity oracle
    # ------------------------------------------------------------------
    def full_recompute(self) -> "NetworkSession":
        """A fresh cold session over the current network state — the
        full-recompute oracle of the differential fuzz checks."""
        return NetworkSession(
            self.network,
            method=self.method,
            delays=self.delays,
            output_required=self.required,
            options=self.options,
            cache=ResultCache(None),
            jobs=1,
        )

    def verify_against_full_recompute(self) -> list[str]:
        """Compare this session against a cold full run of the same state.

        Returns human-readable divergence descriptions (empty = parity).
        Compares the per-output canonical rows *and* the min-merged
        view after a JSON round-trip, the same byte-identical comparison
        the warm-vs-cold cache gates use.
        """
        import json

        cold = self.full_recompute()
        problems: list[str] = []
        warm_rows, cold_rows = self.rows(), cold.rows()
        if sorted(warm_rows) != sorted(cold_rows):
            problems.append(
                f"output sets differ: incremental={sorted(warm_rows)} "
                f"full={sorted(cold_rows)}"
            )
        for name in sorted(set(warm_rows) & set(cold_rows)):
            a = json.dumps(warm_rows[name], sort_keys=True)
            b = json.dumps(cold_rows[name], sort_keys=True)
            if a != b:
                problems.append(
                    f"row for output {name!r} diverged:\n"
                    f"  incremental: {a}\n  full:        {b}"
                )
        a = json.dumps(jsonify(self.merged()), sort_keys=True)
        b = json.dumps(jsonify(cold.merged()), sort_keys=True)
        if a != b:
            problems.append(
                f"merged view diverged:\n  incremental: {a}\n  full:        {b}"
            )
        return problems


__all__ = ["EditResult", "NetworkSession"]
