"""The cache-through analysis entry point (whole-network granularity).

``cached_analyze_required_times`` is ``analyze_required_times`` with a
:class:`~repro.cache.store.ResultCache` in front: a hit skips the engines
entirely and returns the stored canonical result; a miss computes,
stores, and returns the same canonical form, so callers see one type
regardless of temperature.  Aborted runs (budget exhaustion) are **never
stored** — whether a run aborts depends on wall-clock/budget context, and
replaying an abort from cache would violate the warm ≡ cold contract.
"""

from __future__ import annotations

from typing import Mapping

from repro.cache.keys import required_key
from repro.cache.results import CachedRequiredResult
from repro.cache.store import ResultCache
from repro.network.network import Network
from repro.obs.trace import span


def cached_analyze_required_times(
    network: Network,
    method: str,
    cache: ResultCache,
    delays=None,
    output_required: Mapping[str, float] | float = 0.0,
    options: Mapping[str, object] | None = None,
) -> tuple[CachedRequiredResult, bool]:
    """Run (or reuse) one required-time analysis through the cache.

    Returns ``(result, hit)``; ``hit`` is True when no engine ran.  The
    stored entry is content-addressed, so the display name of a renamed
    but structurally identical circuit is re-stamped on the way out.
    """
    from repro.core.required_time import (
        analyze_required_times,
        topological_input_required_times,
    )

    options = dict(options or {})
    key = required_key(network, method, delays, output_required, options)
    # a layer option, not an engine kwarg — but part of the key because
    # it widens the exact method's canonical digest
    row_counts = options.pop("exact_row_counts", None)
    with span("cache.lookup", method=method, key=key.digest[:12]):
        payload = cache.get(key)
    if payload is not None:
        result = CachedRequiredResult.from_payload(payload)
        result.circuit = network.name
        return result, True
    baseline = topological_input_required_times(network, delays, output_required)
    report = analyze_required_times(
        network, method, delays=delays, output_required=output_required, **options
    )
    result = CachedRequiredResult.from_report(report, baseline, row_counts=row_counts)
    result.circuit = network.name
    if not report.aborted:
        with span("cache.store", method=method, key=key.digest[:12]):
            cache.put(key, result.to_payload())
    return result, False


__all__ = ["cached_analyze_required_times"]
