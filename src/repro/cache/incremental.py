"""Incremental re-analysis: recompute only the cones a mutation dirtied.

The resynthesis loop the paper's Section 5 motivates — analyze, rewrite a
subcircuit, re-analyze — re-runs an almost identical network each
iteration.  Because cache keys are content-addressed *per output cone*
(the cone's own structure, delays, and boundary condition are the key;
see :mod:`repro.cache.keys`), incrementality needs no explicit
dependency tracking: an output whose transitive-fanin cone is untouched
by the mutation hashes to the same digest and hits; only the dirty cones
miss and run.  :func:`diff_cones` exposes the same comparison as an
explicit old-vs-new report for assertions and tooling.

The per-cone results are min-merged with the exact same
:func:`repro.parallel.merge.merge_required_outcomes` a sharded
``required --jobs N`` run uses, so an incremental warm result is
bit-identical to a cold sharded run of the whole network.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Mapping

from repro.cache.keys import CacheKey, required_key
from repro.cache.results import CachedRequiredResult
from repro.cache.store import ResultCache
from repro.network.network import Network
from repro.obs.trace import span


def _required_map(
    network: Network, output_required: Mapping[str, float] | float
) -> dict[str, float]:
    """The boundary condition as an explicit per-output float map."""
    if isinstance(output_required, Mapping):
        return {o: float(output_required[o]) for o in network.outputs}
    return {o: float(output_required) for o in network.outputs}


def cone_keys(
    network: Network,
    method: str,
    delays=None,
    output_required: Mapping[str, float] | float = 0.0,
    options: Mapping[str, object] | None = None,
) -> dict[str, tuple[CacheKey, Network]]:
    """Per-output ``(cache key, cone network)`` pairs, in output order."""
    from repro.parallel.tasks import output_cone

    req_map = _required_map(network, output_required)
    out: dict[str, tuple[CacheKey, Network]] = {}
    for name in network.outputs:
        cone = output_cone(network, [name])
        key = required_key(
            cone, method, delays, {name: req_map[name]}, options
        )
        out[name] = (key, cone)
    return out


def diff_cones(
    old: Network,
    new: Network,
    method: str = "topological",
    delays=None,
    output_required: Mapping[str, float] | float = 0.0,
    options: Mapping[str, object] | None = None,
) -> dict[str, list[str]]:
    """Classify ``new``'s outputs against ``old``'s cached-cone identities.

    ``clean`` outputs would hit entries populated by analyzing ``old``;
    ``dirty`` ones have structurally different cones (or boundary
    conditions); ``added``/``removed`` track the output sets themselves.
    """
    old_keys = {
        name: key.digest
        for name, (key, _) in cone_keys(
            old, method, delays, output_required, options
        ).items()
    }
    new_keys = cone_keys(new, method, delays, output_required, options)
    clean, dirty = [], []
    for name, (key, _) in new_keys.items():
        if old_keys.get(name) == key.digest:
            clean.append(name)
        elif name in old_keys:
            dirty.append(name)
    return {
        "clean": clean,
        "dirty": dirty,
        "added": [n for n in new_keys if n not in old_keys],
        "removed": [n for n in old_keys if n not in new_keys],
    }


@dataclass
class IncrementalResult:
    """What one incremental (or cold) per-cone analysis produced."""

    #: the min-merged network view (see ``merge_required_outcomes``)
    merged: dict
    #: outputs recomputed this run (cache misses)
    dirty: list[str] = field(default_factory=list)
    #: outputs served from cache (no engine ran)
    clean: list[str] = field(default_factory=list)
    #: outputs whose recompute task failed (excluded from the merge)
    failed: list[str] = field(default_factory=list)
    wall: float = 0.0
    jobs: int = 1

    @property
    def ok(self) -> bool:
        """True when every cone either hit or recomputed successfully."""
        return not self.failed

    def report(self) -> dict:
        """A machine-readable summary (mirrors ``BatchResult.report``)."""
        return {
            "cones": len(self.dirty) + len(self.clean),
            "recomputed": sorted(self.dirty),
            "cached": sorted(self.clean),
            "failed": sorted(self.failed),
            "wall_seconds": round(self.wall, 3),
            "jobs": self.jobs,
        }


def incremental_required_times(
    network: Network,
    method: str,
    cache: ResultCache,
    delays=None,
    output_required: Mapping[str, float] | float = 0.0,
    options: Mapping[str, object] | None = None,
    jobs: int = 1,
) -> IncrementalResult:
    """Per-cone required times with cache reuse; dirty cones only recompute.

    On a cold cache every cone is dirty and this is exactly the sharded
    analysis of ``required --jobs N``; on a warm cache after a local
    mutation, only the cones whose content digests changed run (the
    others are replayed from the store), and the merge is bit-identical
    to a full recompute — the property the cache parity tests and
    ``benchmarks/bench_cache.py`` assert.
    """
    from repro.parallel import (
        CircuitRef,
        merge_required_outcomes,
        required_time_task,
        run_batch,
    )
    from repro.parallel.tasks import estimate_cost

    options = dict(options or {})
    t0 = _time.perf_counter()
    with span(
        "cache.incremental", circuit=network.name, method=method, jobs=jobs
    ):
        keys = cone_keys(network, method, delays, output_required, options)
        outcomes: dict[str, object] = {}
        clean: list[str] = []
        dirty: list[str] = []
        tasks = []
        task_outputs: list[str] = []
        for name, (key, cone) in keys.items():
            payload = cache.get(key)
            if payload is not None:
                result = CachedRequiredResult.from_payload(payload)
                result.circuit = network.name
                outcomes[name] = result.to_outcome()
                clean.append(name)
                continue
            dirty.append(name)
            req = _required_map(network, output_required)[name]
            tasks.append(
                required_time_task(
                    CircuitRef.inline(cone, key=f"{network.name}/{name}"),
                    method,
                    output_required={name: req},
                    delays=delays,
                    options=options,
                    cost=estimate_cost(cone, method, options),
                    task_id=f"{network.name}/{method}/{name}",
                )
            )
            task_outputs.append(name)
        failed: list[str] = []
        if tasks:
            batch = run_batch(tasks, jobs=jobs)
            for name, outcome in zip(task_outputs, batch.outcomes):
                if not outcome.ok:
                    failed.append(name)
                    continue
                value = outcome.value
                outcomes[name] = value
                if not value.aborted:
                    key, _ = keys[name]
                    cache.put(
                        key, CachedRequiredResult.from_outcome(value).to_payload()
                    )
        merged = merge_required_outcomes(
            [outcomes[name] for name in network.outputs if name in outcomes]
        )
    return IncrementalResult(
        merged=merged,
        dirty=dirty,
        clean=clean,
        failed=failed,
        wall=_time.perf_counter() - t0,
        jobs=jobs,
    )


__all__ = [
    "IncrementalResult",
    "cone_keys",
    "diff_cones",
    "incremental_required_times",
]
