"""The cacheable form of a required-time result, and its converters.

An engine's full detail object (an :class:`~repro.core.exact.ExactRelation`
over live BDDs, an approx-1 result holding manager references) can never
be serialized; what the cache stores is the same *canonical result row*
the parallel layer already ships across process boundaries — method,
non-triviality, per-method digest (approx-1 primes/profiles, approx-2
best/bottom vectors, exact leaf counts), the value-independent
``input_times`` merge currency, and the topological baseline.  Warm and
cold runs are compared on exactly this canonical row, which is why
"warm ≠ cold" is always a bug and never a formatting artifact
(docs/CACHING.md).

:func:`summarize_report` is the single implementation of
report → canonical row used by the serial cache layer *and* the pool
worker (:mod:`repro.parallel.worker` delegates here), so serial, cached,
and parallel runs cannot drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.network.network import Network

INF = math.inf


def jsonify(value):
    """Deep-convert to the JSON value model (tuples → lists, keys → str).

    Equality of two ``jsonify`` outputs is equality after a JSON
    round-trip, which is the bit-identical comparison the warm-vs-cold
    parity gates use.  ``inf`` stays a float (the stdlib encoder emits
    ``Infinity`` and reads it back).
    """
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonify(v) for v in value)
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    return str(value)


def loosest_profile_times(result, baseline: Mapping[str, float]) -> dict[str, float]:
    """The value-independent view of approx1's loosest single profile.

    Profiles are *alternative* safe assignments; coordinates from
    different profiles must not be mixed.  Picks the profile with the
    greatest total looseness gain over the baseline (ties broken
    lexicographically on the rendered profile, so the choice is
    deterministic), falling back to the baseline when there are none.
    """
    best = dict(baseline)
    best_gain = 0.0
    for profile in sorted(result.profiles, key=lambda p: sorted(p.as_dict().items())):
        times = profile.value_independent()
        gain = sum(
            (t - baseline[x]) if t != INF else 1.0
            for x, t in times.items()
            if x in baseline and t > baseline[x]
        )
        if gain > best_gain:
            best_gain = gain
            best = {x: times.get(x, baseline[x]) for x in baseline}
    return best


def exact_row_counts(relation, max_inputs: int) -> dict:
    """Bit-exact relation digests for small circuits: row/minimal-row
    counts per input minterm (the Figure-4 parity check)."""
    import itertools

    inputs = relation.network.inputs
    if len(inputs) > max_inputs:
        return {}
    rows: dict[str, list[int]] = {}
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        minterm = dict(zip(inputs, bits))
        key = "".join(str(b) for b in bits)
        rows[key] = [
            len(relation.rows(minterm)),
            len(relation.minimal_rows(minterm)),
        ]
    return rows


def summarize_report(
    report,
    baseline: Mapping[str, float],
    row_counts: int | None = None,
) -> tuple[dict, dict[str, float] | None]:
    """Reduce one :class:`RequiredTimeReport` to ``(digest, input_times)``.

    ``digest`` is the method-specific canonical payload; ``input_times``
    is the value-independent per-input requirement (the min-merge
    currency), or the baseline when the method yields no single safe
    vector (exact) or the run aborted.
    """
    method = report.method
    detail = report.detail
    digest: dict = {}
    input_times: dict[str, float] | None = None
    if method == "topological":
        input_times = dict(detail)
    elif method == "approx2" and detail is not None:
        digest["checks"] = getattr(detail, "checks", None)
        digest["best"] = dict(detail.best)
        digest["r_bottom"] = dict(detail.r_bottom)
        input_times = dict(detail.best)
    elif method == "approx1" and detail is not None:
        digest["num_parameters"] = detail.num_parameters
        digest["primes"] = [sorted(p) for p in detail.primes]
        digest["profiles"] = [sorted(pr.as_dict().items()) for pr in detail.profiles]
        input_times = loosest_profile_times(detail, baseline)
    elif method == "exact" and detail is not None and not report.aborted:
        digest["leaf_variables"] = detail.num_leaf_variables
        if row_counts is not None:
            digest["rows"] = exact_row_counts(detail, int(row_counts))
        # the relation itself cannot be serialized; the guaranteed-safe
        # vector view is the topological baseline
        input_times = dict(baseline)
    if report.aborted:
        input_times = dict(baseline)
    # widened interval-delay runs carry their [lo, hi] bounds into the
    # canonical row; point-interval runs have no stamp, so their digests
    # stay byte-identical to scalar ones (docs/DELAY_MODELS.md)
    if "interval" in report.stats:
        digest["interval"] = report.stats["interval"]
    return digest, input_times


@dataclass
class CachedRequiredResult:
    """One required-time result in its durable, canonical form."""

    method: str
    circuit: str
    nontrivial: bool
    #: cold-run CPU seconds, kept so a warm render reports the cost of
    #: the run it reuses (wall clock is excluded from parity on purpose)
    elapsed: float
    outputs: list[str] | None = None
    time_to_first_nontrivial: float | None = None
    aborted: bool = False
    abort_reason: str | None = None
    stats: dict = field(default_factory=dict)
    digest: dict = field(default_factory=dict)
    input_times: dict[str, float] | None = None
    baseline: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_report(
        cls,
        report,
        baseline: Mapping[str, float],
        outputs: list[str] | None = None,
        row_counts: int | None = None,
    ) -> "CachedRequiredResult":
        """From a fresh :class:`~repro.core.required_time.RequiredTimeReport`."""
        digest, input_times = summarize_report(report, baseline, row_counts)
        return cls(
            method=report.method,
            circuit=report.circuit,
            nontrivial=report.nontrivial,
            elapsed=report.elapsed,
            outputs=list(outputs) if outputs is not None else None,
            time_to_first_nontrivial=report.time_to_first_nontrivial,
            aborted=report.aborted,
            abort_reason=report.abort_reason,
            stats=jsonify(report.stats),
            digest=jsonify(digest),
            input_times=None if input_times is None else dict(input_times),
            baseline=dict(baseline),
        )

    @classmethod
    def from_outcome(cls, outcome) -> "CachedRequiredResult":
        """From a :class:`repro.parallel.results.RequiredTimeOutcome`."""
        return cls(
            method=outcome.method,
            circuit=outcome.circuit,
            nontrivial=outcome.nontrivial,
            elapsed=outcome.elapsed,
            outputs=list(outcome.outputs) if outcome.outputs is not None else None,
            aborted=outcome.aborted,
            abort_reason=outcome.abort_reason,
            stats=jsonify(outcome.stats),
            digest=jsonify(outcome.digest),
            input_times=(
                None if outcome.input_times is None else dict(outcome.input_times)
            ),
            baseline=dict(outcome.baseline),
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The JSON document stored on disk (all-plain, sort-stable)."""
        return {
            "kind": "required",
            "method": self.method,
            "circuit": self.circuit,
            "outputs": self.outputs,
            "nontrivial": self.nontrivial,
            "elapsed": self.elapsed,
            "time_to_first_nontrivial": self.time_to_first_nontrivial,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
            "stats": jsonify(self.stats),
            "digest": jsonify(self.digest),
            "input_times": jsonify(self.input_times),
            "baseline": jsonify(self.baseline),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CachedRequiredResult":
        """Rehydrate a stored entry (inverse of :meth:`to_payload`)."""
        return cls(
            method=payload["method"],
            circuit=payload["circuit"],
            nontrivial=payload["nontrivial"],
            elapsed=payload["elapsed"],
            outputs=payload.get("outputs"),
            time_to_first_nontrivial=payload.get("time_to_first_nontrivial"),
            aborted=payload.get("aborted", False),
            abort_reason=payload.get("abort_reason"),
            stats=payload.get("stats", {}),
            digest=payload.get("digest", {}),
            input_times=payload.get("input_times"),
            baseline=payload.get("baseline", {}),
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def row(self) -> dict:
        """The canonical (time-free) row — the parity-gate currency."""
        status = "ok"
        if self.aborted:
            reason = self.abort_reason or ""
            status = "memory out" if "node budget" in reason else "aborted"
        return jsonify(
            {
                "circuit": self.circuit,
                "method": self.method,
                "outputs": self.outputs,
                "nontrivial": self.nontrivial,
                "status": status,
                "digest": self.digest,
                "input_times": self.input_times,
                "baseline": self.baseline,
            }
        )

    def table_row(self) -> dict:
        """The machine-readable row (matches ``RequiredTimeReport``)."""
        row = {
            "circuit": self.circuit,
            "method": self.method,
            "nontrivial": self.nontrivial,
            "cpu_time": round(self.elapsed, 3),
            "first_nontrivial": (
                None
                if self.time_to_first_nontrivial is None
                else round(self.time_to_first_nontrivial, 3)
            ),
            "aborted": self.aborted,
        }
        if "bdd_backend" in self.stats:
            row["bdd_backend"] = self.stats["bdd_backend"]
        if "interval" in self.stats:
            row["interval"] = self.stats["interval"]
        return row

    def to_outcome(self):
        """As a :class:`RequiredTimeOutcome` (the min-merge currency)."""
        from repro.parallel.results import RequiredTimeOutcome

        return RequiredTimeOutcome(
            method=self.method,
            circuit=self.circuit,
            outputs=tuple(self.outputs) if self.outputs is not None else None,
            nontrivial=self.nontrivial,
            elapsed=self.elapsed,
            aborted=self.aborted,
            abort_reason=self.abort_reason,
            stats=dict(self.stats),
            digest=dict(self.digest),
            input_times=(
                None if self.input_times is None else dict(self.input_times)
            ),
            baseline=dict(self.baseline),
        )

    def render_detail(self) -> str:
        """The method-specific CLI body (mirrors ``repro required``)."""
        from repro.core.required_time import format_time

        lines: list[str] = []
        if self.method == "approx2" and self.digest and not self.aborted:
            best = self.digest.get("best", {})
            bottom = self.digest.get("r_bottom", {})
            lines.append("")
            lines.append("loosest validated required times:")
            for key in sorted(best, key=str):
                gain = best[key] - bottom.get(key, best[key])
                marker = f"  (+{gain:g})" if gain > 0 else ""
                lines.append(f"  {key}: {format_time(best[key])}{marker}")
        if self.method == "approx1" and self.digest:
            for i, profile in enumerate(self.digest.get("profiles", [])):
                lines.append("")
                lines.append(f"prime {i + 1}:")
                for x, (r0, r1) in profile:
                    lines.append(
                        f"  {x}: by {format_time(r1)} when 1, "
                        f"by {format_time(r0)} when 0"
                    )
        return "\n".join(lines)


__all__ = [
    "CachedRequiredResult",
    "exact_row_counts",
    "jsonify",
    "loosest_profile_times",
    "summarize_report",
]
