"""The two-tier result store: in-memory LRU over a content-addressed disk tier.

On-disk layout (documented in docs/CACHING.md)::

    <cache_dir>/v<SCHEMA_VERSION>/<digest[:2]>/<digest>.json

Every entry is one self-contained JSON document; the digest in the file
name is the full cache key, so the directory tree *is* the index.  The
write protocol is atomic-rename: an entry is written to a same-directory
``.tmp`` file and published with :func:`os.replace`, so readers — in this
process or any concurrent worker process — only ever observe absent or
complete entries, never partial ones.  Concurrent writers of the same key
are harmless by construction: both write the same deterministic content
and the last rename wins.  ``gc``/``clear`` serialize against each other
through an ``flock`` on ``<cache_dir>/.lock`` (a no-op on platforms
without ``fcntl``), and readers treat a file deleted mid-lookup exactly
like a miss.

Corruption policy: a truncated or unparsable entry is **a miss, never a
crash** — the reader unlinks it, bumps ``cache.corrupt_entries``, and the
caller recomputes (the entry is rewritten on the following ``put``).

All counters are direct :data:`repro.obs.metrics.REGISTRY` counters under
the ``cache.`` prefix, so worker-process cache activity ships back to the
parent through the existing snapshot/diff merge (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import os
import time as _time
from collections import OrderedDict
from typing import Iterator, NamedTuple

from repro.cache.keys import SCHEMA_VERSION, CacheKey
from repro.obs.metrics import REGISTRY

try:  # pragma: no cover - always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None


def _count(name: str, amount: float = 1.0) -> None:
    """Bump one ``cache.*`` counter in the process-wide registry."""
    REGISTRY.counter(name).inc(amount)


class MemoryLRU:
    """A bounded name → payload map with least-recently-used eviction."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, dict] = OrderedDict()

    def get(self, digest: str) -> dict | None:
        """The stored payload (freshened to most-recent) or ``None``."""
        payload = self._entries.get(digest)
        if payload is not None:
            self._entries.move_to_end(digest)
        return payload

    def put(self, digest: str, payload: dict) -> None:
        """Insert/refresh an entry, evicting the LRU tail past the cap."""
        self._entries[digest] = payload
        self._entries.move_to_end(digest)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            _count("cache.evictions")

    def clear(self) -> None:
        """Drop every entry (no eviction counters — not capacity)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class DiskEntry(NamedTuple):
    """One on-disk entry as seen by ``stats``/``gc`` (metadata only)."""

    digest: str
    path: str
    size: int
    mtime: float


class DiskStore:
    """The content-addressed durable tier.

    The store is lazy: nothing touches the filesystem until the first
    ``put`` creates the versioned root.  Reads of other schema versions'
    trees never happen — the version directory namespaces them away.
    """

    def __init__(self, root: str, schema: int = SCHEMA_VERSION):
        self.root = os.path.expanduser(root)
        self.schema = schema
        self._dir = os.path.join(self.root, f"v{schema}")

    def path_for(self, digest: str) -> str:
        """Where ``digest``'s entry lives (two-hex-char fan-out shards)."""
        return os.path.join(self._dir, digest[:2], f"{digest}.json")

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, digest: str) -> dict | None:
        """Read one entry; absent, racing-deleted, or corrupt → ``None``."""
        path = self.path_for(digest)
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except (FileNotFoundError, NotADirectoryError):
            return None
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            # truncated/garbled entry: quarantine by unlinking and miss
            _count("cache.corrupt_entries")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if not isinstance(payload, dict):
            _count("cache.corrupt_entries")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return payload

    def put(self, digest: str, payload: dict) -> int:
        """Atomically publish ``payload``; returns the bytes written."""
        path = self.path_for(digest)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        text = json.dumps(payload, sort_keys=True)
        data = text.encode("utf-8")
        tmp = os.path.join(directory, f".{digest}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        _count("cache.bytes_written", len(data))
        return len(data)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[DiskEntry]:
        """Every published entry of this schema version (metadata only)."""
        if not os.path.isdir(self._dir):
            return
        for shard in sorted(os.listdir(self._dir)):
            shard_dir = os.path.join(self._dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json") or name.startswith("."):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                yield DiskEntry(name[: -len(".json")], path, st.st_size, st.st_mtime)

    def stats(self) -> dict:
        """Entry count, byte total, and age bounds (``repro cache stats``)."""
        total = 0
        count = 0
        oldest: float | None = None
        newest: float | None = None
        for entry in self.entries():
            count += 1
            total += entry.size
            oldest = entry.mtime if oldest is None else min(oldest, entry.mtime)
            newest = entry.mtime if newest is None else max(newest, entry.mtime)
        return {
            "dir": self.root,
            "schema": self.schema,
            "entries": count,
            "bytes": total,
            "oldest_age_seconds": None if oldest is None else _time.time() - oldest,
            "newest_age_seconds": None if newest is None else _time.time() - newest,
        }

    def _locked(self):
        """An exclusive advisory lock serializing gc/clear across processes."""

        class _Lock:
            def __init__(self, root: str):
                self._root = root
                self._fh = None

            def __enter__(self):
                if fcntl is None:
                    return self
                os.makedirs(self._root, exist_ok=True)
                self._fh = open(os.path.join(self._root, ".lock"), "w")
                fcntl.flock(self._fh, fcntl.LOCK_EX)
                return self

            def __exit__(self, *exc):
                if self._fh is not None:
                    fcntl.flock(self._fh, fcntl.LOCK_UN)
                    self._fh.close()
                return False

        return _Lock(self.root)

    def clear(self) -> int:
        """Remove every entry of this schema version; returns the count."""
        removed = 0
        with self._locked():
            for entry in list(self.entries()):
                try:
                    os.unlink(entry.path)
                    removed += 1
                except OSError:
                    pass
        _count("cache.gc_removed", removed)
        return removed

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
        now: float | None = None,
    ) -> dict:
        """Expire old entries, then evict oldest-first down to ``max_bytes``.

        Age is the entry's mtime (refreshed on every ``put``); removal is
        oldest-first so a byte budget keeps the warmest results.  Entries
        vanishing concurrently (another gc, a racing clear) are skipped —
        the protocol makes that indistinguishable from an ordinary miss.
        """
        now = _time.time() if now is None else now
        removed = 0
        kept_bytes = 0
        with self._locked():
            entries = sorted(self.entries(), key=lambda e: e.mtime)
            survivors = []
            for entry in entries:
                if max_age_seconds is not None and now - entry.mtime > max_age_seconds:
                    try:
                        os.unlink(entry.path)
                        removed += 1
                    except OSError:
                        pass
                else:
                    survivors.append(entry)
            if max_bytes is not None:
                total = sum(e.size for e in survivors)
                for entry in survivors:
                    if total <= max_bytes:
                        break
                    try:
                        os.unlink(entry.path)
                        removed += 1
                        total -= entry.size
                    except OSError:
                        pass
                kept_bytes = total
            else:
                kept_bytes = sum(e.size for e in survivors)
        _count("cache.gc_removed", removed)
        return {"removed": removed, "kept_bytes": kept_bytes}


class ResultCache:
    """The two-tier facade the analysis layers talk to.

    ``get``/``put`` speak :class:`~repro.cache.keys.CacheKey` and plain
    JSON-ready payload dicts.  The memory tier front-runs the disk tier
    and is populated on disk hits (read-through); a ``cache_dir`` of
    ``None`` degrades to memory-only, which is still enough for warm
    reuse inside one process.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        memory_entries: int = 256,
        schema: int = SCHEMA_VERSION,
    ):
        self.memory = MemoryLRU(memory_entries)
        self.disk = DiskStore(cache_dir, schema=schema) if cache_dir else None

    @property
    def cache_dir(self) -> str | None:
        """The disk tier's root directory, or ``None`` when memory-only."""
        return self.disk.root if self.disk is not None else None

    def get(self, key: CacheKey) -> dict | None:
        """Memory first, then disk (read-through); counts hit/miss."""
        payload = self.memory.get(key.digest)
        if payload is not None:
            _count("cache.hits")
            _count("cache.hits_memory")
            return payload
        if self.disk is not None:
            payload = self.disk.get(key.digest)
            if payload is not None:
                self.memory.put(key.digest, payload)
                _count("cache.hits")
                _count("cache.hits_disk")
                return payload
        _count("cache.misses")
        return None

    def put(self, key: CacheKey, payload: dict) -> None:
        """Publish to both tiers (the disk write is atomic-rename)."""
        self.memory.put(key.digest, payload)
        if self.disk is not None:
            self.disk.put(key.digest, payload)
        _count("cache.puts")

    def stats(self) -> dict:
        """Memory entry count plus the disk tier's stats, if any."""
        out = {"memory_entries": len(self.memory)}
        if self.disk is not None:
            out.update(self.disk.stats())
        return out

    def clear(self) -> int:
        """Empty both tiers; returns the number of disk entries removed."""
        self.memory.clear()
        return self.disk.clear() if self.disk is not None else 0


def default_cache_dir() -> str | None:
    """The ambient disk tier: ``$REPRO_CACHE_DIR``, or ``None`` (off).

    Caching is strictly opt-in — an unset environment and no
    ``--cache-dir`` flag mean analyses never touch the filesystem.
    """
    value = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return value or None


__all__ = [
    "DiskEntry",
    "DiskStore",
    "MemoryLRU",
    "ResultCache",
    "default_cache_dir",
]
