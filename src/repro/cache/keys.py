"""Canonical cache keys: content-addressed digests of analysis inputs.

A required-time result is a pure function of five things — the network
structure, the delay specification, the boundary conditions (required
times at the outputs), the method plus its semantically relevant options,
and the code/schema version.  :func:`required_key` folds exactly those
five into one SHA-256 digest, so the digest *is* the identity of the
result: two analyses with the same key must produce bit-identical
canonical rows, and anything that could change the answer must appear in
the key (see docs/CACHING.md for the invalidation rules).

Canonicalization choices:

* the network **name is excluded** (content addressing: a renamed copy of
  a circuit hits the same entry; callers re-stamp the display name);
* nodes are keyed **sorted by name** with their fanin lists and SOP
  cover patterns verbatim (fanin order is semantic — cover columns map
  to it — but dict insertion order is not);
* input/output lists are kept **in declaration order** — engines
  enumerate over them, so order is part of the result's identity;
* delay overrides are restricted to the network before hashing, so a
  model carrying overrides for shrunk-away nodes keys identically;
* only options that can change the *answer* enter the key (node budgets,
  check budgets, engine, reorder); purely observational knobs must never
  be added to :data:`SEMANTIC_OPTIONS`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping

from repro.network.network import Network

#: Bump whenever the canonical payload layout, the digest recipe, or the
#: meaning of a cached result changes: old entries become unreachable
#: (they live under a versioned directory) instead of wrongly reused.
SCHEMA_VERSION = 1

#: Options that can change the canonical result row and therefore key
#: the cache entry: engine knobs (budgets, engine, reorder) plus
#: ``exact_row_counts``, which widens the exact method's digest payload.
#: Transport/layer options such as ``cache_dir`` are excluded on purpose.
SEMANTIC_OPTIONS = (
    "backend",
    "delay_model",
    "engine",
    "exact_row_counts",
    "max_nodes",
    "max_checks",
    "reorder",
    "time_budget",
)


def canonical_network(network: Network) -> dict:
    """The name-free structural description entering the digest."""
    return {
        "inputs": list(network.inputs),
        "outputs": list(network.outputs),
        "nodes": {
            name: {
                "fanins": list(node.fanins),
                "cover": [cube.to_pattern() for cube in node.cover],
            }
            for name, node in sorted(network.nodes.items())
            if not node.is_input
        },
    }


def network_digest(network: Network) -> str:
    """SHA-256 of the canonical structure alone (no delays, no method)."""
    return _digest({"schema": SCHEMA_VERSION, "network": canonical_network(network)})


def _canonical_required(
    network: Network, output_required: Mapping[str, float] | float
) -> dict[str, float]:
    """The boundary condition as an explicit per-output float map."""
    if isinstance(output_required, Mapping):
        return {o: float(output_required[o]) for o in network.outputs}
    return {o: float(output_required) for o in network.outputs}


#: The backend whose digests carry no ``backend`` entry at all.  This is
#: the *historical* baseline (the kernel all pre-backend digests were
#: produced under), deliberately a literal rather than
#: ``repro.bdd.api.DEFAULT_BACKEND``: flipping the runtime default must
#: not silently re-key — and thereby orphan — every existing cache entry.
_CACHE_BASELINE_BACKEND = "object"


def _canonical_options(options: Mapping[str, object] | None) -> dict:
    """The :data:`SEMANTIC_OPTIONS` subset, with unset/False values
    dropped so explicit defaults key identically to absent options.

    ``backend`` is keyed by its *effective* value: an unset option falls
    back to ``$REPRO_BDD_BACKEND``, so entries produced under an
    env-selected array kernel can never alias object-kernel entries.
    Two collapses keep equal results keyed equally:

    * ``native`` keys as ``array`` — the native kernel is bit-identical
      to the array kernel by construction (same node-creation sequence,
      same budget-abort points), so the two must share cache entries;
    * the historical baseline (:data:`_CACHE_BASELINE_BACKEND`) is
      dropped like every other unset option, which keeps all
      pre-backend digests reachable without a :data:`SCHEMA_VERSION`
      bump.
    """
    options = options or {}
    out = {
        name: options[name]
        for name in SEMANTIC_OPTIONS
        if options.get(name) not in (None, False)
    }
    from repro.bdd.api import resolve_backend

    effective = resolve_backend(options.get("backend"))
    if effective == "native":
        effective = "array"
    if effective == _CACHE_BASELINE_BACKEND:
        out.pop("backend", None)
    else:
        out["backend"] = effective
    # like the baseline backend: an explicit "scalar" is the historical
    # default, so it keys identically to an absent option and existing
    # digests stay reachable.  A genuine "interval" run additionally
    # carries the interval spec in the ``delays`` payload (its
    # ``"model": "interval"`` marker), so it can never alias a scalar
    # entry even for point intervals.
    if out.get("delay_model") == "scalar":
        out.pop("delay_model", None)
    return out


def _digest(payload: dict) -> str:
    """SHA-256 over the minimal canonical JSON encoding of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheKey:
    """One content-addressed result identity.

    ``digest`` names the entry on disk; ``method``/``kind`` are carried
    for display and debugging only — both are already folded into the
    digest, so the digest alone is the full identity.
    """

    digest: str
    method: str
    kind: str = "required"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}/{self.method}/{self.digest[:12]}"


def required_key(
    network: Network,
    method: str,
    delays=None,
    output_required: Mapping[str, float] | float = 0.0,
    options: Mapping[str, object] | None = None,
) -> CacheKey:
    """The cache key of one required-time analysis of ``network``.

    ``network`` may be a whole circuit or an output cone — the cone *is*
    its own content, which is what makes the incremental layer work: an
    unchanged cone of a mutated network hashes to the same key and hits.
    """
    from repro.timing.delay import unit_delay

    delays = (delays or unit_delay()).restricted_to(network)
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "required",
        "method": method,
        "network": canonical_network(network),
        "delays": delays.to_spec(),
        "output_required": _canonical_required(network, output_required),
        "options": _canonical_options(options),
    }
    return CacheKey(digest=_digest(payload), method=method)


__all__ = [
    "CacheKey",
    "SCHEMA_VERSION",
    "SEMANTIC_OPTIONS",
    "canonical_network",
    "network_digest",
    "required_key",
]
