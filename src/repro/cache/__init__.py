"""Persistent content-addressed result cache with incremental re-analysis.

The amortization layer for repeated required-time traffic: the same
circuit is typically analyzed many times with small deltas (resynthesis
loops, delay re-budgeting), and everything downstream of parsing is a
pure function of (structure, delays, boundary conditions, method +
options, schema version).  This package keys results by a canonical
SHA-256 digest of exactly those ingredients and stores them in a
two-tier cache — in-memory LRU over an atomic-rename, flock-guarded
content-addressed disk tree — shared by the CLI, the parallel worker
pool, the fuzz runner's parity oracle, and the benchmarks:

* :mod:`repro.cache.keys`        — the canonical digest recipe and
  schema versioning (what identifies a result);
* :mod:`repro.cache.store`       — ``MemoryLRU`` / ``DiskStore`` /
  ``ResultCache``, the two-tier store with crash-safe writes, corrupt
  entries degraded to misses, and ``cache.*`` metrics;
* :mod:`repro.cache.results`     — ``CachedRequiredResult``, the durable
  canonical result row shared with the parallel layer;
* :mod:`repro.cache.layer`       — ``cached_analyze_required_times``,
  the whole-network cache-through entry point;
* :mod:`repro.cache.incremental` — per-output-cone keys, mutation
  diffing, and ``incremental_required_times`` (dirty cones only).

See docs/CACHING.md for the keying scheme, invalidation rules, and the
on-disk layout, and docs/ARCHITECTURE.md for where this layer sits.
"""

from repro.cache.incremental import (
    IncrementalResult,
    cone_keys,
    diff_cones,
    incremental_required_times,
)
from repro.cache.keys import (
    CacheKey,
    SCHEMA_VERSION,
    SEMANTIC_OPTIONS,
    canonical_network,
    network_digest,
    required_key,
)
from repro.cache.layer import cached_analyze_required_times
from repro.cache.results import CachedRequiredResult, jsonify, summarize_report
from repro.cache.store import (
    DiskStore,
    MemoryLRU,
    ResultCache,
    default_cache_dir,
)

__all__ = [
    "CacheKey",
    "CachedRequiredResult",
    "DiskStore",
    "IncrementalResult",
    "MemoryLRU",
    "ResultCache",
    "SCHEMA_VERSION",
    "SEMANTIC_OPTIONS",
    "cached_analyze_required_times",
    "canonical_network",
    "cone_keys",
    "default_cache_dir",
    "diff_cones",
    "incremental_required_times",
    "jsonify",
    "network_digest",
    "required_key",
    "summarize_report",
]
