"""Consolidated timing datasheets.

`timing_report` bundles everything the library knows about one circuit —
topological and exact arrival times, false-path counts, per-input
required times by a chosen method, optional per-node slack — into one
plain-data structure with a text renderer, for the CLI's ``report``
command and for notebook-style exploration.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Literal, Mapping

from repro.core.required_time import (
    RequiredTimeReport,
    analyze_required_times,
    format_time,
    topological_input_required_times,
)
from repro.network.network import Network
from repro.timing.delay import DelayModel, unit_delay
from repro.timing.functional import FunctionalTiming
from repro.timing.topological import TopologicalTiming


@dataclass
class TimingReport:
    """The full timing picture of one circuit."""

    circuit: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    depth: int
    #: per output: (topological arrival, exact arrival)
    arrivals: dict[str, tuple[float, float]]
    #: outputs whose structurally longest path is false
    false_longest: list[str]
    #: the per-input topological baseline (r_bottom)
    topological_required: dict[str, float]
    #: the chosen method's result record
    required: RequiredTimeReport | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def functional_delay(self) -> float:
        """Worst false-path-aware output arrival in the report."""
        return max(t for _, t in self.arrivals.values())

    @property
    def topological_delay(self) -> float:
        """Worst longest-path output arrival in the report."""
        return max(t for t, _ in self.arrivals.values())

    def render(self) -> str:
        """Human-readable multi-line summary of the report."""
        out = io.StringIO()
        out.write(f"=== timing report: {self.circuit} ===\n")
        out.write(
            f"{self.num_inputs} PI, {self.num_outputs} PO, "
            f"{self.num_gates} gates, depth {self.depth}\n\n"
        )
        out.write("arrival times (topological -> exact):\n")
        for name, (topo, true) in sorted(self.arrivals.items()):
            marker = "   <- longest path false" if name in self.false_longest else ""
            out.write(f"  {name}: {topo:g} -> {true:g}{marker}\n")
        out.write(
            f"\ncircuit delay: topological {self.topological_delay:g}, "
            f"exact {self.functional_delay:g}\n"
        )
        if self.required is not None:
            out.write(
                f"\nrequired-time analysis ({self.required.method}): "
                f"{'non-trivial' if self.required.nontrivial else 'trivial'}"
            )
            if self.required.aborted:
                out.write(f"  [aborted: {self.required.abort_reason}]")
            out.write("\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()


def timing_report(
    network: Network,
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    method: Literal["none", "topological", "exact", "approx1", "approx2"] = "approx2",
    engine: Literal["bdd", "sat"] = "bdd",
    time_budget: float | None = 30.0,
) -> TimingReport:
    """Compute the consolidated report (see :class:`TimingReport`)."""
    delays = delays or unit_delay()
    ft = FunctionalTiming(network, delays, input_arrivals, engine=engine)
    topo = ft.topological_arrivals()
    arrivals: dict[str, tuple[float, float]] = {}
    false_longest: list[str] = []
    for out_name in network.outputs:
        true = ft.true_arrival(out_name)
        arrivals[out_name] = (topo[out_name], true)
        if true < topo[out_name]:
            false_longest.append(out_name)

    baseline = topological_input_required_times(network, delays, output_required)

    required = None
    notes: list[str] = []
    if method != "none":
        options = {}
        if method == "approx2":
            options = {"engine": engine, "time_budget": time_budget}
        required = analyze_required_times(
            network, method, delays, output_required, **options
        )
        if required.aborted:
            notes.append(
                "required-time analysis hit its resource budget; the "
                "reported flags reflect the best validated state"
            )
    if false_longest:
        notes.append(
            f"{len(false_longest)} output(s) have false longest paths; "
            "topological timing is pessimistic here"
        )

    return TimingReport(
        circuit=network.name,
        num_inputs=network.num_inputs,
        num_outputs=network.num_outputs,
        num_gates=network.num_gates,
        depth=network.depth(),
        arrivals=arrivals,
        false_longest=false_longest,
        topological_required=baseline,
        required=required,
        notes=notes,
    )
