"""Functional (false-path aware) timing analysis.

Implements the delay-computation scenario of Section 2.3: stability of a
primary output by a required time is decided by comparing χ functions with
the output's onset/offset — here via the equivalent tautology check of
``χ_{z,1}^T ∨ χ_{z,0}^T`` (the χ functions are always contained in the
onset/offset under XBD0, so equality holds iff the union covers every
input vector).  Two interchangeable engines:

* ``engine="bdd"`` — build the χ BDDs and test for tautology,
* ``engine="sat"`` — unroll the χ network and test unsatisfiability of its
  complement with the CDCL solver, following [9].

On top of the stability primitive: *true arrival times* by monotone search
over the candidate-time set, and *false-path detection* (true delay
strictly below the topological delay).
"""

from __future__ import annotations

import bisect
from typing import Literal, Mapping

from repro.errors import TimingError
from repro.network.network import Network
from repro.obs.trace import span
from repro.sat import CircuitEncoder, Solver
from repro.timing.chi import ChiEngine, build_chi_network, candidate_times
from repro.timing.delay import DelayModel, unit_delay
from repro.timing.topological import arrival_times as topo_arrival_times

Engine = Literal["bdd", "sat"]


class FunctionalTiming:
    """Functional timing analysis of one network under fixed delays."""

    def __init__(
        self,
        network: Network,
        delays: DelayModel | None = None,
        arrivals: Mapping[str, float] | None = None,
        engine: Engine = "bdd",
        max_conflicts: int | None = None,
    ):
        if engine not in ("bdd", "sat"):
            raise TimingError(f"unknown engine {engine!r}")
        self.network = network
        self.delays = delays or unit_delay()
        # scalar or per-value (arr_for_0, arr_for_1) entries; normalization
        # happens in the χ engines
        self.arrivals = {
            pi: (arrivals or {}).get(pi, 0.0) for pi in network.inputs
        }
        self.engine = engine
        self.max_conflicts = max_conflicts
        self._chi: ChiEngine | None = None

    # ------------------------------------------------------------------
    # stability primitive
    # ------------------------------------------------------------------
    def output_stable_by(self, output: str, t: float) -> bool:
        """Is ``output`` stable (at its final value) by time ``t`` for every
        input vector, under the XBD0 model?"""
        if output not in self.network.outputs:
            raise TimingError(f"{output!r} is not a primary output")
        with span(
            "chi.stability_check", output=output, t=float(t), engine=self.engine
        ):
            if self.engine == "bdd":
                if self._chi is None:
                    self._chi = ChiEngine(self.network, self.delays, self.arrivals)
                return self._chi.is_stable_by(output, t)
            chi_net, root = build_chi_network(
                self.network, output, t, self.delays, self.arrivals
            )
            encoder = CircuitEncoder()
            mapping = encoder.encode(chi_net)
            encoder.cnf.add_clause([-mapping[root]])
            solver = Solver(encoder.cnf)
            return not solver.solve(max_conflicts=self.max_conflicts)

    def all_stable_by(self, required: Mapping[str, float] | float) -> bool:
        """Every primary output stable by its required time?"""
        if isinstance(required, Mapping):
            req = dict(required)
            missing = set(self.network.outputs) - set(req)
            if missing:
                raise TimingError(f"missing required times for {sorted(missing)}")
        else:
            req = {o: float(required) for o in self.network.outputs}
        return all(self.output_stable_by(o, t) for o, t in req.items())

    # ------------------------------------------------------------------
    # true delay
    # ------------------------------------------------------------------
    def true_arrival(self, output: str) -> float:
        """The exact (false-path aware) arrival time of one output.

        Monotone binary search over the candidate-time set: stability is
        monotone non-decreasing in t, and the true arrival is always one of
        the candidate stabilization moments.
        """
        with span("chi.true_arrival", output=output, engine=self.engine):
            cands = candidate_times(self.network, self.delays, self.arrivals)[
                output
            ]
            lo, hi = 0, len(cands) - 1
            if not self.output_stable_by(output, cands[hi]):
                raise TimingError(
                    f"output {output!r} not stable even at its topological "
                    "delay; inconsistent model"
                )
            while lo < hi:
                mid = (lo + hi) // 2
                if self.output_stable_by(output, cands[mid]):
                    hi = mid
                else:
                    lo = mid + 1
            return cands[lo]

    def true_arrivals(self) -> dict[str, float]:
        """Functional (false-path-aware) arrival per primary output."""
        return {o: self.true_arrival(o) for o in self.network.outputs}

    def functional_delay(self) -> float:
        """The false-path-aware delay of the whole network."""
        return max(self.true_arrivals().values())

    def topological_arrivals(self) -> dict[str, float]:
        """Longest-path arrival per primary output (the comparison base)."""
        arr = topo_arrival_times(self.network, self.delays, self.arrivals)
        return {o: arr[o] for o in self.network.outputs}


def stable_by(
    network: Network,
    required: Mapping[str, float] | float,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
    engine: Engine = "bdd",
    max_conflicts: int | None = None,
) -> bool:
    """One-shot stability check of every primary output."""
    return FunctionalTiming(
        network, delays, arrivals, engine, max_conflicts
    ).all_stable_by(required)


def true_arrival_times(
    network: Network,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
    engine: Engine = "bdd",
) -> dict[str, float]:
    """One-shot exact arrival times of every primary output."""
    return FunctionalTiming(network, delays, arrivals, engine).true_arrivals()


def has_false_paths(
    network: Network,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
    engine: Engine = "bdd",
) -> bool:
    """True iff some output's exact arrival beats its topological arrival —
    i.e. the longest topological path to it is false."""
    ft = FunctionalTiming(network, delays, arrivals, engine)
    topo = ft.topological_arrivals()
    return any(ft.true_arrival(o) < topo[o] for o in network.outputs)
