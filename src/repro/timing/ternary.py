"""Ternary (three-valued) timed simulation: an independent XBD0 oracle.

Under the XBD0 model, an output is stable at value v by time t for an
input vector iff the ternary-waveform simulation — every signal is X
(unknown) until its stabilization moment, and a gate's output becomes
known as soon as the *known* subset of its inputs determines its local
function — stabilizes it by t with every gate at its maximum delay.  (The
monotone-speedup property makes ternary stabilization monotone in gate
delays, so the all-maximum corner is the worst case.)

This module implements that semantics directly on SOP covers, *without*
the prime-based χ recursion, giving the test suite an independent oracle
for the whole functional-timing stack: for every input vector,

    stabilization_time(vector, output)  ==  min{t : vector ∈ χ̃_out^t}.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.errors import TimingError
from repro.network.network import Network
from repro.sop import Cover
from repro.timing.delay import DelayModel, unit_delay

X = None  # the unknown ternary value


def ternary_eval(cover: Cover, values: list[bool | None]) -> bool | None:
    """Evaluate a cover under ternary inputs.

    Returns True/False when the known inputs force the value for every
    completion of the unknowns, else None.
    """
    # could the function still be 1? could it still be 0?
    can_be_one = False
    all_cubes_dead = True
    some_cube_forced = False
    for cube in cover:
        dead = False
        fully_forced = True
        for var in cube.variables():
            phase = cube.literal(var)
            v = values[var]
            if v is None:
                fully_forced = False
            elif (v and phase == 0) or (not v and phase == 1):
                dead = True
                break
        if dead:
            continue
        all_cubes_dead = False
        if fully_forced:
            some_cube_forced = True
            break
    if some_cube_forced:
        return True
    if all_cubes_dead:
        return False
    # some cube alive but not forced: value depends on unknowns... unless
    # every completion satisfies some cube.  Check by brute force over the
    # unknown variables appearing in live cubes (node fanin counts are
    # small, so this stays cheap).
    unknown_vars = sorted(
        {
            var
            for cube in cover
            for var in cube.variables()
            if values[var] is None
        }
    )
    if len(unknown_vars) > 16:
        raise TimingError("ternary evaluation over too many unknowns")
    outcomes = set()
    for mask in range(1 << len(unknown_vars)):
        assignment = 0
        for i, var in enumerate(unknown_vars):
            if (mask >> i) & 1:
                assignment |= 1 << var
        for var, v in enumerate(values):
            if v:
                assignment |= 1 << var
        outcomes.add(cover.evaluate(assignment))
        if len(outcomes) == 2:
            return None
    return outcomes.pop()


def stabilization_times(
    network: Network,
    input_vector: Mapping[str, bool | int],
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Per-node stabilization times for one input vector (the oracle).

    Event-driven over the sorted set of candidate moments: a node's output
    becomes known ``d`` after the earliest moment at which the ternary
    values of its fanins determine its function.
    """
    delays = delays or unit_delay()
    arrivals = arrivals or {}

    def arr_of(pi: str) -> float:
        t = arrivals.get(pi, 0.0)
        if isinstance(t, (tuple, list)):
            value = bool(input_vector[pi])
            return float(t[1] if value else t[0])
        return float(t)

    stab: dict[str, float] = {}
    order = network.topological_order()
    # iterate to fixpoint over moments: since the network is a DAG and each
    # node's time depends only on fanins, one topological pass with inner
    # search over fanin-time "events" suffices
    for name in order:
        node = network.nodes[name]
        if node.is_input:
            stab[name] = arr_of(name)
            continue
        # -inf is the "no information" moment: a cover determined there is
        # a constant function, stable since forever under χ semantics —
        # found by differential fuzzing (the oracle used to floor the
        # determination moment at 0, disagreeing with every χ engine on
        # constant gates).  Any other determination needs a known fanin,
        # so the fanin stabilization moments cover all remaining cases.
        events = sorted({stab[f] for f in node.fanins} | {-math.inf})
        resolved: dict[str, bool] = {}

        def final_value(sig: str) -> bool:
            if sig in resolved:
                return resolved[sig]
            n = network.nodes[sig]
            if n.is_input:
                v = bool(input_vector[sig])
            else:
                vals = {f: final_value(f) for f in n.fanins}
                v = n.local_value(vals)
            resolved[sig] = v
            return v

        determined_at = math.inf
        for t in events:
            ternary = [
                final_value(f) if stab[f] <= t else None for f in node.fanins
            ]
            if ternary_eval(node.cover, ternary) is not None:
                determined_at = t
                break
        stab[name] = determined_at + delays.of_value(name, int(final_value(name)))
    return stab


def oracle_stable_by(
    network: Network,
    output: str,
    t: float,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
) -> bool:
    """All input vectors stabilize ``output`` by ``t``?  (Brute force over
    the input space; the oracle counterpart of
    :meth:`repro.timing.functional.FunctionalTiming.output_stable_by`.)"""
    import itertools

    for bits in itertools.product((0, 1), repeat=len(network.inputs)):
        vector = dict(zip(network.inputs, bits))
        stab = stabilization_times(network, vector, delays, arrivals)
        if stab[output] > t:
            return False
    return True


def oracle_true_arrival(
    network: Network,
    output: str,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
) -> float:
    """Exact XBD0 arrival time of ``output`` by exhaustive simulation."""
    import itertools

    worst = -math.inf
    for bits in itertools.product((0, 1), repeat=len(network.inputs)):
        vector = dict(zip(network.inputs, bits))
        stab = stabilization_times(network, vector, delays, arrivals)
        worst = max(worst, stab[output])
    return worst
