"""Delay models.

The paper analyzes circuits under the **extended bounded delay-0 (XBD0)**
model (Section 2.2): each gate has a maximum positive delay and a minimum
delay of zero, and sensitization reasons over *all* delay assignments in
between.  The monotone-speedup property of viability analysis corresponds
exactly to the zero minimum.  Operationally, only the maximum delays enter
the χ-function recursion, so a delay model here maps each gate to its
maximum delay.

The experiments in the paper use the **unit delay model** (every gate's
maximum delay is 1); :func:`unit_delay` builds it.

Rise/fall distinction (the paper's footnote 1: "it is possible to
differentiate rise delays from fall delays") is supported as an extension:
an override may be a single number or a ``(rise, fall)`` pair, and the χ
recursion applies the rise delay when stabilizing a node to 1 and the fall
delay when stabilizing it to 0.

:class:`IntervalDelayModel` extends the scalar model with **min/max
bounds** per rise/fall delay: each gate's rise delay floats in
``[rise_lo, rise_hi]`` and its fall delay in ``[fall_lo, fall_hi]``.
The model exposes the *hi* bounds through the same ``of`` /
``of_value`` interface the χ engines consume, so every engine is
automatically conservative under delay uncertainty, and a **point
interval** ``[d, d]`` is consumed bit-identically to the scalar model —
the degeneracy contract docs/DELAY_MODELS.md gates on.  The explicit
``*_bounds`` accessors feed the interval arithmetic of
:func:`repro.timing.topological.required_time_bounds`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import NetworkError, TimingError
from repro.network.network import Network

DelaySpec = "float | tuple[float, float]"


def _normalize(delay) -> tuple[float, float]:
    """(fall, rise) pair from a scalar or 2-tuple specification."""
    if isinstance(delay, (tuple, list)):
        if len(delay) != 2:
            raise TimingError(f"delay pair must have two entries, got {delay!r}")
        rise, fall = float(delay[0]), float(delay[1])
    else:
        rise = fall = float(delay)
    if rise < 0 or fall < 0:
        raise TimingError(f"gate delay must be non-negative, got {delay!r}")
    return (fall, rise)


class DelayModel:
    """Maximum gate delays under the XBD0 model.

    ``overrides`` assigns specific delays by node name; every other gate
    gets ``default``.  Each delay is a scalar or a ``(rise, fall)`` pair.
    Primary inputs have no delay (arrival times are boundary conditions,
    not gate properties).
    """

    def __init__(self, default=1.0, overrides: Mapping[str, object] | None = None):
        self._default = _normalize(default)
        self._overrides: dict[str, tuple[float, float]] = {
            name: _normalize(d) for name, d in (overrides or {}).items()
        }

    @property
    def default(self) -> float:
        """The default maximum delay (max of rise/fall)."""
        return max(self._default)

    @property
    def overrides(self) -> dict[str, float]:
        """Per-gate maximum delays (max of rise/fall), for reporting."""
        return {name: max(pair) for name, pair in self._overrides.items()}

    def of(self, node_name: str) -> float:
        """Maximum delay of the named gate (max over rise/fall)."""
        return max(self._overrides.get(node_name, self._default))

    def of_value(self, node_name: str, value: int) -> float:
        """Delay toward stabilizing at ``value``: rise delay for 1, fall
        delay for 0 (footnote 1 of the paper)."""
        fall, rise = self._overrides.get(node_name, self._default)
        return rise if value else fall

    def is_value_dependent(self) -> bool:
        """True when any gate distinguishes rise from fall."""
        if self._default[0] != self._default[1]:
            return True
        return any(fall != rise for fall, rise in self._overrides.values())

    def with_override(self, node_name: str, delay) -> "DelayModel":
        """A copy with ``node_name``'s delay replaced (the ECO edit path)."""
        model = DelayModel.__new__(DelayModel)
        model._default = self._default
        model._overrides = dict(self._overrides)
        model._overrides[node_name] = _normalize(delay)
        return model

    def restricted_to(
        self, network: Network, outputs: Iterable[str] | None = None
    ) -> "DelayModel":
        """A copy keeping only the overrides naming nodes of ``network``
        (used when a circuit is shrunk out from under its delay model).

        ``outputs`` optionally narrows further to the transitive-fanin
        cones of those primary outputs; an unknown output name raises a
        typed :class:`~repro.errors.NetworkError` (never ``KeyError``),
        matching the CLI's unknown-output error contract.
        """
        keep = _restriction_names(network, outputs)
        model = DelayModel.__new__(DelayModel)
        model._default = self._default
        model._overrides = {
            name: pair
            for name, pair in self._overrides.items()
            if name in keep
        }
        return model

    def to_spec(self) -> dict:
        """A JSON-serializable ``{default, overrides}`` description, each
        delay as a ``[rise, fall]`` pair (the constructor's input order)."""
        fall, rise = self._default
        return {
            "default": [rise, fall],
            "overrides": {
                name: [r, f] for name, (f, r) in sorted(self._overrides.items())
            },
        }

    @classmethod
    def from_spec(cls, spec: Mapping) -> "DelayModel":
        """Rebuild a model from :meth:`to_spec` output.

        Hand-written specs (the CLI's ``--delay-spec``) may use a plain
        number wherever a ``[rise, fall]`` pair is allowed, exactly as
        the constructor does.
        """

        def shape(value):
            return value if isinstance(value, (int, float)) else tuple(value)

        return cls(
            shape(spec.get("default", (1.0, 1.0))),
            {name: shape(pair) for name, pair in spec.get("overrides", {}).items()},
        )

    def validate(self, network: Network) -> None:
        """Check every override names a node of ``network`` (raises)."""
        for name in self._overrides:
            network.node(name)  # raises on unknown nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DelayModel default={self._default} "
            f"overrides={len(self._overrides)}>"
        )


def _restriction_names(
    network: Network, outputs: Iterable[str] | None
) -> "set[str] | frozenset[str]":
    """The node names a restriction keeps: all of ``network``'s, or the
    transitive-fanin cones of ``outputs``.  Unknown output names raise a
    typed :class:`~repro.errors.NetworkError`."""
    if outputs is None:
        return set(network.nodes)
    from repro.network.transform import transitive_fanin

    names = list(outputs)
    for name in names:
        if name not in network.outputs:
            raise NetworkError(
                f"unknown output {name!r} "
                f"(outputs: {', '.join(network.outputs)})"
            )
    return transitive_fanin(network, names)


def _normalize_bounds(delay) -> tuple[tuple[float, float], tuple[float, float]]:
    """((fall_lo, fall_hi), (rise_lo, rise_hi)) from any accepted form.

    Accepted forms, mirroring the scalar model's constructor plus the
    interval extension (docs/DELAY_MODELS.md):

    * scalar ``d`` — point interval, rise = fall;
    * ``(rise, fall)`` pair of scalars — point intervals per value;
    * ``([rise_lo, rise_hi], [fall_lo, fall_hi])`` — full intervals
      (either entry may still be a scalar, promoted to a point).
    """
    def one(value) -> tuple[float, float]:
        if isinstance(value, (tuple, list)):
            if len(value) != 2:
                raise TimingError(
                    f"delay interval must be [lo, hi], got {value!r}"
                )
            lo, hi = float(value[0]), float(value[1])
        else:
            lo = hi = float(value)
        if lo < 0 or hi < 0:
            raise TimingError(f"gate delay must be non-negative, got {value!r}")
        if lo > hi:
            raise TimingError(f"delay interval has lo > hi: {value!r}")
        return (lo, hi)

    if isinstance(delay, (tuple, list)):
        if len(delay) != 2:
            raise TimingError(f"delay pair must have two entries, got {delay!r}")
        rise, fall = one(delay[0]), one(delay[1])
    else:
        rise = fall = one(delay)
    return (fall, rise)


class IntervalDelayModel:
    """Min/max rise/fall gate-delay bounds — the interval delay model.

    Each gate's rise delay floats in ``[rise_lo, rise_hi]`` and its fall
    delay in ``[fall_lo, fall_hi]``.  The scalar-model interface
    (``of`` / ``of_value``) returns the **hi** bounds, so χ-based
    engines consume the worst-case corner unchanged and stay safe for
    every delay assignment in the box; a point interval ``[d, d]`` is
    therefore bit-identical to the scalar model by construction.  The
    ``*_bounds`` accessors expose both ends for interval arithmetic.
    """

    def __init__(self, default=1.0, overrides: Mapping[str, object] | None = None):
        self._default = _normalize_bounds(default)
        self._overrides: dict[str, tuple[tuple[float, float], tuple[float, float]]] = {
            name: _normalize_bounds(d) for name, d in (overrides or {}).items()
        }

    # ------------------------------------------------------------------
    # scalar-compatible interface (hi bounds: the conservative corner)
    # ------------------------------------------------------------------
    @property
    def default(self) -> float:
        """The default maximum delay (hi bound, max of rise/fall)."""
        fall, rise = self._default
        return max(fall[1], rise[1])

    @property
    def overrides(self) -> dict[str, float]:
        """Per-gate maximum delays (hi bound of max(rise, fall))."""
        return {
            name: max(fall[1], rise[1])
            for name, (fall, rise) in self._overrides.items()
        }

    def of(self, node_name: str) -> float:
        """Maximum delay hi bound of the named gate (max over rise/fall)."""
        fall, rise = self._overrides.get(node_name, self._default)
        return max(fall[1], rise[1])

    def of_value(self, node_name: str, value: int) -> float:
        """Hi bound toward stabilizing at ``value``: rise for 1, fall
        for 0 — what the χ recursion consumes."""
        fall, rise = self._overrides.get(node_name, self._default)
        return rise[1] if value else fall[1]

    def is_value_dependent(self) -> bool:
        """True when any gate distinguishes rise from fall bounds."""
        if self._default[0] != self._default[1]:
            return True
        return any(fall != rise for fall, rise in self._overrides.values())

    # ------------------------------------------------------------------
    # interval accessors
    # ------------------------------------------------------------------
    def of_bounds(self, node_name: str) -> tuple[float, float]:
        """``[lo, hi]`` bounds of the gate's maximum delay.

        Rise and fall float independently, so the value-independent
        maximum ``max(rise, fall)`` spans ``[max(rise_lo, fall_lo),
        max(rise_hi, fall_hi)]``.
        """
        fall, rise = self._overrides.get(node_name, self._default)
        return (max(fall[0], rise[0]), max(fall[1], rise[1]))

    def of_value_bounds(self, node_name: str, value: int) -> tuple[float, float]:
        """``[lo, hi]`` bounds toward stabilizing at ``value``."""
        fall, rise = self._overrides.get(node_name, self._default)
        return rise if value else fall

    def is_point(self) -> bool:
        """True when every interval is degenerate (``lo == hi``) — the
        case guaranteed bit-identical to the scalar model."""
        def point(entry) -> bool:
            fall, rise = entry
            return fall[0] == fall[1] and rise[0] == rise[1]

        return point(self._default) and all(
            point(entry) for entry in self._overrides.values()
        )

    def hi_model(self) -> DelayModel:
        """The scalar worst-case projection (every delay at its hi bound)."""
        fall, rise = self._default
        return DelayModel(
            default=(rise[1], fall[1]),
            overrides={
                name: (r[1], f[1]) for name, (f, r) in self._overrides.items()
            },
        )

    def lo_model(self) -> DelayModel:
        """The scalar best-case projection (every delay at its lo bound)."""
        fall, rise = self._default
        return DelayModel(
            default=(rise[0], fall[0]),
            overrides={
                name: (r[0], f[0]) for name, (f, r) in self._overrides.items()
            },
        )

    # ------------------------------------------------------------------
    # construction / mutation / serialization (scalar-model parity)
    # ------------------------------------------------------------------
    @classmethod
    def from_scalar(
        cls, model: DelayModel, widen: float = 0.0
    ) -> "IntervalDelayModel":
        """Point intervals from a scalar model, optionally widened by
        ``widen`` on each side (lo clamped at 0)."""
        if widen < 0:
            raise TimingError(f"widen must be non-negative, got {widen!r}")

        def spread(pair):
            fall, rise = pair
            return (
                [max(0.0, rise - widen), rise + widen],
                [max(0.0, fall - widen), fall + widen],
            )

        fall, rise = model._default
        return cls(
            default=spread((fall, rise)),
            overrides={
                name: spread(pair)
                for name, pair in model._overrides.items()
            },
        )

    def with_override(self, node_name: str, delay) -> "IntervalDelayModel":
        """A copy with ``node_name``'s bounds replaced (accepts every
        scalar form too — a scalar/pair becomes a point interval, which
        keeps :class:`~repro.eco.edits.SetDelay` edits working unchanged)."""
        model = IntervalDelayModel.__new__(IntervalDelayModel)
        model._default = self._default
        model._overrides = dict(self._overrides)
        model._overrides[node_name] = _normalize_bounds(delay)
        return model

    def restricted_to(
        self, network: Network, outputs: Iterable[str] | None = None
    ) -> "IntervalDelayModel":
        """A copy keeping only overrides naming nodes of ``network`` (or
        of the ``outputs`` cones); unknown output names raise a typed
        :class:`~repro.errors.NetworkError` — same contract as the
        scalar model."""
        keep = _restriction_names(network, outputs)
        model = IntervalDelayModel.__new__(IntervalDelayModel)
        model._default = self._default
        model._overrides = {
            name: entry
            for name, entry in self._overrides.items()
            if name in keep
        }
        return model

    def to_spec(self) -> dict:
        """A JSON-serializable description with a ``"model": "interval"``
        marker.

        The marker is what keeps interval cache digests disjoint from
        scalar ones: a scalar spec has no ``model`` key (its byte layout
        predates this class and must stay stable so existing digests
        remain reachable), so even a *point* interval model keys
        differently from the scalar model it degenerates to.  Each delay
        is ``[[rise_lo, rise_hi], [fall_lo, fall_hi]]``.
        """
        fall, rise = self._default
        return {
            "model": "interval",
            "default": [list(rise), list(fall)],
            "overrides": {
                name: [list(r), list(f)]
                for name, (f, r) in sorted(self._overrides.items())
            },
        }

    @classmethod
    def from_spec(cls, spec: Mapping) -> "IntervalDelayModel":
        """Rebuild a model from :meth:`to_spec` output."""
        model = spec.get("model", "interval")
        if model != "interval":
            raise TimingError(
                f"not an interval delay spec (model={model!r})"
            )
        return cls(
            spec.get("default", 1.0),
            {name: d for name, d in spec.get("overrides", {}).items()},
        )

    def validate(self, network: Network) -> None:
        """Check every override names a node of ``network`` (raises)."""
        for name in self._overrides:
            network.node(name)  # raises on unknown nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IntervalDelayModel default={self._default} "
            f"overrides={len(self._overrides)} point={self.is_point()}>"
        )


def delay_model_from_spec(spec: Mapping):
    """Dispatch a delay spec to the model class it describes.

    A spec without a ``model`` key (or with ``"model": "scalar"``) is
    the historical scalar format and builds a :class:`DelayModel`;
    ``"model": "interval"`` builds an :class:`IntervalDelayModel`.
    Unknown model names raise :class:`~repro.errors.TimingError`.
    """
    kind = spec.get("model", "scalar")
    if kind == "scalar":
        return DelayModel.from_spec(spec)
    if kind == "interval":
        return IntervalDelayModel.from_spec(spec)
    raise TimingError(
        f"unknown delay model {kind!r} (choose from ['scalar', 'interval'])"
    )


def unit_delay() -> DelayModel:
    """The paper's experimental delay model: every gate has delay 1."""
    return DelayModel(default=1.0)


def unit_interval_delay() -> IntervalDelayModel:
    """The unit delay model as point intervals ``[1, 1]`` — what
    ``--delay-model interval`` uses when no spec is given."""
    return IntervalDelayModel.from_scalar(unit_delay())
