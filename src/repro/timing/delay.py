"""Delay models.

The paper analyzes circuits under the **extended bounded delay-0 (XBD0)**
model (Section 2.2): each gate has a maximum positive delay and a minimum
delay of zero, and sensitization reasons over *all* delay assignments in
between.  The monotone-speedup property of viability analysis corresponds
exactly to the zero minimum.  Operationally, only the maximum delays enter
the χ-function recursion, so a delay model here maps each gate to its
maximum delay.

The experiments in the paper use the **unit delay model** (every gate's
maximum delay is 1); :func:`unit_delay` builds it.

Rise/fall distinction (the paper's footnote 1: "it is possible to
differentiate rise delays from fall delays") is supported as an extension:
an override may be a single number or a ``(rise, fall)`` pair, and the χ
recursion applies the rise delay when stabilizing a node to 1 and the fall
delay when stabilizing it to 0.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import TimingError
from repro.network.network import Network

DelaySpec = "float | tuple[float, float]"


def _normalize(delay) -> tuple[float, float]:
    """(fall, rise) pair from a scalar or 2-tuple specification."""
    if isinstance(delay, (tuple, list)):
        if len(delay) != 2:
            raise TimingError(f"delay pair must have two entries, got {delay!r}")
        rise, fall = float(delay[0]), float(delay[1])
    else:
        rise = fall = float(delay)
    if rise < 0 or fall < 0:
        raise TimingError(f"gate delay must be non-negative, got {delay!r}")
    return (fall, rise)


class DelayModel:
    """Maximum gate delays under the XBD0 model.

    ``overrides`` assigns specific delays by node name; every other gate
    gets ``default``.  Each delay is a scalar or a ``(rise, fall)`` pair.
    Primary inputs have no delay (arrival times are boundary conditions,
    not gate properties).
    """

    def __init__(self, default=1.0, overrides: Mapping[str, object] | None = None):
        self._default = _normalize(default)
        self._overrides: dict[str, tuple[float, float]] = {
            name: _normalize(d) for name, d in (overrides or {}).items()
        }

    @property
    def default(self) -> float:
        """The default maximum delay (max of rise/fall)."""
        return max(self._default)

    @property
    def overrides(self) -> dict[str, float]:
        """Per-gate maximum delays (max of rise/fall), for reporting."""
        return {name: max(pair) for name, pair in self._overrides.items()}

    def of(self, node_name: str) -> float:
        """Maximum delay of the named gate (max over rise/fall)."""
        return max(self._overrides.get(node_name, self._default))

    def of_value(self, node_name: str, value: int) -> float:
        """Delay toward stabilizing at ``value``: rise delay for 1, fall
        delay for 0 (footnote 1 of the paper)."""
        fall, rise = self._overrides.get(node_name, self._default)
        return rise if value else fall

    def is_value_dependent(self) -> bool:
        """True when any gate distinguishes rise from fall."""
        if self._default[0] != self._default[1]:
            return True
        return any(fall != rise for fall, rise in self._overrides.values())

    def with_override(self, node_name: str, delay) -> "DelayModel":
        model = DelayModel.__new__(DelayModel)
        model._default = self._default
        model._overrides = dict(self._overrides)
        model._overrides[node_name] = _normalize(delay)
        return model

    def restricted_to(self, network: Network) -> "DelayModel":
        """A copy keeping only the overrides naming nodes of ``network``
        (used when a circuit is shrunk out from under its delay model)."""
        model = DelayModel.__new__(DelayModel)
        model._default = self._default
        model._overrides = {
            name: pair
            for name, pair in self._overrides.items()
            if name in network.nodes
        }
        return model

    def to_spec(self) -> dict:
        """A JSON-serializable ``{default, overrides}`` description, each
        delay as a ``[rise, fall]`` pair (the constructor's input order)."""
        fall, rise = self._default
        return {
            "default": [rise, fall],
            "overrides": {
                name: [r, f] for name, (f, r) in sorted(self._overrides.items())
            },
        }

    @classmethod
    def from_spec(cls, spec: Mapping) -> "DelayModel":
        """Rebuild a model from :meth:`to_spec` output."""
        return cls(
            tuple(spec.get("default", (1.0, 1.0))),
            {name: tuple(pair) for name, pair in spec.get("overrides", {}).items()},
        )

    def validate(self, network: Network) -> None:
        for name in self._overrides:
            network.node(name)  # raises on unknown nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DelayModel default={self._default} "
            f"overrides={len(self._overrides)}>"
        )


def unit_delay() -> DelayModel:
    """The paper's experimental delay model: every gate has delay 1."""
    return DelayModel(default=1.0)
