"""The χ-function engine (McGeer-Saldanha-Brayton-Sangiovanni [9]).

``χ_{n,v}^t`` is the characteristic function of the primary-input vectors
under which node *n* is stable at value *v* by time *t*, computed
recursively (Section 2.3 of the paper):

.. math::

    χ_{n,v}^t = \\sum_{p ∈ P_n^v} \\; \\prod_{m_i ∈ p} χ_{m_i,1}^{t-d_n}
                \\cdot \\prod_{\\overline{m_i} ∈ p} χ_{m_i,0}^{t-d_n}

where ``P_n^1``/``P_n^0`` are the primes of the node function and of its
complement, with the terminal case ``χ_{x,v}^t = literal if t ≥ arr(x) else
0`` at primary inputs.

Two realizations are provided:

* :class:`ChiEngine` — BDD-based: χ functions are BDDs over the primary
  inputs.
* :func:`build_chi_network` — network-based: the χ recursion is *unrolled
  into a Boolean network* whose nodes are (signal, value, time) triples;
  stability checks then become SAT problems on that network, which is the
  scalable engine of the paper's second approximate algorithm.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bdd import BddManager, BddNode, create_manager
from repro.errors import ResourceLimitError, TimingError
from repro.network.network import Network
from repro.network.verify import global_functions
from repro.obs.trace import span
from repro.sop import Cover, Cube
from repro.timing.delay import DelayModel, unit_delay


def _arrival_pair(t: object) -> tuple[float, float]:
    """Normalize a scalar or (arr_for_0, arr_for_1) pair arrival time."""
    if isinstance(t, (tuple, list)):
        if len(t) != 2:
            raise TimingError(f"arrival pair must have two entries, got {t!r}")
        return (float(t[0]), float(t[1]))
    return (float(t), float(t))


class ChiEngine:
    """BDD-based χ functions for a network with *known* arrival times."""

    def __init__(
        self,
        network: Network,
        delays: DelayModel | None = None,
        arrivals: Mapping[str, float] | None = None,
        manager: BddManager | None = None,
    ):
        self.network = network
        self.delays = delays or unit_delay()
        # per-input arrival times, distinguished by value: (arr_for_0,
        # arr_for_1).  Callers may pass a scalar (same for both values) or a
        # 2-tuple; the paper's exact/approx-1 algorithms distinguish the two.
        self.arrivals: dict[str, tuple[float, float]] = {
            pi: (0.0, 0.0) for pi in network.inputs
        }
        if arrivals:
            for name, t in arrivals.items():
                if name not in self.arrivals:
                    raise TimingError(f"arrival time for non-input {name!r}")
                self.arrivals[name] = _arrival_pair(t)
        self.manager = manager or create_manager()
        for pi in network.inputs:
            if not self.manager.has_var(pi):
                self.manager.add_var(pi)
        self._memo: dict[tuple[str, int, float], BddNode] = {}

    def chi(self, name: str, value: int, t: float) -> BddNode:
        """The BDD of χ_{name,value}^t."""
        if value not in (0, 1):
            raise TimingError(f"value must be 0 or 1, got {value}")
        key = (name, value, float(t))
        if key in self._memo:  # memo hits skip the span entirely
            return self._memo[key]
        # one span per top-level query; the recursion below goes uninstrumented
        with span("chi.build", node=name, value=value, t=float(t)):
            return self._chi(name, value, float(t))

    def _chi(self, name: str, value: int, t: float) -> BddNode:
        """Memoized χ recursion body behind :meth:`chi`."""
        key = (name, value, t)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        node = self.network.node(name)
        m = self.manager
        if node.is_input:
            if t >= self.arrivals[name][value]:
                result = m.var(name) if value else m.nvar(name)
            else:
                result = m.false
        else:
            onset_primes, offset_primes = node.primes()
            primes = onset_primes if value else offset_primes
            t_in = t - self.delays.of_value(name, value)
            terms: list[BddNode] = []
            saturated = False
            for cube in primes:
                operands: list[BddNode] = []
                dead = False
                for i, fanin in enumerate(node.fanins):
                    phase = cube.literal(i)
                    if phase is None:
                        continue
                    child = self._chi(fanin, phase, t_in)
                    if child.is_false:
                        dead = True
                        break
                    operands.append(child)
                if dead:
                    continue
                term = m.conjoin(operands)
                if term.is_true:
                    saturated = True
                    break
                if not term.is_false:
                    terms.append(term)
            result = m.true if saturated else m.disjoin(terms)
        self._memo[key] = result
        return result

    def stable(self, name: str, t: float) -> BddNode:
        """χ̃ — the set of input vectors stabilizing ``name`` by ``t``."""
        return self.chi(name, 1, t) | self.chi(name, 0, t)

    def is_stable_by(self, name: str, t: float) -> bool:
        """All input vectors stabilize ``name`` by ``t``?"""
        return self.stable(name, t).is_true

    def check_onset_invariant(self, name: str, t: float) -> bool:
        """Verify χ_{n,1}^t ⊆ onset(n) and χ_{n,0}^t ⊆ offset(n).

        Holds by construction under the XBD0 model (Lemma 3's boundary
        case); exposed for the test suite.
        """
        funcs = global_functions(self.network, self.manager)
        on = funcs[name]
        return (
            self.chi(name, 1, t).implies(on).is_true
            and self.chi(name, 0, t).implies(~on).is_true
        )


def candidate_times(
    network: Network,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
    max_per_node: int = 10_000,
) -> dict[str, list[float]]:
    """All potential stabilization moments of every node.

    ``times(x) = {arr(x)}`` at a primary input; ``times(n) = {t + d_n}``
    over all fanin times at a gate.  The true arrival time of a node under
    the XBD0 model is always one of its candidate times, so delay search
    can restrict itself to this set.  ``max_per_node`` guards against the
    exponential blowup possible with irrational delay mixes.
    """
    delays = delays or unit_delay()
    arrivals = arrivals or {}
    times: dict[str, list[float]] = {}
    with span("chi.candidate_times", nodes=len(network.nodes)):
        _candidate_times_into(network, delays, arrivals, max_per_node, times)
    return times


def _candidate_times_into(
    network: Network,
    delays: DelayModel,
    arrivals: Mapping[str, float],
    max_per_node: int,
    times: dict[str, list[float]],
) -> None:
    """Fill ``times`` with each node's candidate stabilization instants."""
    for name in network.topological_order():
        node = network.nodes[name]
        if node.is_input:
            times[name] = sorted(set(_arrival_pair(arrivals.get(name, 0.0))))
            continue
        gate_delays = {delays.of_value(name, 0), delays.of_value(name, 1)}
        merged: set[float] = set()
        for fanin in node.fanins:
            for d in gate_delays:
                merged.update(t + d for t in times[fanin])
        if not merged:
            merged = set(gate_delays)
        if len(merged) > max_per_node:
            raise ResourceLimitError(
                f"node {name!r} has more than {max_per_node} candidate times"
            )
        times[name] = sorted(merged)


def build_chi_network(
    network: Network,
    output: str,
    required_time: float,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
    include_value: int | None = None,
) -> tuple[Network, str]:
    """Unroll the χ recursion into a Boolean network (the SAT engine).

    The returned network has the same primary inputs as ``network`` and one
    output named ``__stable__`` computing ``χ_{output,1}^T ∨ χ_{output,0}^T``
    (or just one χ when ``include_value`` is 0 or 1).  A SAT check that
    ``__stable__`` can be 0 decides whether some input vector fails to
    stabilize the output by ``required_time``.
    """
    delays = delays or unit_delay()
    arrivals = arrivals or {}
    arr = {pi: _arrival_pair(arrivals.get(pi, 0.0)) for pi in network.inputs}

    chi_net = Network(f"chi_{network.name}")
    for pi in network.inputs:
        chi_net.add_input(pi)

    created: dict[tuple[str, int, float], str] = {}
    const_of: dict[str, int] = {}  # labels folded to constants

    def make_const(label: str, value: int) -> str:
        chi_net.add_node(label, [], Cover.one(0) if value else Cover.zero(0))
        const_of[label] = value
        return label

    def chi_name(name: str, value: int, t: float) -> str:
        key = (name, value, t)
        if key in created:
            return created[key]
        label = f"chi[{name},{value},{t:g}]"
        node = network.node(name)
        if node.is_input:
            if t >= arr[name][value]:
                chi_net.add_gate(label, "BUF" if value else "NOT", [name])
            else:
                make_const(label, 0)
        else:
            onset_primes, offset_primes = node.primes()
            primes = onset_primes if value else offset_primes
            t_in = t - delays.of_value(name, value)
            fanin_labels: list[str] = []
            fanin_index: dict[str, int] = {}
            cubes: list[Cube] = []
            is_const_one = False
            for cube in primes:
                # resolve children, folding constants: a 0-child kills the
                # product, a 1-child drops out of it
                lits: list[str] = []
                dead = False
                seen_children: set[str] = set()
                for i, fanin in enumerate(node.fanins):
                    phase = cube.literal(i)
                    if phase is None:
                        continue
                    child = chi_name(fanin, phase, t_in)
                    cval = const_of.get(child)
                    if cval == 0:
                        dead = True
                        break
                    if cval == 1 or child in seen_children:
                        continue
                    seen_children.add(child)
                    lits.append(child)
                if dead:
                    continue
                if not lits:
                    is_const_one = True
                    break
                cubes.append((lits,))
            if is_const_one:
                make_const(label, 1)
            elif not cubes:
                make_const(label, 0)
            else:
                for (lits,) in cubes:
                    for child in lits:
                        if child not in fanin_index:
                            fanin_index[child] = len(fanin_labels)
                            fanin_labels.append(child)
                width = len(fanin_labels)
                cover = Cover(
                    width,
                    [
                        Cube.from_literals(
                            width, {fanin_index[c]: 1 for c in lits}
                        )
                        for (lits,) in cubes
                    ],
                )
                chi_net.add_node(label, fanin_labels, cover)
        created[key] = label
        return label

    t = float(required_time)
    with span("chi.unroll", output=output, t=t) as sp:
        if include_value is None:
            one = chi_name(output, 1, t)
            zero = chi_name(output, 0, t)
            chi_net.add_gate("__stable__", "OR", [one, zero])
        else:
            target = chi_name(output, include_value, t)
            chi_net.add_gate("__stable__", "BUF", [target])
        sp.set(chi_nodes=len(chi_net.nodes))
    chi_net.set_outputs(["__stable__"])
    return chi_net, "__stable__"
