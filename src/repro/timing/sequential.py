"""Cutting sequential circuits at latch boundaries (Section 3).

"Sequential circuits using edge-triggered latches ... can be easily handled
with the same framework by assuming all the latch inputs and outputs as
primary outputs and inputs respectively, where the required times and
arrival times of those are determined by the clock edge minus the setup
time and the clock edge itself."

:func:`cut_at_latches` performs exactly that transformation on BLIF text
containing ``.latch`` statements, returning the combinational network plus
the boundary timing constraints for a given cycle time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.network.blif import parse_blif
from repro.network.network import Network


@dataclass
class CutResult:
    """A combinational analysis problem derived from a sequential circuit."""

    network: Network
    #: arrival time for every primary input of the cut network: 0 (the clock
    #: edge) at latch outputs and at original primary inputs.
    arrivals: dict[str, float] = field(default_factory=dict)
    #: required time for every primary output: ``cycle_time - setup_time``
    #: at latch inputs, ``cycle_time`` at original primary outputs.
    required: dict[str, float] = field(default_factory=dict)
    #: latch-input signal names (subset of network.outputs)
    latch_inputs: list[str] = field(default_factory=list)
    #: latch-output signal names (subset of network.inputs)
    latch_outputs: list[str] = field(default_factory=list)


def cut_at_latches(
    blif_text: str,
    cycle_time: float = 0.0,
    setup_time: float = 0.0,
    filename: str | None = None,
) -> CutResult:
    """Parse sequential BLIF and cut it into a combinational problem.

    Every ``.latch D Q [type clock] [init]`` line is removed; Q becomes a
    primary input (arrival = clock edge = 0) and D a primary output
    (required = ``cycle_time - setup_time``).
    """
    latches: list[tuple[str, str]] = []
    kept_lines: list[str] = []
    for lineno, raw in enumerate(blif_text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if stripped.startswith(".latch"):
            tokens = stripped.split()
            if len(tokens) < 3:
                raise ParseError(".latch needs input and output", filename, lineno)
            latches.append((tokens[1], tokens[2]))
            continue
        kept_lines.append(raw)

    if not latches:
        network = parse_blif("\n".join(kept_lines), filename)
        return CutResult(
            network=network,
            arrivals={pi: 0.0 for pi in network.inputs},
            required={po: float(cycle_time) for po in network.outputs},
        )

    # splice the latch boundary into .inputs/.outputs
    latch_inputs = [d for d, _ in latches]
    latch_outputs = [q for _, q in latches]
    text = "\n".join(kept_lines)
    lines = text.splitlines()
    out_lines: list[str] = []
    added_io = False
    for line in lines:
        out_lines.append(line)
        if line.strip().startswith(".model") and not added_io:
            added_io = True
    if not added_io:
        out_lines.insert(0, ".model cut")
    # append boundary declarations right after existing declarations by
    # simply adding extra .inputs/.outputs lines (BLIF allows repeats)
    insert_at = 1
    out_lines.insert(insert_at, ".inputs " + " ".join(latch_outputs))
    out_lines.insert(insert_at + 1, ".outputs " + " ".join(latch_inputs))
    network = parse_blif("\n".join(out_lines), filename)

    arrivals = {pi: 0.0 for pi in network.inputs}
    required = {po: float(cycle_time) for po in network.outputs}
    for d in latch_inputs:
        required[d] = float(cycle_time) - float(setup_time)
    return CutResult(
        network=network,
        arrivals=arrivals,
        required=required,
        latch_inputs=latch_inputs,
        latch_outputs=latch_outputs,
    )
