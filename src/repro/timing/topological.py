"""Topological (static) timing analysis.

Arrival times propagate forward with longest-path semantics; required times
propagate backward with the paper's Figure 3 algorithm (reverse topological
order, earliest requirement wins at multi-fanout nodes).  This analysis is
the baseline everything in the paper is compared against: it is safe but
pessimistic because it ignores false paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import TimingError
from repro.network.network import Network
from repro.obs.trace import span
from repro.timing.delay import DelayModel, IntervalDelayModel, unit_delay


def arrival_times(
    network: Network,
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Topological (longest-path) arrival time of every node.

    ``input_arrivals`` defaults to 0 at every primary input.
    """
    delays = delays or unit_delay()
    input_arrivals = input_arrivals or {}
    arr: dict[str, float] = {}
    with span("topo.arrival", nodes=len(network.nodes)):
        _arrival_into(network, delays, input_arrivals, arr)
    return arr


def _arrival_into(
    network: Network,
    delays: DelayModel,
    input_arrivals: Mapping[str, float],
    arr: dict[str, float],
) -> None:
    """Fill ``arr`` with longest-path arrivals in topological order."""
    for name in network.topological_order():
        node = network.nodes[name]
        if node.is_input:
            given = input_arrivals.get(name, 0.0)
            if isinstance(given, (tuple, list)):
                # per-value arrival pair: longest-path analysis is
                # conservative, so take the later of the two
                given = max(given)
            arr[name] = float(given)
        else:
            if not node.fanins:
                # constant node: stable once its own delay has elapsed
                arr[name] = delays.of(name)
                continue
            arr[name] = delays.of(name) + max(arr[f] for f in node.fanins)


def required_times(
    network: Network,
    delays: DelayModel | None = None,
    output_required: Mapping[str, float] | float = 0.0,
) -> dict[str, float]:
    """The paper's Figure 3 algorithm.

    Sort nodes in reverse topological order, initialize every non-output
    node's required time to +inf, then for every node n and fanin m set
    ``req(m) = min(req(m), req(n) - d_n)``.  ``output_required`` is either a
    single number applied to every primary output or a per-output mapping.
    """
    delays = delays or unit_delay()
    if isinstance(output_required, Mapping):
        req_out = dict(output_required)
        missing = set(network.outputs) - set(req_out)
        if missing:
            raise TimingError(f"missing required times for outputs {sorted(missing)}")
    else:
        req_out = {o: float(output_required) for o in network.outputs}

    req: dict[str, float] = {name: math.inf for name in network.nodes}
    for out, t in req_out.items():
        req[out] = min(req[out], float(t))

    with span("topo.required", nodes=len(network.nodes)):
        for name in network.reverse_topological_order():
            node = network.nodes[name]
            if node.is_input:
                continue
            here = req[name]
            if here == math.inf:
                continue
            d = delays.of(name)
            for fanin in node.fanins:
                if here - d < req[fanin]:
                    req[fanin] = here - d
    return req


def required_time_bounds(
    network: Network,
    delays: IntervalDelayModel,
    output_required: Mapping[str, float] | float = 0.0,
) -> dict[str, tuple[float, float]]:
    """Figure-3 backward propagation under interval delays.

    Every gate delay floats in its ``[lo, hi]`` box independently, so the
    topological required time of each node spans an interval too:

    * the **lo** end assumes every downstream gate is at its *hi* delay —
      this is the conservative (safe) required time any fixed delay
      assignment in the box must satisfy;
    * the **hi** end assumes every downstream gate is at its *lo* delay —
      the most optimistic requirement achievable inside the box.

    Concretely, with ``req(n) = [req_lo, req_hi]`` the candidate pushed
    into fanin ``m`` is ``[req_lo - d_hi(n), req_hi - d_lo(n)]`` and both
    ends min-merge independently at multi-fanout nodes, which is exactly
    running :func:`required_times` once per corner — point intervals
    collapse both corners onto the scalar result (docs/DELAY_MODELS.md).
    """
    if isinstance(output_required, Mapping):
        req_out = dict(output_required)
        missing = set(network.outputs) - set(req_out)
        if missing:
            raise TimingError(f"missing required times for outputs {sorted(missing)}")
    else:
        req_out = {o: float(output_required) for o in network.outputs}

    lo: dict[str, float] = {name: math.inf for name in network.nodes}
    hi: dict[str, float] = {name: math.inf for name in network.nodes}
    for out, t in req_out.items():
        lo[out] = min(lo[out], float(t))
        hi[out] = min(hi[out], float(t))

    with span("topo.required_bounds", nodes=len(network.nodes)):
        for name in network.reverse_topological_order():
            node = network.nodes[name]
            if node.is_input:
                continue
            if lo[name] == math.inf and hi[name] == math.inf:
                continue
            d_lo, d_hi = delays.of_bounds(name)
            for fanin in node.fanins:
                if lo[name] - d_hi < lo[fanin]:
                    lo[fanin] = lo[name] - d_hi
                if hi[name] - d_lo < hi[fanin]:
                    hi[fanin] = hi[name] - d_lo
    return {name: (lo[name], hi[name]) for name in network.nodes}


def slacks(
    network: Network,
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
    output_required: Mapping[str, float] | float = 0.0,
) -> dict[str, float]:
    """Topological slack = required - arrival at every node."""
    arr = arrival_times(network, delays, input_arrivals)
    req = required_times(network, delays, output_required)
    return {name: req[name] - arr[name] for name in network.nodes}


@dataclass
class TopologicalTiming:
    """Bundled STA result with convenience accessors."""

    network: Network
    delays: DelayModel
    arrival: dict[str, float]
    required: dict[str, float]
    slack: dict[str, float] = field(default_factory=dict)

    @classmethod
    def analyze(
        cls,
        network: Network,
        delays: DelayModel | None = None,
        input_arrivals: Mapping[str, float] | None = None,
        output_required: Mapping[str, float] | float = 0.0,
    ) -> "TopologicalTiming":
        """Run forward arrival + backward required STA in one shot."""
        delays = delays or unit_delay()
        arr = arrival_times(network, delays, input_arrivals)
        req = required_times(network, delays, output_required)
        slack = {n: req[n] - arr[n] for n in network.nodes}
        return cls(network, delays, arr, req, slack)

    @property
    def worst_slack(self) -> float:
        """The minimum slack over all nodes (negative = violation)."""
        return min(self.slack[n] for n in self.network.nodes)

    def critical_path(self) -> list[str]:
        """One most-critical input-to-output path (minimum slack)."""
        # start from the PO with the worst slack
        start = min(self.network.outputs, key=lambda o: self.slack[o])
        path = [start]
        current = self.network.nodes[start]
        while not current.is_input:
            # predecessor on the longest path: arrival + delay == our arrival
            d = self.delays.of(current.name)
            best = max(current.fanins, key=lambda f: self.arrival[f])
            path.append(best)
            current = self.network.nodes[best]
        path.reverse()
        return path

    def topological_delay(self) -> float:
        """Longest-path delay from inputs to any primary output."""
        return max(self.arrival[o] for o in self.network.outputs)
