"""Timing analysis: topological (STA) and functional (false-path aware).

* :mod:`~repro.timing.delay` — delay models.  The paper's analysis is under
  the XBD0 (extended bounded delay-0) model: every gate delay floats
  between 0 and its maximum; the experiments use the unit delay model.
  :class:`~repro.timing.delay.IntervalDelayModel` extends this with
  min/max rise/fall bounds per gate (docs/DELAY_MODELS.md).
* :mod:`~repro.timing.topological` — classical longest-path STA, including
  the exact algorithm of the paper's Figure 3 for backward required-time
  propagation.
* :mod:`~repro.timing.chi` — the χ-function engine of McGeer et al. [9]
  (Section 2.3): characteristic functions of the input vectors that
  stabilize a node to a constant by a given time, computed recursively over
  the primes of each node function.
* :mod:`~repro.timing.functional` — functional delay analysis built on χ
  functions: stability checks (BDD- or SAT-engine), true arrival times via
  search over candidate times, false-path detection.
* :mod:`~repro.timing.sequential` — cutting sequential BLIF at latch
  boundaries into the combinational analysis problem (Section 3).
"""

from repro.timing.delay import (
    DelayModel,
    IntervalDelayModel,
    delay_model_from_spec,
    unit_delay,
    unit_interval_delay,
)
from repro.timing.topological import (
    TopologicalTiming,
    arrival_times,
    required_time_bounds,
    required_times,
    slacks,
)
from repro.timing.chi import ChiEngine, build_chi_network, candidate_times
from repro.timing.functional import (
    FunctionalTiming,
    has_false_paths,
    stable_by,
    true_arrival_times,
)
from repro.timing.sequential import cut_at_latches
from repro.timing.ternary import (
    oracle_stable_by,
    oracle_true_arrival,
    stabilization_times,
    ternary_eval,
)
from repro.timing.report import TimingReport, timing_report
from repro.timing.paths import (
    Path,
    classify_path,
    enumerate_paths,
    false_path_report,
    is_statically_sensitizable,
    longest_paths,
    static_sensitization_condition,
)

__all__ = [
    "DelayModel",
    "IntervalDelayModel",
    "delay_model_from_spec",
    "unit_delay",
    "unit_interval_delay",
    "TopologicalTiming",
    "arrival_times",
    "required_time_bounds",
    "required_times",
    "slacks",
    "ChiEngine",
    "build_chi_network",
    "candidate_times",
    "FunctionalTiming",
    "stable_by",
    "true_arrival_times",
    "has_false_paths",
    "cut_at_latches",
    "ternary_eval",
    "stabilization_times",
    "oracle_stable_by",
    "oracle_true_arrival",
    "Path",
    "enumerate_paths",
    "longest_paths",
    "static_sensitization_condition",
    "is_statically_sensitizable",
    "classify_path",
    "false_path_report",
    "TimingReport",
    "timing_report",
]
