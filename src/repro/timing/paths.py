"""Path enumeration and per-path false-path classification.

The paper's analyses never enumerate paths — that is their point — but a
false-path library should still let users *inspect* individual paths.
This module provides:

* :func:`enumerate_paths` — input-to-output paths with their delays,
  longest first;
* :func:`static_sensitization_condition` — the BDD of the input vectors
  that statically sensitize a path (every on-path gate's output depends
  on its on-path fanin, i.e. the product of Boolean differences).  Static
  sensitization is the classical — and famously *approximate* — criterion
  (Section 2's references [5, 6] discuss why); it is exposed for study,
  not as the arbiter;
* :func:`classify_path` — a sound three-way verdict under XBD0:

  - ``"false"`` when the path is longer than its endpoint's exact arrival
    time (no event along it can ever be the last to arrive),
  - ``"true"`` when the path delay equals the endpoint's exact arrival
    and the path is statically sensitizable (a witness vector exists),
  - ``"undetermined"`` otherwise (the gap where static sensitization is
    known to be unreliable).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Literal, Mapping, Sequence

from repro.bdd import BddManager, BddNode, create_manager
from repro.errors import NetworkError, TimingError
from repro.network.network import Network
from repro.network.verify import _cover_bdd, global_functions
from repro.timing.delay import DelayModel, unit_delay
from repro.timing.functional import FunctionalTiming


@dataclass(frozen=True)
class Path:
    """One input-to-output path with its topological delay."""

    nodes: tuple[str, ...]
    delay: float

    @property
    def start(self) -> str:
        """First node of the path (usually a primary input)."""
        return self.nodes[0]

    @property
    def end(self) -> str:
        """Last node of the path (usually a primary output)."""
        return self.nodes[-1]

    def __len__(self) -> int:
        return len(self.nodes)


def enumerate_paths(
    network: Network,
    delays: DelayModel | None = None,
    to_outputs: Sequence[str] | None = None,
    max_paths: int = 10_000,
) -> list[Path]:
    """All primary-input-to-output paths, sorted by decreasing delay.

    Uses the conservative (max over rise/fall) gate delays.  ``max_paths``
    guards the inherent exponential blowup.
    """
    delays = delays or unit_delay()
    outputs = list(to_outputs) if to_outputs is not None else list(network.outputs)
    for o in outputs:
        network.node(o)

    paths: list[Path] = []

    def walk(name: str, suffix: tuple[str, ...], delay: float) -> None:
        node = network.nodes[name]
        if node.is_input:
            paths.append(Path(nodes=(name,) + suffix, delay=delay))
            if len(paths) > max_paths:
                raise NetworkError(f"more than {max_paths} paths; tighten the query")
            return
        d = delays.of(name)
        for fanin in dict.fromkeys(node.fanins):
            walk(fanin, (name,) + suffix, delay + d)

    for out in outputs:
        walk(out, (), 0.0)
    paths.sort(key=lambda p: (-p.delay, p.nodes))
    return paths


def longest_paths(
    network: Network,
    delays: DelayModel | None = None,
    to_outputs: Sequence[str] | None = None,
    max_paths: int = 10_000,
) -> list[Path]:
    """The paths achieving the maximum topological delay."""
    paths = enumerate_paths(network, delays, to_outputs, max_paths)
    if not paths:
        return []
    top = paths[0].delay
    return [p for p in paths if p.delay == top]


def static_sensitization_condition(
    network: Network,
    path: Path | Sequence[str],
    manager: BddManager | None = None,
) -> BddNode:
    """The set of input vectors statically sensitizing the path.

    For every on-path gate g with on-path fanin m, the condition requires
    the Boolean difference ∂f_g/∂m to hold: with the side inputs at their
    (global) values, g's output flips when m flips.
    """
    nodes = tuple(path.nodes) if isinstance(path, Path) else tuple(path)
    if len(nodes) < 2:
        raise TimingError("a path needs at least an input and one gate")
    manager = manager or create_manager()
    funcs = global_functions(network, manager)

    condition = manager.true
    for prev, name in zip(nodes, nodes[1:]):
        node = network.node(name)
        if node.is_input:
            raise NetworkError(f"path passes through primary input {name!r}")
        if prev not in node.fanins:
            raise NetworkError(f"{prev!r} is not a fanin of {name!r}")
        idx = node.fanins.index(prev)
        fanin_bdds_one = [
            manager.true if i == idx else funcs[f]
            for i, f in enumerate(node.fanins)
        ]
        fanin_bdds_zero = [
            manager.false if i == idx else funcs[f]
            for i, f in enumerate(node.fanins)
        ]
        with_one = _cover_bdd(manager, node.cover, fanin_bdds_one)
        with_zero = _cover_bdd(manager, node.cover, fanin_bdds_zero)
        condition = condition & (with_one ^ with_zero)
        if condition.is_false:
            break
    return condition


def is_statically_sensitizable(
    network: Network, path: Path | Sequence[str]
) -> bool:
    """True when some input vector statically sensitizes the path."""
    return not static_sensitization_condition(network, path).is_false


Verdict = Literal["false", "true", "undetermined"]


def classify_path(
    network: Network,
    path: Path,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
    engine: Literal["bdd", "sat"] = "bdd",
) -> Verdict:
    """Sound three-way classification of one path under XBD0 (see the
    module docstring for the exact semantics of each verdict)."""
    delays = delays or unit_delay()
    if path.end not in network.outputs:
        raise TimingError(f"path endpoint {path.end!r} is not a primary output")
    ft = FunctionalTiming(network, delays, arrivals, engine=engine)
    true_arrival = ft.true_arrival(path.end)
    start_arrival = (arrivals or {}).get(path.start, 0.0)
    if isinstance(start_arrival, (tuple, list)):
        start_arrival = max(start_arrival)
    path_arrival = float(start_arrival) + path.delay
    if path_arrival > true_arrival:
        return "false"
    if path_arrival == true_arrival and is_statically_sensitizable(network, path):
        return "true"
    return "undetermined"


def false_path_report(
    network: Network,
    delays: DelayModel | None = None,
    arrivals: Mapping[str, float] | None = None,
    max_paths: int = 2_000,
) -> dict[str, int]:
    """Counts of path verdicts across the whole network — a quick summary
    of how false-path-rich a circuit is."""
    counts = {"false": 0, "true": 0, "undetermined": 0}
    ft = FunctionalTiming(network, delays, arrivals, engine="bdd")
    true_arrivals = {o: ft.true_arrival(o) for o in network.outputs}
    for path in enumerate_paths(network, delays, max_paths=max_paths):
        start_arrival = (arrivals or {}).get(path.start, 0.0)
        if isinstance(start_arrival, (tuple, list)):
            start_arrival = max(start_arrival)
        path_arrival = float(start_arrival) + path.delay
        if path_arrival > true_arrivals[path.end]:
            counts["false"] += 1
        elif path_arrival == true_arrivals[path.end] and is_statically_sensitizable(
            network, path
        ):
            counts["true"] += 1
        else:
            counts["undetermined"] += 1
    return counts
