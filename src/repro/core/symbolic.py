"""The χ recursion with unknown (symbolic) leaves.

``SymbolicChi`` runs the same recursion as
:class:`repro.timing.chi.ChiEngine`, but the terminal case at each primary
input is delegated to a caller-supplied ``leaf_fn(name, value, t)``:

* the exact algorithm (Section 4.1) returns a *fresh BDD variable* per
  ⟨input, value, time⟩ triple,
* approximate approach 1 (Section 4.2) returns the α/β-parameterized
  product ``literal · α_1 · … · α_j``,
* the Section 5 flexibility analyses mix known leaves (inputs with given
  arrival times) with unknown ones (the subcircuit boundary).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.bdd import BddManager, BddNode
from repro.errors import TimingError
from repro.network.network import Network
from repro.timing.delay import DelayModel, unit_delay

LeafFn = Callable[[str, int, float], BddNode]


class SymbolicChi:
    """χ functions whose primary-input leaves are supplied by a callback."""

    def __init__(
        self,
        network: Network,
        manager: BddManager,
        leaf_fn: LeafFn,
        delays: DelayModel | None = None,
    ):
        self.network = network
        self.manager = manager
        self.leaf_fn = leaf_fn
        self.delays = delays or unit_delay()
        self._memo: dict[tuple[str, int, float], BddNode] = {}

    def chi(self, name: str, value: int, t: float) -> BddNode:
        if value not in (0, 1):
            raise TimingError(f"value must be 0 or 1, got {value}")
        t = float(t)
        key = (name, value, t)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        node = self.network.node(name)
        m = self.manager
        if node.is_input:
            result = self.leaf_fn(name, value, t)
        else:
            onset_primes, offset_primes = node.primes()
            primes = onset_primes if value else offset_primes
            t_in = t - self.delays.of_value(name, value)
            terms: list[BddNode] = []
            saturated = False
            for cube in primes:
                operands: list[BddNode] = []
                dead = False
                for i, fanin in enumerate(node.fanins):
                    phase = cube.literal(i)
                    if phase is None:
                        continue
                    child = self.chi(fanin, phase, t_in)
                    if child.is_false:
                        dead = True
                        break
                    operands.append(child)
                if dead:
                    continue
                term = m.conjoin(operands)
                if term.is_true:
                    saturated = True
                    break
                if not term.is_false:
                    terms.append(term)
            result = m.true if saturated else m.disjoin(terms)
        self._memo[key] = result
        return result


def known_arrival_leaf_fn(
    manager: BddManager, arrivals: Mapping[str, tuple[float, float] | float]
) -> LeafFn:
    """Leaf callback for inputs with *known* arrival times.

    ``arrivals`` values may be scalars or (arr_for_0, arr_for_1) pairs.
    """

    def normalize(t) -> tuple[float, float]:
        if isinstance(t, (tuple, list)):
            return (float(t[0]), float(t[1]))
        return (float(t), float(t))

    arr = {name: normalize(t) for name, t in arrivals.items()}

    def leaf(name: str, value: int, t: float) -> BddNode:
        if name not in arr:
            raise TimingError(f"no arrival time known for input {name!r}")
        if t >= arr[name][value]:
            return manager.var(name) if value else manager.nvar(name)
        return manager.false

    return leaf
