"""Abstract (black-box) timing macro-models — the paper's [7] extension.

The conclusions announce: "We have recently shown [7] how this analysis
leads to an abstract delay model for black boxes.  The delay model can be
accurate taking into account false paths, without giving the internal
details of the box."

This module implements that idea.  For one box (a combinational network),
the per-vector XBD0 stabilization time of an output is a **min-max-plus
expression** over the input arrival times:

    stab(z, x) = min over the satisfied primes (recursively)
                 of max over the prime's inputs of (arr(x_i) + offset)

The macro-model materializes, for every output, the map from input
vectors to their (pruned) min-max-plus expression — no gate-level detail
survives, yet the evaluation is *exact* for every combination of input
arrival times, false paths included.  Because per-vector stabilization
times compose across a cut, macro-models chain: the arrival times computed
for one box's outputs feed the next box's model, and the composition
equals flat whole-network analysis (tested against the ternary oracle).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ResourceLimitError, TimingError
from repro.network.network import Network
from repro.timing.delay import DelayModel, unit_delay

#: one max-alternative: arrival = max over (input, offset) of arr(input)+offset
Alternative = frozenset  # of (input_name, float offset)
#: a full expression: arrival = min over alternatives
Expression = frozenset  # of Alternative


def _prune(alternatives: set[Alternative]) -> Expression:
    """Drop alternatives that can never be the minimum.

    A dominates B when for every (x, o) in A there is (x, o') in B with
    o <= o' and A's support is a subset of B's — then max(A) <= max(B)
    for all arrivals, so B is redundant.
    """
    kept: list[Alternative] = []
    for alt in sorted(alternatives, key=len):
        dominated = False
        offsets = dict(alt)
        for other in kept:
            other_offsets = dict(other)
            if all(
                x in offsets and other_offsets[x] <= offsets[x]
                for x in other_offsets
            ):
                dominated = True
                break
        if not dominated:
            kept.append(alt)
    return frozenset(kept)


def _max_combine(parts: Sequence[Expression]) -> Expression:
    """max over sub-expressions: cross products of their alternatives."""
    result: set[Alternative] = {frozenset()}
    for expr in parts:
        new: set[Alternative] = set()
        for partial in result:
            for alt in expr:
                merged = dict(partial)
                for x, o in alt:
                    if merged.get(x, float("-inf")) < o:
                        merged[x] = o
                new.add(frozenset(merged.items()))
        result = new
        if len(result) > 256:
            result = set(_prune(result))
            if len(result) > 256:
                raise ResourceLimitError(
                    "macro-model expression exceeded 256 alternatives"
                )
    return _prune(result)


def _min_combine(parts: Sequence[Expression]) -> Expression:
    merged: set[Alternative] = set()
    for expr in parts:
        merged.update(expr)
    return _prune(merged)


def _shift(expr: Expression, delta: float) -> Expression:
    return frozenset(
        frozenset((x, o + delta) for x, o in alt) for alt in expr
    )


def evaluate_expression(
    expr: Expression, arrivals: Mapping[str, float]
) -> float:
    """min over alternatives of max over (input, offset)."""
    if not expr:
        raise TimingError("empty arrival expression")
    best = None
    for alt in expr:
        if alt:
            value = max(arrivals[x] + o for x, o in alt)
        else:
            value = 0.0  # constant cone: stabilizes after pure gate delay
        best = value if best is None else min(best, value)
    return best


@dataclass
class TimingMacroModel:
    """A false-path-exact black-box timing model of one network."""

    name: str
    inputs: list[str]
    outputs: list[str]
    #: per output: map input vector (bit tuple over `inputs`) -> expression
    expressions: dict[str, dict[tuple[int, ...], Expression]]
    #: the box's functionality (truth table per output), needed to chain
    #: vector-dependent models through a hierarchy
    truth: dict[str, dict[tuple[int, ...], int]]

    # ------------------------------------------------------------------
    @classmethod
    def extract(
        cls,
        network: Network,
        delays: DelayModel | None = None,
        max_inputs: int = 12,
    ) -> "TimingMacroModel":
        """Build the macro-model by per-vector min-max-plus recursion."""
        if len(network.inputs) > max_inputs:
            raise ResourceLimitError(
                f"{len(network.inputs)} inputs exceed max_inputs={max_inputs}"
            )
        delays = delays or unit_delay()
        expressions: dict[str, dict[tuple[int, ...], Expression]] = {
            o: {} for o in network.outputs
        }
        truth: dict[str, dict[tuple[int, ...], int]] = {
            o: {} for o in network.outputs
        }
        order = network.topological_order()
        for bits in itertools.product((0, 1), repeat=len(network.inputs)):
            env = dict(zip(network.inputs, bits))
            values = network.simulate(env)
            exprs: dict[str, Expression] = {}
            for name in order:
                node = network.nodes[name]
                if node.is_input:
                    exprs[name] = frozenset({frozenset({(name, 0.0)})})
                    continue
                value = int(values[name])
                onset_primes, offset_primes = node.primes()
                primes = onset_primes if value else offset_primes
                d = delays.of_value(name, value)
                options: list[Expression] = []
                for cube in primes:
                    # only primes satisfied by the final fanin values
                    # contribute (the per-vector χ semantics)
                    satisfied = True
                    parts: list[Expression] = []
                    for i, fanin in enumerate(node.fanins):
                        phase = cube.literal(i)
                        if phase is None:
                            continue
                        if int(values[fanin]) != phase:
                            satisfied = False
                            break
                        parts.append(exprs[fanin])
                    if not satisfied:
                        continue
                    options.append(_max_combine(parts))
                if not options:
                    raise TimingError(
                        f"no satisfied prime at node {name!r}; cover corrupt"
                    )
                exprs[name] = _shift(_min_combine(options), d)
            for o in network.outputs:
                expressions[o][bits] = exprs[o]
                truth[o][bits] = int(values[o])
        return cls(
            name=network.name,
            inputs=list(network.inputs),
            outputs=list(network.outputs),
            expressions=expressions,
            truth=truth,
        )

    # ------------------------------------------------------------------
    def arrival(
        self,
        output: str,
        input_vector: Mapping[str, int],
        input_arrivals: Mapping[str, float],
    ) -> float:
        """Exact XBD0 arrival of ``output`` for one vector and arbitrary
        input arrival times."""
        bits = tuple(int(input_vector[x]) for x in self.inputs)
        expr = self.expressions[output][bits]
        return evaluate_expression(
            expr, {x: float(input_arrivals.get(x, 0.0)) for x in self.inputs}
        )

    def value(self, output: str, input_vector: Mapping[str, int]) -> int:
        bits = tuple(int(input_vector[x]) for x in self.inputs)
        return self.truth[output][bits]

    def worst_arrival(
        self, output: str, input_arrivals: Mapping[str, float]
    ) -> float:
        """The box's exact delay at ``output`` under given input arrivals —
        the max over all input vectors."""
        arr = {x: float(input_arrivals.get(x, 0.0)) for x in self.inputs}
        return max(
            evaluate_expression(expr, arr)
            for expr in self.expressions[output].values()
        )

    def size(self) -> int:
        """Total number of stored (vector, alternative) atoms — the model's
        footprint, independent of the box's gate count."""
        return sum(
            len(alt)
            for per_output in self.expressions.values()
            for expr in per_output.values()
            for alt in expr
        )


def compose_arrivals(
    models: Sequence[TimingMacroModel],
    system_vector: Mapping[str, int],
    primary_arrivals: Mapping[str, float],
) -> dict[str, float]:
    """Chain macro-models in topological order (each model's inputs are
    primary inputs or outputs of earlier models); returns per-signal
    arrival times.  Per-vector stabilization times compose exactly across
    cuts, so this equals flat analysis of the merged network."""
    arrivals: dict[str, float] = dict(primary_arrivals)
    values: dict[str, int] = {k: int(v) for k, v in system_vector.items()}
    for model in models:
        missing = [x for x in model.inputs if x not in values]
        if missing:
            raise TimingError(
                f"model {model.name}: inputs {missing} not yet computed"
            )
        vector = {x: values[x] for x in model.inputs}
        for out in model.outputs:
            arrivals[out] = model.arrival(out, vector, arrivals)
            values[out] = model.value(out, vector)
    return arrivals
