"""The exact algorithm (Section 4.1): required times as a Boolean relation.

Construction:

1. enumerate the leaf χ variables (one fresh BDD variable per
   ⟨input, value, time⟩ triple),
2. build χ_{z,1}^T and χ_{z,0}^T over those unknowns with the symbolic χ
   recursion,
3. constrain them to equal the output onset/offset, conjoined with the
   subset-ordering chains  ∅ ⊆ χ_{x,v}^{t_1} ⊆ … ⊆ χ_{x,v}^{t_k} ⊆ literal,
4. the result F(X, χ_X) is the characteristic function of a Boolean
   relation: for every input minterm, the set of permissible stability
   vectors.

Queries on the relation reproduce the paper's Section 4.1 tables: full
per-minterm rows, the minimal-element (latest required time) sub-relation,
the required-time tuples, and a compatible function assignment (one
Boolean-unification solution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.bdd import BddManager, BddNode, create_manager, minimal_elements
from repro.bdd.reorder import sift
from repro.core.leaves import LeafTimes, enumerate_leaf_times
from repro.core.required_time import INF, RequiredTimeProfile
from repro.core.symbolic import SymbolicChi
from repro.errors import ResourceLimitError, TimingError
from repro.network.network import Network
from repro.network.verify import global_functions
from repro.obs.trace import span
from repro.timing.delay import DelayModel, unit_delay


@dataclass(frozen=True)
class LeafVar:
    """One leaf χ variable: χ_{input,value}^{time} as a BDD variable."""

    input: str
    value: int
    time: float
    var_name: str


@dataclass(frozen=True)
class ExactOptions:
    """Resource/search options of the exact relation construction.

    ``reorder`` mirrors the paper's §6 setup ("the exact algorithm was run
    with dynamic variable reordering being set"): automatic sifting while
    the relation is built, plus a final :func:`repro.bdd.reorder.sift`
    pass over the finished relation.  Exposed on the CLI as
    ``repro required --reorder``.
    """

    max_nodes: int | None = None
    reorder: bool = False
    max_leaves: int = 50_000
    #: BDD kernel selection (``object`` / ``array`` / ``native``);
    #: ``None`` defers to the ``REPRO_BDD_BACKEND`` environment default.
    #: See :mod:`repro.bdd.api` and docs/BDD_BACKENDS.md.
    backend: str | None = None

    def __post_init__(self) -> None:
        # unknown names fail at option-construction time with the same
        # BddError message every other entry point (CLI, eco, serve)
        # raises — not later, deep inside manager creation
        if self.backend is not None:
            from repro.bdd.api import resolve_backend

            resolve_backend(self.backend)

    def kwargs(self) -> dict:
        return {
            "max_nodes": self.max_nodes,
            "reorder": self.reorder,
            "max_leaves": self.max_leaves,
            "backend": self.backend,
        }


class ExactAnalysis:
    """Builds the exact Boolean relation for one network."""

    def __init__(
        self,
        network: Network,
        delays: DelayModel | None = None,
        output_required: Mapping[str, float] | float = 0.0,
        manager: BddManager | None = None,
        max_nodes: int | None = None,
        reorder: bool = False,
        max_leaves: int = 50_000,
        output_dc: Mapping[str, object] | None = None,
        options: ExactOptions | None = None,
        backend: str | None = None,
    ):
        if options is not None:
            max_nodes = options.max_nodes
            reorder = options.reorder
            max_leaves = options.max_leaves
            backend = options.backend
        self.network = network
        self.delays = delays or unit_delay()
        self.output_required = output_required
        #: footnote 3 extension: per-output don't-care sets (a
        #: :class:`repro.sop.Cover` over the primary inputs, in
        #: ``network.inputs`` column order).  On don't-care vectors no
        #: stability is demanded at all, which enlarges the relation.
        self.output_dc = dict(output_dc or {})
        with span("exact.enumerate_leaves", circuit=network.name):
            self.leaves: LeafTimes = enumerate_leaf_times(
                network, self.delays, output_required, max_leaves=max_leaves
            )
        # ``reorder`` mirrors the paper's setup ("the exact algorithm was
        # run with dynamic variable reordering being set"): sifting kicks
        # in automatically while the relation is being built.
        self.manager = manager or create_manager(
            backend,
            max_nodes=max_nodes,
            auto_reorder=reorder,
            reorder_threshold=50_000,
        )
        self.reorder = reorder
        self._relation: ExactRelation | None = None

    def relation(self) -> "ExactRelation":
        if self._relation is not None:
            return self._relation
        with span("exact.build_relation", circuit=self.network.name) as sp:
            relation = self._build_relation()
            sp.set(
                leaf_vars=len(relation.leaf_vars),
                relation_nodes=self.manager.size(relation.F),
            )
        return relation

    def _build_relation(self) -> "ExactRelation":
        m = self.manager
        net = self.network

        # Interleave each primary-input variable with its own leaf
        # variables: the relation couples an input only with its own χ
        # chain and its cluster's neighbors, so this order keeps the
        # constraint BDDs local (the all-X-then-all-leaves order exhibits
        # the classical interleaving blowup on clustered circuits).
        leaf_vars: list[LeafVar] = []
        leaf_index: dict[tuple[str, int, float], LeafVar] = {}
        for pi in net.inputs:
            if not m.has_var(pi):
                m.add_var(pi)
            for value, table in ((1, self.leaves.for_one), (0, self.leaves.for_zero)):
                for t in table.get(pi, ()):
                    name = f"chi[{pi},{value},{t:g}]"
                    if not m.has_var(name):
                        m.add_var(name)
                    lv = LeafVar(pi, value, t, name)
                    leaf_vars.append(lv)
                    leaf_index[(pi, value, t)] = lv

        def leaf_fn(name: str, value: int, t: float) -> BddNode:
            lv = leaf_index.get((name, value, t))
            if lv is None:
                raise TimingError(
                    f"χ recursion visited unenumerated leaf ({name},{value},{t})"
                )
            return m.var(lv.var_name)

        chi = SymbolicChi(net, m, leaf_fn, self.delays)

        # required times per output
        if isinstance(self.output_required, Mapping):
            req = {o: float(t) for o, t in self.output_required.items()}
        else:
            req = {o: float(self.output_required) for o in net.outputs}

        with span("exact.global_functions"):
            onsets = global_functions(net, m)

        def maybe_gc() -> None:
            # safe point between top-level operations: every needed node is
            # protected by a BddNode wrapper (relation, onsets, χ memo), so
            # construction garbage can be reclaimed against the budget
            threshold = (
                self.manager.max_nodes // 2
                if self.manager.max_nodes
                else 500_000
            )
            if m.num_nodes > threshold:
                m.garbage_collect()

        constraints: list[BddNode] = []
        with span("exact.output_constraints", outputs=len(req)):
            for out, t in req.items():
                on = onsets[out]
                one_ok = chi.chi(out, 1, t).equiv(on)
                zero_ok = chi.chi(out, 0, t).equiv(~on)
                dc_cover = self.output_dc.get(out)
                if dc_cover is not None:
                    from repro.network.verify import _cover_bdd

                    dc = _cover_bdd(m, dc_cover, [m.var(pi) for pi in net.inputs])
                    care = ~dc
                    constraints.append(care.implies(one_ok))
                    constraints.append(care.implies(zero_ok))
                else:
                    constraints.append(one_ok)
                    constraints.append(zero_ok)
                maybe_gc()

        # ordering chains and literal bounds (balanced conjunction per
        # input keeps the intermediate relation BDDs from going lopsided)
        with span("exact.chain_constraints", inputs=len(net.inputs)):
            for pi in net.inputs:
                chain_constraints: list[BddNode] = []
                for value, table in ((1, self.leaves.for_one), (0, self.leaves.for_zero)):
                    times = table.get(pi, ())
                    bound = m.var(pi) if value else m.nvar(pi)
                    prev: BddNode | None = None
                    for t in times:  # ascending
                        cur = m.var(leaf_index[(pi, value, t)].var_name)
                        if prev is not None:
                            chain_constraints.append(prev.implies(cur))
                        prev = cur
                    if prev is not None:
                        chain_constraints.append(prev.implies(bound))
                if chain_constraints:
                    constraints.append(m.conjoin(chain_constraints))
                maybe_gc()

        # Balanced pairwise reduction over *handles*, with a GC safe point
        # between rounds: the handles of a finished round are dropped as the
        # list is rebuilt, so intermediate products are reclaimable instead
        # of pinning the unique table for the whole construction.
        with span("exact.conjoin", constraints=len(constraints)):
            while len(constraints) > 1:
                nxt: list[BddNode] = []
                for i in range(0, len(constraints) - 1, 2):
                    nxt.append(constraints[i] & constraints[i + 1])
                if len(constraints) % 2:
                    nxt.append(constraints[-1])
                constraints = nxt
                maybe_gc()
            relation = constraints[0] if constraints else m.true

        if self.reorder:
            with span("exact.reorder"):
                sift(m)

        self._relation = ExactRelation(
            manager=m,
            network=net,
            relation_bdd=relation,
            leaf_vars=leaf_vars,
            output_required=req,
        )
        return self._relation


class ExactRelation:
    """The relation F(X, χ_X) = 1 with the paper's query surface."""

    def __init__(
        self,
        manager: BddManager,
        network: Network,
        relation_bdd: BddNode,
        leaf_vars: list[LeafVar],
        output_required: dict[str, float],
    ):
        self.manager = manager
        self.network = network
        self.F = relation_bdd
        self.leaf_vars = leaf_vars
        self.output_required = output_required

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_leaf_variables(self) -> int:
        return len(self.leaf_vars)

    @property
    def leaf_var_names(self) -> list[str]:
        return [lv.var_name for lv in self.leaf_vars]

    def _restrict_to_minterm(self, minterm: Mapping[str, int]) -> BddNode:
        missing = set(self.network.inputs) - set(minterm)
        if missing:
            raise TimingError(f"minterm missing inputs {sorted(missing)}")
        return self.manager.restrict(
            self.F, {x: int(minterm[x]) for x in self.network.inputs}
        )

    # ------------------------------------------------------------------
    # relation rows (the paper's Section 4.1 tables)
    # ------------------------------------------------------------------
    def rows(self, minterm: Mapping[str, int]) -> set[str]:
        """All permissible stability vectors at one input minterm, rendered
        as bit strings in ``leaf_vars`` order (the paper's table format)."""
        restricted = self._restrict_to_minterm(minterm)
        result = set()
        names = self.leaf_var_names
        for sol in self.manager.sat_iter(restricted, names):
            result.add("".join(str(sol[n]) for n in names))
        return result

    def minimal_rows(self, minterm: Mapping[str, int]) -> set[str]:
        """The minimal elements: the latest-required-time sub-relation."""
        restricted = self._restrict_to_minterm(minterm)
        with span("exact.minimal_elements"):
            minimal = minimal_elements(restricted, self.leaf_var_names)
        names = self.leaf_var_names
        result = set()
        for sol in self.manager.sat_iter(minimal, names):
            result.add("".join(str(sol[n]) for n in names))
        return result

    def required_tuples(
        self, minterm: Mapping[str, int]
    ) -> set[RequiredTimeProfile]:
        """The latest required-time tuples at one minterm.

        For each minimal row, the required time of input x (whose value in
        the minterm is b) is the earliest t with χ_{x,b}^t = 1; ``INF`` when
        no stability is demanded.
        """
        profiles = set()
        for row in self.minimal_rows(minterm):
            bits = dict(zip(self.leaf_var_names, row))
            times: dict[str, tuple[float, float]] = {}
            for x in self.network.inputs:
                b = int(minterm[x])
                demanded = [
                    lv.time
                    for lv in self.leaf_vars
                    if lv.input == x and lv.value == b and bits[lv.var_name] == "1"
                ]
                req = min(demanded) if demanded else INF
                times[x] = (req, INF) if b == 0 else (INF, req)
            profiles.add(RequiredTimeProfile.from_dict(times))
        return profiles

    # ------------------------------------------------------------------
    # non-triviality
    # ------------------------------------------------------------------
    def topological_assignment(self) -> BddNode:
        """The BDD forcing every leaf χ variable to its literal bound — the
        assignment corresponding to topological required times (footnote 4
        of the paper: 'pick the last output pattern for each minterm')."""
        m = self.manager
        return m.conjoin(
            [
                m.var(lv.var_name).equiv(
                    m.var(lv.input) if lv.value else m.nvar(lv.input)
                )
                for lv in self.leaf_vars
            ]
        )

    def contains_topological(self) -> bool:
        """Sanity invariant: the topological assignment is always in F."""
        # ∀vars.(topo → F), fused: true iff topo ∧ ¬F is empty
        m = self.manager
        topo = self.topological_assignment()
        return m.forall_implied(m.var_names, topo, self.F).is_true

    def nontrivial(self) -> bool:
        """Some permissible row differs from the topological one, i.e. the
        relation encodes a strictly looser requirement somewhere."""
        # ∃vars.(F ∧ ¬topo), fused: the conjunction BDD is never built
        m = self.manager
        with span("exact.nontrivial"):
            topo = self.topological_assignment()
            return m.and_exists(m.var_names, self.F, ~topo).is_true

    # ------------------------------------------------------------------
    # compatible-function extraction (Boolean unification)
    # ------------------------------------------------------------------
    def choose_compatible(self, max_inputs: int = 14) -> dict[str, BddNode]:
        """One function assignment to the leaf χ variables compatible with F.

        Picks, per input minterm, the lexicographically smallest minimal
        row, and assembles each leaf variable's function of X as the union
        of the minterms where its bit is 1.  Exponential in |X|; guarded by
        ``max_inputs``.
        """
        inputs = self.network.inputs
        if len(inputs) > max_inputs:
            raise ResourceLimitError(
                f"compatible extraction over {len(inputs)} inputs exceeds "
                f"max_inputs={max_inputs}"
            )
        m = self.manager
        chosen: dict[str, BddNode] = {
            lv.var_name: m.false for lv in self.leaf_vars
        }
        import itertools

        for bits in itertools.product((0, 1), repeat=len(inputs)):
            minterm = dict(zip(inputs, bits))
            rows = self.minimal_rows(minterm)
            if not rows:
                raise TimingError(
                    f"relation empty at minterm {minterm}: inconsistent constraints"
                )
            row = min(rows)
            cube = m.from_cube(minterm)
            for name, bit in zip(self.leaf_var_names, row):
                if bit == "1":
                    chosen[name] = chosen[name] | cube
        return chosen

    def verify_assignment(self, assignment: Mapping[str, BddNode]) -> bool:
        """Check a leaf-function assignment satisfies F for every minterm."""
        m = self.manager
        ok = self.F
        # substitute each leaf variable with its function
        for name, func in assignment.items():
            ok = m.compose(ok, name, func)
        return ok.is_true
