"""Enumeration of leaf χ variables and of the required-time lattice.

Running the χ recursion backward from each primary output at its required
time touches, at every primary input x, a finite set of times for value 1
(t_1 < … < t_{p_x}) and for value 0 (t'_1 < … < t'_{q_x}).  These are the
paper's *leaf χ variables* (Section 4): the unknowns of the exact Boolean
relation, the chain lengths of the α/β parameterization, and — merged per
input — the axes R_i of approximate approach 2's candidate lattice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ResourceLimitError, TimingError
from repro.network.network import Network
from repro.timing.delay import DelayModel, unit_delay


@dataclass
class LeafTimes:
    """The leaf χ variable inventory of one analysis problem."""

    #: per input: sorted times at which χ_{x,1}^t is referenced
    for_one: dict[str, list[float]] = field(default_factory=dict)
    #: per input: sorted times at which χ_{x,0}^t is referenced
    for_zero: dict[str, list[float]] = field(default_factory=dict)
    #: per *internal or input* node: every (value, time) pair the recursion
    #: visits — useful for cost prediction and clustering ablations
    visited: set[tuple[str, int, float]] = field(default_factory=set)

    def merged(self, name: str) -> list[float]:
        """R_i of approach 2: all times for either value, sorted."""
        times = set(self.for_one.get(name, ())) | set(self.for_zero.get(name, ()))
        return sorted(times)

    def num_leaf_variables(self) -> int:
        """How many Boolean variables the exact encoding introduces."""
        return sum(len(v) for v in self.for_one.values()) + sum(
            len(v) for v in self.for_zero.values()
        )

    def lattice_size(self) -> int:
        """|R| = ∏ |R_i| of the approach-2 candidate lattice."""
        size = 1
        for name in set(self.for_one) | set(self.for_zero):
            size *= max(1, len(self.merged(name)))
        return size


def enumerate_leaf_times(
    network: Network,
    delays: DelayModel | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    max_leaves: int = 100_000,
) -> LeafTimes:
    """Walk the χ recursion symbolically and record every leaf reference.

    ``output_required`` is a scalar applied to every primary output or a
    per-output mapping (the paper's experiments use 0 everywhere).
    ``max_leaves`` bounds the traversal — reconvergence can multiply the
    number of ⟨node, value, time⟩ triples, which is exactly the blowup the
    paper reports for the exact method on large circuits.
    """
    delays = delays or unit_delay()
    if isinstance(output_required, Mapping):
        req = {o: float(t) for o, t in output_required.items()}
        missing = set(network.outputs) - set(req)
        if missing:
            raise TimingError(f"missing required times for outputs {sorted(missing)}")
    else:
        req = {o: float(output_required) for o in network.outputs}

    result = LeafTimes()
    input_set = set(network.inputs)
    visited: set[tuple[str, int, float]] = set()
    stack: list[tuple[str, int, float]] = []
    for out, t in req.items():
        stack.append((out, 1, t))
        stack.append((out, 0, t))

    ones: dict[str, set[float]] = {}
    zeros: dict[str, set[float]] = {}

    while stack:
        key = stack.pop()
        if key in visited:
            continue
        visited.add(key)
        if len(visited) > max_leaves:
            raise ResourceLimitError(
                f"leaf enumeration exceeded {max_leaves} (node, value, time) triples"
            )
        name, value, t = key
        if name in input_set:
            bucket = ones if value else zeros
            bucket.setdefault(name, set()).add(t)
            continue
        node = network.node(name)
        onset_primes, offset_primes = node.primes()
        primes = onset_primes if value else offset_primes
        t_in = t - delays.of_value(name, value)
        for cube in primes:
            for i, fanin in enumerate(node.fanins):
                phase = cube.literal(i)
                if phase is None:
                    continue
                stack.append((fanin, phase, t_in))

    result.for_one = {n: sorted(ts) for n, ts in ones.items()}
    result.for_zero = {n: sorted(ts) for n, ts in zeros.items()}
    result.visited = visited
    return result
