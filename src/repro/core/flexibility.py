"""Section 5: timing flexibility of subcircuits.

Given a network N with a subcircuit boundary (inputs U, outputs V), the
timing specification handed to a resynthesis tool is

* **arrival flexibility at U** (Section 5.1) — computed on N_FI, the
  transitive fanin of U: for each vector at U, the set of (maximal)
  arrival-time tuples the environment can present, including the (∞,…,∞)
  rows for unreachable vectors (satisfiability don't cares);
* **required flexibility at V** (Section 5.2) — computed on N_FO, N with V
  relabeled as primary inputs, with the Section 4 machinery; inputs of
  N_FO that are original primary inputs keep their known arrival times
  (no leaf variables are introduced for them);
* optionally the **coupled analysis** of Section 5.3 when the subcircuit's
  function is preserved: arrival and required times indexed by the full
  primary-input vector.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.bdd import BddManager, BddNode, create_manager, minimal_elements
from repro.core.leaves import enumerate_leaf_times
from repro.core.required_time import INF, RequiredTimeProfile
from repro.core.symbolic import SymbolicChi
from repro.errors import ResourceLimitError, TimingError
from repro.network.network import Network
from repro.network.transform import fanin_network, fanout_network
from repro.network.verify import global_functions
from repro.timing.chi import ChiEngine, candidate_times
from repro.timing.delay import DelayModel, unit_delay


@dataclass
class ArrivalFlexibility:
    """Section 5.1 result: arrival-time behaviors at the subcircuit inputs.

    ``table[u_vector]`` is the list of maximal arrival tuples (one float
    per subcircuit input, in ``boundary`` order) that the environment can
    exhibit while driving that vector; ``[(inf, …, inf)]`` marks vectors
    the environment never produces (satisfiability don't cares).
    """

    boundary: list[str]
    table: dict[tuple[int, ...], list[tuple[float, ...]]]

    def rows(self) -> list[tuple[tuple[int, ...], list[tuple[float, ...]]]]:
        return sorted(self.table.items())

    def is_dont_care(self, u_vector: tuple[int, ...]) -> bool:
        entry = self.table[u_vector]
        return len(entry) == 1 and all(math.isinf(t) for t in entry[0])


def arrival_flexibility(
    network: Network,
    boundary: Sequence[str],
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
    max_boundary: int = 12,
) -> ArrivalFlexibility:
    """Compute the Section 5.1 arrival-time table at a subcircuit boundary.

    Exact over the primary-input space via χ̃ functions on N_FI; the final
    fold onto boundary vectors drops strictly-earlier (dominated) tuples,
    per the paper's footnote 11 (synthesis must assume the worst case).
    """
    boundary = list(boundary)
    if len(boundary) > max_boundary:
        raise ResourceLimitError(
            f"boundary of {len(boundary)} signals exceeds max_boundary="
            f"{max_boundary} (the fold enumerates 2^|U| vectors)"
        )
    delays = delays or unit_delay()
    nfi = fanin_network(network, boundary)
    relevant_arrivals = {
        pi: t for pi, t in (input_arrivals or {}).items() if pi in set(nfi.inputs)
    }
    engine = ChiEngine(nfi, delays, relevant_arrivals)
    input_arrivals = relevant_arrivals
    m = engine.manager

    # per boundary signal: its candidate arrival moments and the partition
    # {S_1, ..., S_l} of the input space by first-stable time
    cands = candidate_times(nfi, delays, input_arrivals)
    partitions: dict[str, list[tuple[float, BddNode]]] = {}
    for u in boundary:
        classes: list[tuple[float, BddNode]] = []
        prev = m.false
        for t in cands[u]:
            cur = engine.stable(u, t)
            cls = cur & ~prev
            if not cls.is_false:
                classes.append((t, cls))
            prev = cur
        if not prev.is_true:
            raise TimingError(
                f"signal {u!r} not stable at its topological delay"
            )
        partitions[u] = classes

    funcs = global_functions(nfi, m)

    table: dict[tuple[int, ...], list[tuple[float, ...]]] = {}
    for bits in itertools.product((0, 1), repeat=len(boundary)):
        preimage = m.true
        for u, b in zip(boundary, bits):
            preimage = preimage & (funcs[u] if b else ~funcs[u])
        if preimage.is_false:
            table[bits] = [tuple(INF for _ in boundary)]
            continue
        tuples: set[tuple[float, ...]] = set()
        _collect_tuples(m, preimage, boundary, partitions, 0, [], tuples)
        table[bits] = _maximal_tuples(tuples)
    return ArrivalFlexibility(boundary=boundary, table=table)


def _collect_tuples(m, region, boundary, partitions, idx, prefix, out) -> None:
    """Recursively intersect partition classes to enumerate arrival tuples."""
    if region.is_false:
        return
    if idx == len(boundary):
        out.add(tuple(prefix))
        return
    u = boundary[idx]
    for t, cls in partitions[u]:
        _collect_tuples(
            m, region & cls, boundary, partitions, idx + 1, prefix + [t], out
        )


def _maximal_tuples(tuples: set[tuple[float, ...]]) -> list[tuple[float, ...]]:
    """Drop tuples strictly dominated by (i.e. everywhere ≤) another —
    footnote 11: synthesis is performed under the worst case."""
    result = []
    for t in tuples:
        if not any(
            o != t and all(a <= b for a, b in zip(t, o)) for o in tuples
        ):
            result.append(t)
    return sorted(result)


# ----------------------------------------------------------------------
# Section 5.2: required times at subcircuit outputs
# ----------------------------------------------------------------------


@dataclass
class RequiredFlexibility:
    """Required-time relation at subcircuit outputs V.

    ``per_vector[v_vector]`` is the set of latest required-time profiles
    over the V signals valid for *every* assignment of the remaining
    (known-arrival) primary inputs — the fold of the exact relation G =
    ∀X.F onto the boundary.  An **empty** profile set for a vector means
    the output requirement is infeasible for that boundary value no matter
    how early V stabilizes (e.g. the required time is below the delay of
    logic fed by the known-arrival inputs alone).
    """

    boundary: list[str]
    per_vector: dict[tuple[int, ...], set[RequiredTimeProfile]]

    def rows(self):
        return sorted(self.per_vector.items())


def _boundary_relation(
    network: Network,
    boundary: list[str],
    delays: DelayModel,
    output_required: Mapping[str, float] | float,
    input_arrivals: Mapping[str, float] | None,
    manager: BddManager | None,
    max_nodes: int | None,
):
    """Build the exact Section 4.1 relation on N_FO with leaf χ variables
    only at the boundary (known-arrival inputs keep concrete leaves).

    Returns ``(manager, relation_bdd, leaf_order, nfo, known_inputs)``
    where ``leaf_order`` is a list of (signal, value, time, var_name).
    """
    nfo = fanout_network(network, boundary)
    known_inputs = [pi for pi in nfo.inputs if pi not in boundary]
    arrivals = {pi: float((input_arrivals or {}).get(pi, 0.0)) for pi in known_inputs}

    leaves = enumerate_leaf_times(nfo, delays, output_required)
    m = manager or create_manager(max_nodes=max_nodes)
    for pi in nfo.inputs:
        if not m.has_var(pi):
            m.add_var(pi)

    leaf_index: dict[tuple[str, int, float], str] = {}
    leaf_order: list[tuple[str, int, float, str]] = []
    for v in boundary:
        for value, table in ((1, leaves.for_one), (0, leaves.for_zero)):
            for t in table.get(v, ()):
                name = f"chi[{v},{value},{t:g}]"
                if not m.has_var(name):
                    m.add_var(name)
                leaf_index[(v, value, t)] = name
                leaf_order.append((v, value, t, name))

    def leaf_fn(name: str, value: int, t: float) -> BddNode:
        if name in arrivals:  # known-arrival primary input
            if t >= arrivals[name]:
                return m.var(name) if value else m.nvar(name)
            return m.false
        key = (name, value, t)
        if key not in leaf_index:
            raise TimingError(f"unenumerated boundary leaf {key}")
        return m.var(leaf_index[key])

    chi = SymbolicChi(nfo, m, leaf_fn, delays)

    if isinstance(output_required, Mapping):
        req = {o: float(t) for o, t in output_required.items()}
    else:
        req = {o: float(output_required) for o in nfo.outputs}

    onsets = global_functions(nfo, m)
    relation = m.true
    for out, t in req.items():
        on = onsets[out]
        relation = relation & chi.chi(out, 1, t).equiv(on)
        relation = relation & chi.chi(out, 0, t).equiv(~on)

    # ordering chains / bounds for the boundary leaves
    for v in boundary:
        for value, table in ((1, leaves.for_one), (0, leaves.for_zero)):
            times = table.get(v, ())
            bound = m.var(v) if value else m.nvar(v)
            prev: BddNode | None = None
            for t in times:
                cur = m.var(leaf_index[(v, value, t)])
                if prev is not None:
                    relation = relation & prev.implies(cur)
                prev = cur
            if prev is not None:
                relation = relation & prev.implies(bound)

    return m, relation, leaf_order, nfo, known_inputs


def _profiles_from_restricted(
    m: BddManager,
    restricted: BddNode,
    boundary: list[str],
    bits: tuple[int, ...],
    leaf_order,
) -> set[RequiredTimeProfile]:
    """Minimal elements of a relation slice, read as required-time profiles."""
    leaf_names = [name for *_, name in leaf_order]
    if restricted.is_false:
        return set()
    minimal = minimal_elements(restricted, leaf_names)
    profiles: set[RequiredTimeProfile] = set()
    for sol in m.sat_iter(minimal, leaf_names):
        times: dict[str, tuple[float, float]] = {}
        for v, b in zip(boundary, bits):
            demanded = [
                t
                for (sig, value, t, name) in leaf_order
                if sig == v and value == b and sol[name] == 1
            ]
            r = min(demanded) if demanded else INF
            times[v] = (r, INF) if b == 0 else (INF, r)
        profiles.add(RequiredTimeProfile.from_dict(times))
    return profiles


def required_flexibility(
    network: Network,
    boundary: Sequence[str],
    delays: DelayModel | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    input_arrivals: Mapping[str, float] | None = None,
    max_boundary: int = 10,
    manager: BddManager | None = None,
    max_nodes: int | None = None,
) -> RequiredFlexibility:
    """Compute the Section 5.2 required-time relation at boundary V.

    Builds N_FO (V relabeled as primary inputs), runs the exact Section 4.1
    construction with leaf χ variables only at V (the original primary
    inputs keep their known arrival times), universally quantifies the
    known inputs, and extracts the latest required times per V vector.
    """
    boundary = list(boundary)
    if len(boundary) > max_boundary:
        raise ResourceLimitError(
            f"boundary of {len(boundary)} signals exceeds max_boundary={max_boundary}"
        )
    delays = delays or unit_delay()
    m, relation, leaf_order, _nfo, known_inputs = _boundary_relation(
        network, boundary, delays, output_required, input_arrivals, manager, max_nodes
    )

    # fold over the known inputs: the requirement must be safe for all X
    folded = m.forall(known_inputs, relation) if known_inputs else relation

    per_vector: dict[tuple[int, ...], set[RequiredTimeProfile]] = {}
    for bits in itertools.product((0, 1), repeat=len(boundary)):
        restricted = m.restrict(folded, dict(zip(boundary, bits)))
        per_vector[bits] = _profiles_from_restricted(
            m, restricted, boundary, bits, leaf_order
        )
    return RequiredFlexibility(boundary=boundary, per_vector=per_vector)


@dataclass
class CoupledRow:
    """One primary-input minterm of the Section 5.3 coupled analysis."""

    x_vector: tuple[int, ...]
    u_arrivals: tuple[float, ...]
    v_vector: tuple[int, ...]
    required: set[RequiredTimeProfile]


@dataclass
class CoupledFlexibility:
    """Section 5.3: arrival and required times coupled through X.

    When the subcircuit's functionality is preserved by resynthesis, both
    sides of the timing specification can be indexed by the primary-input
    vector: one arrival tuple at U and the latest required-time profiles
    at V per minterm.  This is strictly more accurate than the decoupled
    Section 5.1/5.2 tables.
    """

    inputs: list[str]
    sub_inputs: list[str]
    sub_outputs: list[str]
    rows: list[CoupledRow]

    def row_for(self, x_vector: tuple[int, ...]) -> CoupledRow:
        for row in self.rows:
            if row.x_vector == x_vector:
                return row
        raise TimingError(f"no row for input vector {x_vector}")


def coupled_flexibility(
    network: Network,
    sub_inputs: Sequence[str],
    sub_outputs: Sequence[str],
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    max_inputs: int = 10,
    max_boundary: int = 10,
) -> CoupledFlexibility:
    """The Section 5.3 analysis: per primary-input vector, the arrival
    tuple at the subcircuit inputs and the required-time profiles at its
    outputs.  Exponential in |X| (guarded by ``max_inputs``) — the paper's
    accuracy/cost endpoint."""
    sub_inputs = list(sub_inputs)
    sub_outputs = list(sub_outputs)
    if len(network.inputs) > max_inputs:
        raise ResourceLimitError(
            f"{len(network.inputs)} primary inputs exceed max_inputs={max_inputs}"
        )
    if len(sub_outputs) > max_boundary:
        raise ResourceLimitError(
            f"boundary of {len(sub_outputs)} signals exceeds max_boundary={max_boundary}"
        )
    delays = delays or unit_delay()

    # arrival side: kept in terms of X (no folding onto U vectors)
    nfi = fanin_network(network, sub_inputs)
    relevant_arrivals = {
        pi: t
        for pi, t in (input_arrivals or {}).items()
        if pi in set(nfi.inputs)
    }
    eng = ChiEngine(nfi, delays, relevant_arrivals)
    cands = candidate_times(nfi, delays, relevant_arrivals)
    stables = {
        u: [(t, eng.stable(u, t)) for t in cands[u]] for u in sub_inputs
    }

    # required side: the boundary relation, restricted per X minterm
    m, relation, leaf_order, _nfo, known_inputs = _boundary_relation(
        network, sub_outputs, delays, output_required, input_arrivals, None, None
    )

    funcs = global_functions(network)
    fm = funcs[network.outputs[0]].manager if network.outputs else None

    rows: list[CoupledRow] = []
    for bits in itertools.product((0, 1), repeat=len(network.inputs)):
        env = dict(zip(network.inputs, bits))
        values = network.simulate(env)
        # arrival tuple at U for this minterm
        u_tuple = []
        for u in sub_inputs:
            arr = INF
            for t, stable in stables[u]:
                if eng.manager.evaluate(stable, {k: env[k] for k in nfi.inputs}):
                    arr = t
                    break
            u_tuple.append(arr)
        v_bits = tuple(int(values[v]) for v in sub_outputs)
        # restrict the relation to this minterm: boundary values plus the
        # known-arrival inputs present in N_FO
        assignment = {pi: env[pi] for pi in known_inputs}
        assignment.update(dict(zip(sub_outputs, v_bits)))
        restricted = m.restrict(relation, assignment)
        profiles = _profiles_from_restricted(
            m, restricted, sub_outputs, v_bits, leaf_order
        )
        rows.append(
            CoupledRow(
                x_vector=bits,
                u_arrivals=tuple(u_tuple),
                v_vector=v_bits,
                required=profiles,
            )
        )
    return CoupledFlexibility(
        inputs=list(network.inputs),
        sub_inputs=sub_inputs,
        sub_outputs=sub_outputs,
        rows=rows,
    )


# ----------------------------------------------------------------------
# combined facade
# ----------------------------------------------------------------------


@dataclass
class SubcircuitTiming:
    """The full Section 5 timing specification of one subcircuit."""

    sub_inputs: list[str]
    sub_outputs: list[str]
    arrivals: ArrivalFlexibility
    required: RequiredFlexibility


def subcircuit_timing(
    network: Network,
    sub_inputs: Sequence[str],
    sub_outputs: Sequence[str],
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    **limits,
) -> SubcircuitTiming:
    """Arrival flexibility at U and required flexibility at V in one call."""
    return SubcircuitTiming(
        sub_inputs=list(sub_inputs),
        sub_outputs=list(sub_outputs),
        arrivals=arrival_flexibility(
            network,
            sub_inputs,
            delays,
            input_arrivals,
            **{k: v for k, v in limits.items() if k == "max_boundary"},
        ),
        required=required_flexibility(
            network,
            sub_outputs,
            delays,
            output_required,
            input_arrivals,
            **{k: v for k, v in limits.items() if k in ("max_boundary", "max_nodes")},
        ),
    )
