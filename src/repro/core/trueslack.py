"""True (false-path aware) slack of gate outputs.

Section 3 of the paper: "An interesting subproblem of this application is
to compute the true slack of a gate output, where the slack is calculated
by taking false path effects into account."

For an internal node n,

* the **true arrival** is the exact XBD0 arrival time of n computed on
  its transitive-fanin network (forward functional analysis),
* the **true required time** is the latest arrival time of n — treated as
  a primary input of the fanout network N_FO — under which every primary
  output still meets its required time (a one-axis instance of the
  approximate-2 lattice search, solved by binary search since validity is
  downward closed),
* the **true slack** is their difference.

Topological slack underestimates this whenever the paths that determine
the node's topological arrival or required time are false.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping, Sequence

from repro.core.leaves import enumerate_leaf_times
from repro.errors import TimingError
from repro.network.network import Network
from repro.network.transform import fanin_network, fanout_network
from repro.timing.delay import DelayModel, unit_delay
from repro.timing.functional import FunctionalTiming
from repro.timing.topological import arrival_times, required_times


@dataclass
class SlackReport:
    """Topological vs false-path-aware timing of one node."""

    node: str
    topo_arrival: float
    topo_required: float
    true_arrival: float
    true_required: float

    @property
    def topo_slack(self) -> float:
        return self.topo_required - self.topo_arrival

    @property
    def true_slack(self) -> float:
        return self.true_required - self.true_arrival

    @property
    def slack_recovered(self) -> float:
        """How much pessimism false-path analysis removed."""
        return self.true_slack - self.topo_slack


def true_slack(
    network: Network,
    node: str,
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    engine: Literal["bdd", "sat"] = "bdd",
) -> SlackReport:
    """The false-path-aware slack of one internal node."""
    delays = delays or unit_delay()
    n = network.node(node)
    if n.is_input:
        raise TimingError(f"{node!r} is a primary input; cut it differently")

    topo_arr = arrival_times(network, delays, input_arrivals)[node]
    topo_req = required_times(network, delays, output_required)[node]

    # forward: exact arrival on the fanin cone
    nfi = fanin_network(network, [node])
    fi_arrivals = {
        pi: t for pi, t in (input_arrivals or {}).items() if pi in set(nfi.inputs)
    }
    ft_in = FunctionalTiming(nfi, delays, fi_arrivals, engine=engine)
    t_arrival = ft_in.true_arrival(node)

    # backward: latest safe arrival of the node in N_FO
    t_required = _true_required(
        network, node, delays, input_arrivals, output_required, engine
    )

    return SlackReport(
        node=node,
        topo_arrival=topo_arr,
        topo_required=topo_req,
        true_arrival=t_arrival,
        true_required=t_required,
    )


def _true_required(
    network: Network,
    node: str,
    delays: DelayModel,
    input_arrivals: Mapping[str, float] | None,
    output_required: Mapping[str, float] | float,
    engine: Literal["bdd", "sat"],
) -> float:
    nfo = fanout_network(network, [node])
    if isinstance(output_required, Mapping):
        req = {o: float(output_required[o]) for o in nfo.outputs}
    else:
        req = {o: float(output_required) for o in nfo.outputs}

    leaves = enumerate_leaf_times(nfo, delays, req)
    axis = leaves.merged(node)
    if not axis:
        return math.inf  # the node never constrains any output

    base_arrivals = {
        pi: float((input_arrivals or {}).get(pi, 0.0))
        for pi in nfo.inputs
        if pi != node
    }

    def valid(r: float) -> bool:
        arrivals = dict(base_arrivals)
        arrivals[node] = r
        ft = FunctionalTiming(nfo, delays, arrivals, engine=engine)
        return ft.all_stable_by(req)

    if not valid(axis[0]):
        raise TimingError(
            f"even the topological requirement at {node!r} fails; the "
            "output required times are infeasible under the given arrivals"
        )
    # validity is downward closed along the axis: binary search the frontier
    lo, hi = 0, len(axis) - 1
    if valid(axis[hi]):
        # even the latest candidate is safe: check unbounded looseness by
        # probing one step beyond the axis
        if valid(axis[hi] + 1.0):
            return math.inf
        return axis[hi]
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if valid(axis[mid]):
            lo = mid
        else:
            hi = mid
    return axis[lo]


def true_slacks(
    network: Network,
    nodes: Sequence[str] | None = None,
    delays: DelayModel | None = None,
    input_arrivals: Mapping[str, float] | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    engine: Literal["bdd", "sat"] = "bdd",
) -> dict[str, SlackReport]:
    """Slack reports for several nodes (default: every internal node that
    is not itself a primary output)."""
    if nodes is None:
        nodes = [
            name
            for name, n in network.nodes.items()
            if not n.is_input and name not in set(network.outputs)
        ]
    return {
        name: true_slack(
            network, name, delays, input_arrivals, output_required, engine
        )
        for name in nodes
    }
