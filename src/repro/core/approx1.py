"""Approximate approach 1 (Section 4.2): the monotone F(α, β).

The subset-ordering chains of the exact formulation are *encoded away*
with fresh parameter variables:

    χ_{x,1}^{t_{p_x}}   = x · α_1
    χ_{x,1}^{t_{p_x-1}} = x · α_1 α_2
    ...
    χ_{x,1}^{t_1}       = x · α_1 α_2 … α_{p_x}

(and dually with β for value 0).  Universally quantifying the primary
inputs from the two output-equality constraints yields F(α, β), which is a
**monotone increasing** function (Theorem 1, proved through Lemmas 1–3 and
Corollary 1, all of which the test suite checks on constructed instances).
Each *prime* of F — a set of parameters that must be 1, minimal — is one
latest required-time assignment; the all-ones assignment is the
topological one, so the analysis is non-trivial exactly when some prime is
a proper subset of the parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.bdd import BddManager, BddNode, create_manager, monotone_primes
from repro.bdd.minimal import is_monotone_increasing
from repro.bdd.reorder import sift
from repro.core.leaves import LeafTimes, enumerate_leaf_times
from repro.core.required_time import INF, RequiredTimeProfile
from repro.core.symbolic import SymbolicChi
from repro.errors import TimingError
from repro.network.network import Network
from repro.network.verify import global_functions
from repro.obs.trace import span
from repro.timing.delay import DelayModel, unit_delay


@dataclass
class Approx1Result:
    """Primes of F(α, β) interpreted as required-time profiles."""

    circuit: str
    primes: list[frozenset[str]]
    profiles: list[RequiredTimeProfile]
    num_parameters: int
    parameter_names: list[str]
    nontrivial: bool
    #: name of every parameter variable, per (input, value): the chain
    chains: dict[tuple[str, int], list[str]] = field(default_factory=dict)

    def topological_profile_index(self) -> int | None:
        """Index of the prime equal to the full parameter set, if any."""
        full = frozenset(self.parameter_names)
        for i, p in enumerate(self.primes):
            if p == full:
                return i
        return None


class Approx1Analysis:
    """Builds F(α, β) and extracts its primes."""

    def __init__(
        self,
        network: Network,
        delays: DelayModel | None = None,
        output_required: Mapping[str, float] | float = 0.0,
        manager: BddManager | None = None,
        max_nodes: int | None = None,
        reorder: bool = False,
        max_leaves: int = 50_000,
        check_theorems: bool = True,
        backend: str | None = None,
    ):
        self.network = network
        self.delays = delays or unit_delay()
        self.output_required = output_required
        with span("approx1.enumerate_leaves", circuit=network.name):
            self.leaves: LeafTimes = enumerate_leaf_times(
                network, self.delays, output_required, max_leaves=max_leaves
            )
        self.manager = manager or create_manager(backend, max_nodes=max_nodes)
        self.reorder = reorder
        self.check_theorems = check_theorems
        self._built: tuple[BddNode, dict[tuple[str, int], list[str]]] | None = None

    # ------------------------------------------------------------------
    def build_f(self) -> tuple[BddNode, dict[tuple[str, int], list[str]]]:
        """Construct F(α, β); returns it with the per-(input,value) chains."""
        if self._built is not None:
            return self._built
        with span("approx1.build_f", circuit=self.network.name) as sp:
            built = self._build_f()
            sp.set(parameters=sum(len(v) for v in built[1].values()))
        return built

    def _build_f(self) -> tuple[BddNode, dict[tuple[str, int], list[str]]]:
        m = self.manager
        net = self.network

        # Variable order: all primary inputs first, then the parameter
        # chains grouped by input.  Unlike the exact relation (where each
        # input couples mostly with its own leaf chain, so interleaving
        # wins), the approx-1 constraints are universally quantified over
        # X at the end; keeping X contiguous at the top makes the
        # quantification local and measurably cheaper on arithmetic
        # circuits (~2x node count on the carry-skip suite).
        for pi in net.inputs:
            if not m.has_var(pi):
                m.add_var(pi)
        chains: dict[tuple[str, int], list[str]] = {}
        for pi in net.inputs:
            for value, table, greek in (
                (1, self.leaves.for_one, "alpha"),
                (0, self.leaves.for_zero, "beta"),
            ):
                times = table.get(pi, ())
                names = []
                for j in range(1, len(times) + 1):
                    name = f"{greek}[{pi},{j}]"
                    if not m.has_var(name):
                        m.add_var(name)
                    names.append(name)
                chains[(pi, value)] = names

        # leaf functions: sorted times ascending t_1 < ... < t_p; the leaf
        # at t_i is literal · α_1 · ... · α_{p-i+1}
        leaf_cache: dict[tuple[str, int, float], BddNode] = {}
        for pi in net.inputs:
            for value, table in ((1, self.leaves.for_one), (0, self.leaves.for_zero)):
                times = table.get(pi, ())
                p = len(times)
                literal = m.var(pi) if value else m.nvar(pi)
                chain = chains[(pi, value)]
                for i, t in enumerate(times, start=1):
                    leaf_cache[(pi, value, t)] = m.conjoin(
                        [literal] + [m.var(chain[j]) for j in range(p - i + 1)]
                    )

        def leaf_fn(name: str, value: int, t: float) -> BddNode:
            try:
                return leaf_cache[(name, value, t)]
            except KeyError:
                raise TimingError(
                    f"χ recursion visited unenumerated leaf ({name},{value},{t})"
                ) from None

        chi = SymbolicChi(net, m, leaf_fn, self.delays)

        if isinstance(self.output_required, Mapping):
            req = {o: float(t) for o, t in self.output_required.items()}
        else:
            req = {o: float(self.output_required) for o in net.outputs}

        with span("approx1.global_functions"):
            onsets = global_functions(net, m)
        x_vars = list(net.inputs)

        f = m.true
        gc_threshold = (
            self.manager.max_nodes // 2 if self.manager.max_nodes else 500_000
        )
        with span("approx1.quantify_outputs", outputs=len(req)):
            for out, t in req.items():
                on = onsets[out]
                c1 = chi.chi(out, 1, t).equiv(on)
                c0 = chi.chi(out, 0, t).equiv(~on)
                # ∀X.(c1 ∧ c0) fused: never materializes the conjunction BDD
                # (and equals ∀X.c1 ∧ ∀X.c0 since ∀ distributes over ∧)
                f = f & m.and_forall(x_vars, c1, c0)
                if m.num_nodes > gc_threshold:
                    # safe point: everything needed is wrapper-protected
                    m.garbage_collect()

        if self.check_theorems:
            with span("approx1.check_theorem1"):
                self._check_theorem1(f, chains)

        if self.reorder:
            with span("approx1.reorder"):
                sift(m)
        self._built = (f, chains)
        return self._built

    def _check_theorem1(self, f: BddNode, chains) -> None:
        m = self.manager
        # Corollary 1: the all-ones assignment satisfies F
        all_ones = {
            name: 1 for names in chains.values() for name in names
        }
        if all_ones and not m.restrict(f, all_ones).is_true:
            raise TimingError(
                "Corollary 1 violated: all-ones parameter assignment does "
                "not satisfy F — construction bug"
            )
        if not all_ones and not f.is_true:
            raise TimingError("parameter-free F should be a tautology")
        # Theorem 1: F monotone increasing in the parameters
        if not is_monotone_increasing(f):
            raise TimingError("Theorem 1 violated: F is not monotone increasing")

    # ------------------------------------------------------------------
    def run(self) -> Approx1Result:
        f, chains = self.build_f()
        parameter_names = [n for names in chains.values() for n in names]
        with span("approx1.enumerate_primes"):
            primes = sorted(monotone_primes(f), key=lambda p: (len(p), sorted(p)))
        profiles = [self._prime_to_profile(p, chains) for p in primes]
        full = frozenset(parameter_names)
        nontrivial = any(p != full for p in primes)
        return Approx1Result(
            circuit=self.network.name,
            primes=primes,
            profiles=profiles,
            num_parameters=len(parameter_names),
            parameter_names=parameter_names,
            nontrivial=nontrivial,
            chains=chains,
        )

    def _prime_to_profile(
        self, prime: frozenset[str], chains: dict[tuple[str, int], list[str]]
    ) -> RequiredTimeProfile:
        """Interpret one prime as per-input, per-value required times.

        In a prime the set parameters of each chain form a prefix α_1..α_k
        (a non-prefix assignment is never minimal because α_{j} only
        matters when α_1..α_{j-1} are all 1).  With k of p parameters set,
        the earliest time whose leaf χ is forced to the literal is
        t_{p-k+1}; with k = 0 the input is never required for that value.
        """
        times: dict[str, tuple[float, float]] = {}
        for pi in self.network.inputs:
            per_value: dict[int, float] = {}
            for value, table in ((1, self.leaves.for_one), (0, self.leaves.for_zero)):
                chain = chains.get((pi, value), [])
                ts = table.get(pi, ())
                k = sum(1 for name in chain if name in prime)
                # prefix sanity: parameters in a prime must be contiguous
                present = [name in prime for name in chain]
                if any(present[j] and not all(present[:j]) for j in range(len(chain))):
                    raise TimingError(
                        f"non-prefix prime on chain {chain}: {sorted(prime)}"
                    )
                if k == 0 or not ts:
                    per_value[value] = INF
                else:
                    per_value[value] = ts[len(ts) - k]
            times[pi] = (per_value[0], per_value[1])
        return RequiredTimeProfile.from_dict(times)
