"""Approximate approach 2 (Section 4.3): the lattice climb.

Candidate required-time vectors live in R = R_1 × … × R_n, where R_i is
the set of times at which input i's leaf χ variables are referenced
(values 0 and 1 merged, as in the paper's implementation; a per-value
variant is available).  The bottom element r_⊥ — every coordinate at its
minimum — is the topological required-time vector and is always safe.

A vector r is *valid* when functional timing analysis of the circuit with
arrival times r shows every primary output stable by its required time;
validity is downward closed (delaying an input can only delay outputs
under XBD0), so a greedy climb that keeps raising coordinates while the
check passes terminates at a maximal valid vector.  Backtracking over the
raise order enumerates all maximal vectors.  The validation engine is the
SAT-based functional analyzer of [9] or the BDD engine.

The run records the two quantities of the paper's Table 2: time until the
first non-trivial r ≠ r_⊥ is validated, and time until the maximal r is
reached; both survive resource aborts (the "> 12 hours" rows) through the
``aborted`` flag and best-so-far results.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Literal, Mapping

from repro.core.leaves import LeafTimes, enumerate_leaf_times
from repro.core.required_time import topological_input_required_times
from repro.errors import ResourceLimitError, TimingError
from repro.network.network import Network
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.timing.delay import DelayModel, unit_delay
from repro.timing.functional import FunctionalTiming


def _finite_sum(r: Mapping) -> float:
    """Sum of the finite coordinates (∞ entries carry no ordering info)."""
    return sum(v for v in r.values() if v != float("inf"))


def _cluster_axis(axis: list[float], stride: int) -> list[float]:
    """Conservatively thin a candidate axis (the paper's proposed
    approximation: 'group them into clusters of neighboring required times
    conservatively').

    The minimum (the topological bottom) is always kept; above it, every
    ``stride``-th candidate counted from the bottom survives.  A coarser
    axis trades looseness for fewer validation checks.
    """
    if stride == 1 or len(axis) <= 2:
        return list(axis)
    kept = [axis[0]]
    kept.extend(axis[i] for i in range(stride, len(axis), stride))
    return kept


@dataclass
class LatticeClimbTrace:
    """Chronological record of validation checks during the climb."""

    events: list[tuple[float, dict[str, float], bool]] = field(default_factory=list)

    def record(self, elapsed: float, r: Mapping[str, float], valid: bool) -> None:
        self.events.append((elapsed, dict(r), valid))

    @property
    def num_checks(self) -> int:
        return len(self.events)

    @property
    def num_accepted(self) -> int:
        return sum(1 for _, _, ok in self.events if ok)

    def to_csv(self) -> str:
        """Render the climb as CSV (elapsed, accepted, looseness, vector)
        for offline plotting of the anytime-progress curve."""
        import io

        out = io.StringIO()
        out.write("elapsed_s,accepted,total_looseness,vector\n")
        for elapsed, r, ok in self.events:
            looseness = sum(v for v in r.values() if v != float("inf"))
            rendered = ";".join(f"{k}={v:g}" for k, v in sorted(r.items(), key=lambda kv: str(kv[0])))
            out.write(f"{elapsed:.6f},{int(ok)},{looseness:g},{rendered}\n")
        return out.getvalue()


@dataclass
class Approx2Result:
    circuit: str
    r_bottom: dict[str, float]
    #: all maximal valid vectors found (one unless ``enumerate_all``)
    maximal: list[dict[str, float]]
    nontrivial: bool
    time_to_first_nontrivial: float | None
    time_to_max: float | None
    checks: int
    aborted: bool = False
    abort_reason: str | None = None
    trace: LatticeClimbTrace = field(default_factory=LatticeClimbTrace)

    @property
    def best(self) -> dict[str, float]:
        """The loosest vector found (maximal finite coordinate sum)."""
        if not self.maximal:
            return dict(self.r_bottom)
        return max(self.maximal, key=_finite_sum)


class Approx2Analysis:
    """The repeated-functional-timing-analysis climb."""

    def __init__(
        self,
        network: Network,
        delays: DelayModel | None = None,
        output_required: Mapping[str, float] | float = 0.0,
        engine: Literal["bdd", "sat"] = "sat",
        enumerate_all: bool = False,
        max_solutions: int = 16,
        max_checks: int | None = None,
        time_budget: float | None = None,
        max_leaves: int = 100_000,
        validate_bottom: bool = True,
        clustering: int = 1,
        separate_values: bool = False,
    ):
        self.network = network
        self.delays = delays or unit_delay()
        self.output_required = output_required
        self.engine = engine
        self.enumerate_all = enumerate_all
        self.max_solutions = max_solutions
        self.max_checks = max_checks
        self.time_budget = time_budget
        self.max_leaves = max_leaves
        self.validate_bottom = validate_bottom
        #: footnote 8 extension: search required times for values 0 and 1
        #: separately (one lattice axis per (input, value) pair) — this is
        #: what lets the method see e.g. the Figure 4 looseness
        self.separate_values = separate_values

        with span("approx2.enumerate_leaves", circuit=network.name):
            self.leaves: LeafTimes = enumerate_leaf_times(
                network, self.delays, output_required, max_leaves=max_leaves
            )
        if clustering < 1:
            raise TimingError("clustering stride must be >= 1")
        self.clustering = clustering
        if separate_values:
            self.axes = {}
            for pi in network.inputs:
                for value, table in (
                    (0, self.leaves.for_zero),
                    (1, self.leaves.for_one),
                ):
                    times = table.get(pi) or [float("inf")]
                    self.axes[(pi, value)] = _cluster_axis(times, clustering)
        else:
            self.axes = {
                pi: _cluster_axis(self.leaves.merged(pi) or [0.0], clustering)
                for pi in network.inputs
            }
        if isinstance(output_required, Mapping):
            self.required = {o: float(t) for o, t in output_required.items()}
        else:
            self.required = {o: float(output_required) for o in network.outputs}

        # per-output primary-input support: a candidate vector only needs
        # re-validation at the outputs whose cone contains a changed input,
        # and a validation verdict depends only on the arrival times of the
        # output's own support — both exploited via the cache below
        from repro.network.transform import transitive_fanin

        input_set = set(network.inputs)
        support = {
            po: transitive_fanin(network, [po]) & input_set
            for po in network.outputs
        }
        self._po_coords: dict[str, tuple] = {
            po: tuple(
                sorted(
                    (k for k in self.axes if self._input_of(k) in cone),
                    key=str,
                )
            )
            for po, cone in support.items()
        }
        self._po_cache: dict[tuple, bool] = {}
        self._po_fails: dict[str, int] = {}

    @staticmethod
    def _input_of(coord) -> str:
        """The primary input a lattice coordinate belongs to."""
        return coord[0] if isinstance(coord, tuple) else coord

    def _to_arrivals(self, r: Mapping) -> dict[str, object]:
        """Translate a lattice vector to per-input arrival times."""
        if not self.separate_values:
            return dict(r)
        return {
            pi: (r[(pi, 0)], r[(pi, 1)]) for pi in self.network.inputs
        }

    # ------------------------------------------------------------------
    def r_bottom(self) -> dict[str, float]:
        """r_⊥: minimum of each axis — never tighter than the topological
        requirement for any input the recursion reaches.

        With a single delay per gate the two coincide exactly.  With
        separate rise/fall delays the χ recursion charges each gate the
        delay of the value actually produced, while the Figure-3 baseline
        conservatively charges ``max(rise, fall)``; the phase-coupled
        bottom may then be strictly *looser* (later) than the baseline —
        found by differential fuzzing on a mux chain with asymmetric
        delays.  Only a bottom *earlier* than the baseline would signal an
        enumeration bug.
        """
        topo = topological_input_required_times(
            self.network, self.delays, self.required
        )
        bottom = {coord: min(axis) for coord, axis in self.axes.items()}
        per_input: dict[str, float] = {}
        for coord, t in bottom.items():
            pi = self._input_of(coord)
            per_input[pi] = min(per_input.get(pi, float("inf")), t)
        for pi, t in per_input.items():
            if (
                topo[pi] != float("inf")
                and t != float("inf")
                and t < topo[pi] - 1e-9
            ):
                raise TimingError(
                    f"lattice bottom {t} tighter than topological "
                    f"requirement {topo[pi]} at input {pi!r}"
                )
        return bottom

    def _validate(self, r: Mapping) -> bool:
        # consult the cache for every output first: a remembered failure
        # decides the vector without running a single engine check
        missing: list[tuple[str, float, tuple]] = []
        for po, t in self.required.items():
            key = (po, tuple(r[k] for k in self._po_coords[po]))
            verdict = self._po_cache.get(key)
            if verdict is None:
                missing.append((po, t, key))
            elif not verdict:
                return False
        if not missing:
            return True
        # uncached outputs: likeliest-to-fail first (failure history), so a
        # rejected vector costs as few engine checks as possible
        if len(missing) > 1 and self._po_fails:
            fails = self._po_fails
            missing.sort(key=lambda item: fails.get(item[0], 0), reverse=True)
        ft = FunctionalTiming(
            self.network,
            self.delays,
            arrivals=self._to_arrivals(r),
            engine=self.engine,
        )
        for po, t, key in missing:
            verdict = ft.output_stable_by(po, t)
            self._po_cache[key] = verdict
            if not verdict:
                self._po_fails[po] = self._po_fails.get(po, 0) + 1
                return False
        return True

    # ------------------------------------------------------------------
    def run(self) -> Approx2Result:
        with span(
            "approx2.climb", circuit=self.network.name, engine=self.engine
        ) as sp:
            result = self._run()
            sp.set(checks=result.checks, aborted=result.aborted)
        return result

    def _run(self) -> Approx2Result:
        start = _time.monotonic()
        trace = LatticeClimbTrace()
        checks = 0
        checks_metric = REGISTRY.counter("approx2.checks")
        first_nontrivial: float | None = None
        aborted = False
        abort_reason: str | None = None

        def elapsed() -> float:
            return _time.monotonic() - start

        def check(r: dict[str, float]) -> bool:
            nonlocal checks, first_nontrivial
            if self.max_checks is not None and checks >= self.max_checks:
                raise ResourceLimitError("validation-check budget exhausted")
            if self.time_budget is not None and elapsed() > self.time_budget:
                raise ResourceLimitError("time budget exhausted")
            checks += 1
            checks_metric.inc()
            ok = self._validate(r)
            trace.record(elapsed(), r, ok)
            if ok and first_nontrivial is None and r != bottom:
                first_nontrivial = elapsed()
            return ok

        bottom = self.r_bottom()
        if self.validate_bottom and not self._validate(bottom):
            raise TimingError(
                "topological bottom vector failed validation; timing model "
                "is inconsistent"
            )

        maximal: list[dict[str, float]] = []
        try:
            if self.enumerate_all:
                maximal = self._enumerate_maximal(bottom, check)
            else:
                maximal = [self._greedy_climb(bottom, check)]
        except ResourceLimitError as exc:
            aborted = True
            abort_reason = str(exc)
            best = self._best_accepted(trace, bottom)
            if best is not None:
                maximal = [best]

        time_to_max = None if aborted else elapsed()
        nontrivial = any(r != bottom for r in maximal)
        return Approx2Result(
            circuit=self.network.name,
            r_bottom=bottom,
            maximal=maximal,
            nontrivial=nontrivial,
            time_to_first_nontrivial=first_nontrivial,
            time_to_max=time_to_max,
            checks=checks,
            aborted=aborted,
            abort_reason=abort_reason,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _bump(self, r: dict[str, float], pi: str) -> dict[str, float] | None:
        """r with input ``pi`` raised one step along its axis, or None."""
        axis = self.axes[pi]
        import bisect

        idx = bisect.bisect_right(axis, r[pi])
        if idx >= len(axis):
            return None
        out = dict(r)
        out[pi] = axis[idx]
        return out

    def _greedy_climb(self, bottom: dict[str, float], check) -> dict[str, float]:
        """Raise coordinates until no single raise validates (one maximal r).

        Inputs are visited in decreasing axis length — inputs with many
        candidate moments have the most flexibility to expose.
        """
        r = dict(bottom)
        order = sorted(self.axes, key=lambda pi: -len(self.axes[pi]))
        progress = True
        while progress:
            progress = False
            for pi in order:
                while True:
                    candidate = self._bump(r, pi)
                    if candidate is None:
                        break
                    if check(candidate):
                        r = candidate
                        progress = True
                    else:
                        break
        return r

    def _enumerate_maximal(self, bottom, check) -> list[dict[str, float]]:
        """Backtracking search for all maximal valid vectors (bounded)."""
        results: list[dict[str, float]] = []
        seen: set[tuple] = set()
        validity: dict[tuple, bool] = {}

        def key(r: dict[str, float]) -> tuple:
            return tuple(sorted(r.items()))

        def cached_check(r: dict[str, float]) -> bool:
            k = key(r)
            if k not in validity:
                validity[k] = check(r)
            return validity[k]

        def dominated(r: dict[str, float]) -> bool:
            return any(
                all(r[k] <= other[k] for k in r) for other in results
            )

        def dfs(r: dict[str, float]) -> None:
            if len(results) >= self.max_solutions:
                return
            k = key(r)
            if k in seen:
                return
            seen.add(k)
            raised_any = False
            for pi in sorted(self.axes, key=lambda p: -len(self.axes[p])):
                candidate = self._bump(r, pi)
                if candidate is None:
                    continue
                if key(candidate) in seen:
                    raised_any = True  # explored elsewhere
                    continue
                if cached_check(candidate):
                    raised_any = True
                    dfs(candidate)
                    if len(results) >= self.max_solutions:
                        return
            if not raised_any and not dominated(r):
                results.append(dict(r))

        dfs(dict(bottom))
        # drop dominated stragglers
        final: list[dict[str, float]] = []
        for r in results:
            if not any(
                other is not r and all(r[k] <= other[k] for k in r)
                for other in results
            ):
                final.append(r)
        return final

    @staticmethod
    def _best_accepted(
        trace: LatticeClimbTrace, bottom: dict[str, float]
    ) -> dict[str, float] | None:
        """Loosest vector validated before an abort (the paper's point that
        'any intermediate r looser than topological analysis gives useful
        information immediately')."""
        best = None
        best_sum = _finite_sum(bottom)
        for _, r, ok in trace.events:
            if ok and _finite_sum(r) > best_sum:
                best = r
                best_sum = _finite_sum(r)
        return best
