"""The paper's primary contribution: required-time analysis via false-path
detection, and subcircuit timing flexibility.

* :mod:`~repro.core.leaves` — enumeration of the leaf χ variables (one per
  ⟨primary input, value, time⟩ triple needed by the backward recursion) and
  of the candidate required-time lattice R = R_1 × … × R_n.
* :mod:`~repro.core.symbolic` — the χ recursion with *unknown* leaves,
  parameterized by a leaf-construction callback (fresh BDD variables for
  the exact algorithm; α/β parameter products for approximate approach 1).
* :mod:`~repro.core.exact` — Section 4.1: the Boolean relation
  F(X, χ_X) = 1, its per-minterm rows, minimal-element extraction (latest
  required times), and compatible-function selection (Boolean unification).
* :mod:`~repro.core.approx1` — Section 4.2: the monotone F(α, β), its
  primes, and their interpretation as value-dependent required times.
* :mod:`~repro.core.approx2` — Section 4.3: the lattice climb driven by
  repeated functional timing analysis (BDD or SAT engine), greedy with
  backtracking enumeration of all maximal safe vectors.
* :mod:`~repro.core.required_time` — shared result types, the topological
  baseline at primary inputs, and the unified analysis facade.
* :mod:`~repro.core.flexibility` — Section 5: arrival-time flexibility at
  subcircuit inputs and required-time flexibility at subcircuit outputs.
"""

from repro.core.leaves import LeafTimes, enumerate_leaf_times
from repro.core.required_time import (
    INF,
    RequiredTimeProfile,
    RequiredTimeReport,
    analyze_required_times,
    topological_input_required_times,
)
from repro.core.exact import ExactAnalysis, ExactOptions, ExactRelation
from repro.core.approx1 import Approx1Analysis, Approx1Result
from repro.core.approx2 import Approx2Analysis, Approx2Result, LatticeClimbTrace
from repro.core.trueslack import SlackReport, true_slack, true_slacks
from repro.core.macromodel import TimingMacroModel, compose_arrivals
from repro.core.flexibility import (
    ArrivalFlexibility,
    CoupledFlexibility,
    CoupledRow,
    SubcircuitTiming,
    arrival_flexibility,
    coupled_flexibility,
    required_flexibility,
    subcircuit_timing,
)

__all__ = [
    "LeafTimes",
    "enumerate_leaf_times",
    "INF",
    "RequiredTimeProfile",
    "RequiredTimeReport",
    "analyze_required_times",
    "topological_input_required_times",
    "ExactAnalysis",
    "ExactOptions",
    "ExactRelation",
    "Approx1Analysis",
    "Approx1Result",
    "Approx2Analysis",
    "Approx2Result",
    "LatticeClimbTrace",
    "ArrivalFlexibility",
    "CoupledFlexibility",
    "CoupledRow",
    "SubcircuitTiming",
    "arrival_flexibility",
    "coupled_flexibility",
    "required_flexibility",
    "subcircuit_timing",
    "SlackReport",
    "true_slack",
    "true_slacks",
    "TimingMacroModel",
    "compose_arrivals",
]
