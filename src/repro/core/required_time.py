"""Shared result types, the topological baseline, and the unified facade.

The paper generalizes "required time at a primary input" from one constant
to value- and vector-dependent relations.  The common currency between the
three algorithms is:

* the **topological baseline** r_⊥ (Figure 3 applied to the primary
  inputs) — every method must be at least as loose as it, and a method's
  result is *non-trivial* when it is strictly looser somewhere;
* :class:`RequiredTimeProfile` — one value-dependent required-time
  assignment (the interpretation of an approx-1 prime, or of one minimal
  row of the exact relation at a given input minterm);
* :class:`RequiredTimeReport` — the record a Table-1/Table-2 style harness
  consumes: method, non-triviality, timing, resource-abort flags.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Literal, Mapping

from repro.errors import TimingError
from repro.network.network import Network
from repro.obs.trace import span
from repro.timing.delay import (
    DelayModel,
    IntervalDelayModel,
    unit_delay,
    unit_interval_delay,
)
from repro.timing.topological import required_time_bounds
from repro.timing.topological import required_times as topo_required

INF = math.inf

Method = Literal["exact", "approx1", "approx2", "topological"]


def topological_input_required_times(
    network: Network,
    delays: DelayModel | None = None,
    output_required: Mapping[str, float] | float = 0.0,
) -> dict[str, float]:
    """r_⊥: the Figure-3 required times restricted to the primary inputs."""
    req = topo_required(network, delays or unit_delay(), output_required)
    return {pi: req[pi] for pi in network.inputs}


def format_time(t: float) -> str:
    """Render a required time, using the paper's ∞ notation."""
    if t == INF:
        return "inf"
    return f"{t:g}"


@dataclass(frozen=True)
class RequiredTimeProfile:
    """One value-dependent required-time assignment.

    ``times[x] = (req_when_0, req_when_1)``: the signal x must be stable by
    ``req_when_v`` whenever its (final) value is v.  ``INF`` means the
    signal may be delayed forever in that case.
    """

    times: tuple[tuple[str, tuple[float, float]], ...]

    @classmethod
    def from_dict(cls, d: Mapping[str, tuple[float, float]]) -> "RequiredTimeProfile":
        return cls(tuple(sorted((k, (float(v[0]), float(v[1]))) for k, v in d.items())))

    def as_dict(self) -> dict[str, tuple[float, float]]:
        return {k: v for k, v in self.times}

    def of(self, name: str) -> tuple[float, float]:
        for k, v in self.times:
            if k == name:
                return v
        raise TimingError(f"no required time recorded for input {name!r}")

    def value_independent(self) -> dict[str, float]:
        """The conservative single-number view: min over the two values."""
        return {k: min(v) for k, v in self.times}

    def is_at_least_as_loose_as(self, baseline: Mapping[str, float]) -> bool:
        """Every requirement no earlier than the baseline's?"""
        mine = self.value_independent()
        return all(mine.get(x, INF) >= t for x, t in baseline.items())

    def is_strictly_looser_than(self, baseline: Mapping[str, float]) -> bool:
        if not self.is_at_least_as_loose_as(baseline):
            return False
        for x, (r0, r1) in self.times:
            if x in baseline and (r0 > baseline[x] or r1 > baseline[x]):
                return True
        return False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{k}:(0@{format_time(v[0])},1@{format_time(v[1])})"
            for k, v in self.times
        ]
        return "{" + ", ".join(parts) + "}"


@dataclass
class RequiredTimeReport:
    """Benchmark-facing record of one required-time analysis run."""

    method: Method
    circuit: str
    nontrivial: bool
    elapsed: float
    #: elapsed seconds when the first non-trivial (looser-than-topological)
    #: requirement was validated — Table 2's "CPU time first r ≠ r_⊥"
    time_to_first_nontrivial: float | None = None
    #: analysis aborted on a resource budget ("memory out" / "> 12 hours")
    aborted: bool = False
    abort_reason: str | None = None
    #: method-specific payload (ExactRelation / Approx1Result / Approx2Result)
    detail: object | None = None
    stats: dict[str, object] = field(default_factory=dict)

    def table_row(self) -> dict[str, object]:
        """The row the Table-1/2 harnesses print."""
        row = {
            "circuit": self.circuit,
            "method": self.method,
            "nontrivial": self.nontrivial,
            "cpu_time": round(self.elapsed, 3),
            "first_nontrivial": (
                None
                if self.time_to_first_nontrivial is None
                else round(self.time_to_first_nontrivial, 3)
            ),
            "aborted": self.aborted,
        }
        # which BDD kernel actually ran (exact/approx1 only): requested,
        # resolved, effective, fallback_reason — so a fleet reading
        # ``required --json`` can tell a degraded native run from a real one
        if "bdd_backend" in self.stats:
            row["bdd_backend"] = self.stats["bdd_backend"]
        # interval-delay extras: present only for genuinely widened models,
        # so point-interval rows stay byte-identical to scalar ones (the
        # degeneracy contract in docs/DELAY_MODELS.md)
        if "interval" in self.stats:
            row["interval"] = self.stats["interval"]
        return row


def analyze_required_times(
    network: Network,
    method: Method,
    delays: DelayModel | None = None,
    output_required: Mapping[str, float] | float = 0.0,
    delay_model: str | None = None,
    **options,
) -> RequiredTimeReport:
    """Unified entry point: run one of the paper's algorithms end to end.

    ``options`` are forwarded to the method class (``max_nodes`` and
    ``reorder`` for exact/approx1, ``engine`` / budgets for approx2).
    Resource exhaustion is reported in the result instead of raised,
    mirroring the paper's table annotations.

    ``delay_model`` selects the delay semantics: ``"scalar"`` (or unset)
    is the paper's model; ``"interval"`` promotes a scalar ``delays`` to
    point intervals (or accepts an :class:`IntervalDelayModel` as-is)
    and runs the χ machinery on the conservative hi corner, attaching
    ``[lo, hi]`` input-requirement bounds to ``stats["interval"]`` when
    the model is genuinely widened (docs/DELAY_MODELS.md).
    """
    delays = _resolve_delays(delays, delay_model)
    with span("required.analyze", circuit=network.name, method=method):
        report = _analyze(network, method, delays, output_required, options)
        if isinstance(delays, IntervalDelayModel) and not delays.is_point():
            report.stats["interval"] = _interval_stamp(
                network, method, delays, output_required, options
            )
        return report


def _resolve_delays(
    delays: DelayModel | IntervalDelayModel | None, delay_model: str | None
):
    """Apply the ``delay_model`` selector to whatever ``delays`` was given."""
    if delay_model in (None, "scalar"):
        return delays or unit_delay()
    if delay_model == "interval":
        if delays is None:
            return unit_interval_delay()
        if isinstance(delays, IntervalDelayModel):
            return delays
        return IntervalDelayModel.from_scalar(delays)
    raise TimingError(
        f"unknown delay model {delay_model!r} "
        "(choose from ['scalar', 'interval'])"
    )


def _interval_stamp(
    network: Network,
    method: Method,
    delays: IntervalDelayModel,
    output_required: Mapping[str, float] | float,
    options: dict,
) -> dict:
    """The interval-delay digest attached to non-point runs.

    ``bounds`` is the topological ``[lo, hi]`` requirement box per primary
    input (Figure 3 at both delay corners).  For approx2 a second lattice
    climb at the optimistic lo corner reports ``best_upper`` — the loosest
    false-path-aware requirement achievable anywhere in the delay box.
    Times render through :func:`format_time` so ``inf`` stays JSON-safe.
    """
    bounds = required_time_bounds(network, delays, output_required)
    stamp: dict[str, object] = {
        "point": False,
        "bounds": {
            pi: [format_time(bounds[pi][0]), format_time(bounds[pi][1])]
            for pi in network.inputs
        },
    }
    if method == "approx2":
        from repro.core.approx2 import Approx2Analysis

        result = Approx2Analysis(
            network, delays.lo_model(), output_required, **options
        ).run()
        stamp["best_upper"] = {
            "nontrivial": result.nontrivial,
            # lattice coordinates are pi names, or (pi, value) pairs under
            # separate_values — flatten the latter to "pi@value" JSON keys
            "r": {
                (coord if isinstance(coord, str) else f"{coord[0]}@{coord[1]}"):
                    format_time(t)
                for coord, t in sorted(result.best.items(), key=str)
            },
        }
    return stamp


def _analyze(
    network: Network,
    method: Method,
    delays: DelayModel,
    output_required: Mapping[str, float] | float,
    options: dict,
) -> RequiredTimeReport:
    from repro.errors import ResourceLimitError

    start = _time.monotonic()
    try:
        if method == "topological":
            baseline = topological_input_required_times(
                network, delays, output_required
            )
            return RequiredTimeReport(
                method="topological",
                circuit=network.name,
                nontrivial=False,
                elapsed=_time.monotonic() - start,
                detail=baseline,
            )
        if method == "exact":
            from repro.core.exact import ExactAnalysis

            analysis = ExactAnalysis(network, delays, output_required, **options)
            relation = analysis.relation()
            return RequiredTimeReport(
                method="exact",
                circuit=network.name,
                nontrivial=relation.nontrivial(),
                elapsed=_time.monotonic() - start,
                detail=relation,
                stats={
                    "leaf_variables": relation.num_leaf_variables,
                    "bdd": analysis.manager.statistics(),
                    "bdd_backend": _backend_stamp(options, analysis.manager),
                },
            )
        if method == "approx1":
            from repro.core.approx1 import Approx1Analysis

            analysis = Approx1Analysis(network, delays, output_required, **options)
            result = analysis.run()
            return RequiredTimeReport(
                method="approx1",
                circuit=network.name,
                nontrivial=result.nontrivial,
                elapsed=_time.monotonic() - start,
                detail=result,
                stats={
                    "num_parameters": result.num_parameters,
                    "bdd": analysis.manager.statistics(),
                    "bdd_backend": _backend_stamp(options, analysis.manager),
                },
            )
        if method == "approx2":
            from repro.core.approx2 import Approx2Analysis

            analysis = Approx2Analysis(network, delays, output_required, **options)
            result = analysis.run()
            return RequiredTimeReport(
                method="approx2",
                circuit=network.name,
                nontrivial=result.nontrivial,
                elapsed=_time.monotonic() - start,
                time_to_first_nontrivial=result.time_to_first_nontrivial,
                aborted=result.aborted,
                abort_reason=result.abort_reason,
                detail=result,
                stats={"checks": result.checks},
            )
    except ResourceLimitError as exc:
        stats: dict[str, object] = {}
        if method in ("exact", "approx1"):
            stats["bdd_backend"] = _backend_stamp(options, None)
        return RequiredTimeReport(
            method=method,
            circuit=network.name,
            nontrivial=False,
            elapsed=_time.monotonic() - start,
            aborted=True,
            abort_reason=str(exc),
            detail=exc.partial_result,
            stats=stats,
        )
    raise TimingError(f"unknown method {method!r}")


def _backend_stamp(options: dict, manager) -> dict:
    """The BDD-kernel provenance of one run: how the request resolved,
    plus the kernel the live manager actually is (ground truth when the
    native backend degraded to array mid-factory)."""
    from repro.bdd.api import backend_of, backend_resolution

    stamp = backend_resolution(options.get("backend"))
    if manager is not None:
        stamp["effective"] = backend_of(manager)
    return stamp
