"""The ``eco`` fuzz family: seeded edit traces with a parity oracle.

Where the ``circuit`` family generates one static analysis problem per
case, this family generates a base circuit *plus a trace of valid edits*
(:mod:`repro.eco.edits`) and replays the trace through a
:class:`~repro.eco.session.NetworkSession` per method, asserting after
**every** edit that the session's incrementally maintained rows and
merged view are bit-identical to a cold full recompute of the current
network state (``eco-parity[<method>]``).  A final ``eco-atomicity``
check throws deterministic invalid edits at the evolved session and
requires an :class:`~repro.errors.EcoError` with the session observably
unchanged.

Determinism contract (same as :mod:`repro.fuzz.gen`): the trace is a
pure function of ``(seed, profile, index)`` — the base circuit comes
from ``generate_case(seed, profile, index)`` and every edit draw flows
through one ``random.Random`` seeded with ``"{seed}:{index}:eco"``, with
all candidate lists sorted before drawing, so the same seed yields the
same trace JSON across processes and machines.
"""

from __future__ import annotations

import hashlib
import random
import time as _time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.eco.edits import (
    AddNode,
    Edit,
    RemoveNode,
    Resubstitute,
    RetargetFanout,
    RetargetOutputs,
    SetDelay,
    edit_from_dict,
)
from repro.errors import EcoError
from repro.fuzz.checks import CaseResult, CheckFailure, EngineSuite
from repro.fuzz.gen import FuzzCase, FuzzProfile, PROFILES, generate_case
from repro.network.network import Network
from repro.network.transform import transitive_fanout
from repro.obs.metrics import REGISTRY

TRACE_FORMAT = 1

#: weighted edit kinds of the generator (resubstitution dominates — it is
#: the restructuring move the paper's Section 5 loop performs)
_EDIT_MIX: tuple[tuple[str, int], ...] = (
    ("resubstitute", 4),
    ("set_delay", 3),
    ("add_node", 2),
    ("retarget_fanout", 2),
    ("remove_node", 1),
    ("retarget_outputs", 1),
)

#: gate kinds drawn for generated resubstitutions / additions
_BINARY_KINDS = ("AND", "OR", "NAND", "NOR", "XOR")
_UNARY_KINDS = ("NOT", "BUF")


@dataclass
class EcoTrace:
    """One fully specified ECO problem: a base case plus an edit trace."""

    trace_id: str
    case: FuzzCase
    edits: list[Edit]
    #: the exact rng seed string that regenerates the edit draws
    seed: str
    profile: str

    @property
    def num_edits(self) -> int:
        return len(self.edits)

    def edits_json(self) -> list[dict]:
        """The edit list in the ``repro eco`` trace format."""
        return [e.to_dict() for e in self.edits]

    def to_json(self) -> dict:
        """The full trace document (``{"edits": ...}`` is what
        ``repro eco`` consumes; the rest is regeneration identity)."""
        return {
            "format": TRACE_FORMAT,
            "trace_id": self.trace_id,
            "seed": self.seed,
            "profile": self.profile,
            "base_case": self.case.case_id,
            "edits": self.edits_json(),
        }


# ----------------------------------------------------------------------
# edit construction against an evolving replica
# ----------------------------------------------------------------------


def _gates(net: Network) -> list[str]:
    return sorted(n for n, node in net.nodes.items() if not node.is_input)


def _draw_function(
    rng: random.Random, k: int
) -> str:
    """A gate kind legal for ``k`` fanins."""
    if k == 1:
        return _UNARY_KINDS[rng.randrange(len(_UNARY_KINDS))]
    return _BINARY_KINDS[rng.randrange(len(_BINARY_KINDS))]


def _try_resubstitute(rng: random.Random, net: Network, counter: list[int]):
    gates = _gates(net)
    if not gates:
        return None
    name = gates[rng.randrange(len(gates))]
    legal = sorted(set(net.nodes) - transitive_fanout(net, [name]))
    if not legal:
        return None
    k = rng.randint(1, min(3, len(legal)))
    fanins = tuple(sorted(rng.sample(legal, k)))
    return Resubstitute(name=name, fanins=fanins, gate=_draw_function(rng, k))


def _try_set_delay(rng: random.Random, net: Network, counter: list[int]):
    gates = _gates(net)
    if not gates:
        return None
    name = gates[rng.randrange(len(gates))]
    if rng.random() < 0.3:
        delay = (float(rng.randint(1, 3)), float(rng.randint(1, 3)))
    else:
        delay = float(rng.randint(1, 3))
    return SetDelay(name=name, delay=delay)


def _try_add_node(rng: random.Random, net: Network, counter: list[int]):
    signals = sorted(net.nodes)
    k = rng.randint(1, min(3, len(signals)))
    fanins = tuple(sorted(rng.sample(signals, k)))
    counter[0] += 1
    return AddNode(
        name=f"eco{counter[0]}", fanins=fanins, gate=_draw_function(rng, k)
    )


def _try_retarget_fanout(rng: random.Random, net: Network, counter: list[int]):
    fanouts = net.fanouts()
    driven = sorted(n for n, readers in fanouts.items() if readers)
    if not driven:
        return None
    old = driven[rng.randrange(len(driven))]
    readers = fanouts[old]
    blocked: set[str] = {old}
    for reader in readers:
        blocked.update(net.nodes[reader].fanins)
        blocked.update(transitive_fanout(net, [reader]))
    legal = sorted(set(net.nodes) - blocked)
    if not legal:
        return None
    return RetargetFanout(old=old, new=legal[rng.randrange(len(legal))])


def _try_remove_node(rng: random.Random, net: Network, counter: list[int]):
    fanouts = net.fanouts()
    dead = sorted(
        n
        for n, readers in fanouts.items()
        if not readers and n not in net.outputs
    )
    # never remove the last primary input: engines need at least one
    dead = [
        n for n in dead
        if not net.nodes[n].is_input or len(net.inputs) > 1
    ]
    if not dead:
        return None
    return RemoveNode(name=dead[rng.randrange(len(dead))])


def _try_retarget_outputs(rng: random.Random, net: Network, counter: list[int]):
    outputs = list(net.outputs)
    gates = _gates(net)
    extras = sorted(set(gates) - set(outputs))
    if extras and (len(outputs) < 2 or rng.random() < 0.5):
        new = extras[rng.randrange(len(extras))]
        outs = tuple(outputs + [new])
        return RetargetOutputs(
            outputs=outs, required=((new, float(rng.randint(0, 2))),)
        )
    if len(outputs) > 1:
        drop = outputs[rng.randrange(len(outputs))]
        return RetargetOutputs(
            outputs=tuple(o for o in outputs if o != drop)
        )
    return None


_BUILDERS: dict[str, Callable] = {
    "resubstitute": _try_resubstitute,
    "set_delay": _try_set_delay,
    "add_node": _try_add_node,
    "retarget_fanout": _try_retarget_fanout,
    "remove_node": _try_remove_node,
    "retarget_outputs": _try_retarget_outputs,
}


def generate_eco_trace(
    seed: int | str,
    profile: FuzzProfile | str = "tiny",
    index: int = 0,
    n_edits: int | None = None,
) -> EcoTrace:
    """The ``index``-th edit trace of the run seeded by ``seed``.

    Pure in its arguments (module-docstring contract).  Every generated
    edit validates against the evolving network replica before being
    committed to the trace, so a generated trace always replays cleanly.
    """
    from repro.timing.delay import unit_delay

    profile_name = profile.name if isinstance(profile, FuzzProfile) else profile
    if isinstance(profile, str) and profile not in PROFILES:
        # let generate_case raise the canonical error
        generate_case(seed, profile, index)
    case = generate_case(seed, profile, index)
    eco_seed = f"{seed}:{index}:eco"
    rng = random.Random(eco_seed)
    if n_edits is None:
        n_edits = rng.randint(3, 8)
    replica = case.network.copy()
    delays = case.delays if case.delays is not None else unit_delay()
    required = dict(case.required_map())
    edits: list[Edit] = []
    counter = [0]
    kinds = [k for k, _ in _EDIT_MIX]
    weights = [w for _, w in _EDIT_MIX]
    while len(edits) < n_edits:
        first = rng.choices(kinds, weights=weights, k=1)[0]
        order = kinds[kinds.index(first):] + kinds[: kinds.index(first)]
        committed = False
        for kind in order:
            edit = _BUILDERS[kind](rng, replica, counter)
            if edit is None:
                continue
            try:
                edit.validate(replica, delays, required)
            except EcoError:
                continue
            effect = edit.apply(replica, delays, required)
            if effect.delays is not None:
                delays = effect.delays
            if effect.required is not None:
                required = dict(effect.required)
                for name in list(required):
                    if name not in replica.outputs:
                        required.pop(name)
            edits.append(edit)
            committed = True
            break
        if not committed:  # pragma: no cover - every net has a legal move
            break
    digest = hashlib.sha1(eco_seed.encode()).hexdigest()[:8]
    trace_id = f"{profile_name}-{index:04d}-eco-{digest}"
    return EcoTrace(
        trace_id=trace_id,
        case=case,
        edits=edits,
        seed=eco_seed,
        profile=profile_name,
    )


# ----------------------------------------------------------------------
# the differential check: incremental session vs full recompute
# ----------------------------------------------------------------------

#: the per-method analysis options the eco differential runs (topological
#: is the cheap reference; approx2-sat exercises a real engine with a
#: deterministic check budget)
def _eco_methods(suite: EngineSuite) -> list[tuple[str, dict]]:
    return [
        ("topological", {}),
        ("approx2", {"engine": "sat", "max_checks": suite.approx2_max_checks}),
    ]


def run_eco_differential(
    trace: EcoTrace,
    suite: EngineSuite | None = None,
    methods: Sequence[tuple[str, dict]] | None = None,
) -> CaseResult:
    """Replay ``trace`` per method and check parity after every edit.

    Returns a :class:`~repro.fuzz.checks.CaseResult` over the *base*
    case, so the runner/shrinker/corpus machinery treats eco findings
    exactly like circuit findings.  Emitted checks:

    * ``eco-parity[<method>]`` — the incremental session's rows/merged
      view diverged from a cold full recompute after some edit;
    * ``eco-trace-invalid`` — an edit of the trace was rejected by the
      session (a generator bug, or a shrink candidate that broke edit
      preconditions — the restricted shrink predicate discards those);
    * ``eco-atomicity`` — an invalid edit mutated the session;
    * ``eco-error`` — any unexpected crash during replay.
    """
    from repro.eco import NetworkSession

    suite = suite or EngineSuite()
    if methods is None:
        methods = _eco_methods(suite)
    result = CaseResult(case=trace.case)
    start = _time.monotonic()
    before = REGISTRY.snapshot()
    final_session: NetworkSession | None = None
    for method, options in methods:
        check = f"eco-parity[{method}]"
        result.checks_run.append(check)
        try:
            session = NetworkSession(
                trace.case.network,
                method=method,
                delays=trace.case.delays,
                output_required=trace.case.output_required,
                options=options,
            )
            for i, edit in enumerate(trace.edits):
                try:
                    session.apply_edit(edit)
                except EcoError as exc:
                    result.failures.append(
                        CheckFailure(
                            "eco-trace-invalid",
                            f"{method}: edit #{i} {edit.to_dict()} "
                            f"rejected: {exc}",
                        )
                    )
                    break
                problems = session.verify_against_full_recompute()
                for problem in problems:
                    result.failures.append(
                        CheckFailure(
                            check,
                            f"after edit #{i} {edit.to_dict()}: {problem}",
                        )
                    )
                if problems:
                    break
            else:
                if method == "topological":
                    final_session = session
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            result.failures.append(
                CheckFailure(
                    "eco-error", f"{method}: {type(exc).__name__}: {exc}"
                )
            )
    if final_session is not None:
        result.checks_run.append("eco-atomicity")
        _check_atomicity(final_session, result)
    result.elapsed = _time.monotonic() - start
    result.metrics = REGISTRY.snapshot().diff(before)
    return result


def _invalid_edits(net: Network) -> list[Edit]:
    """Deterministic always-invalid edits against ``net``'s current state."""
    bad: list[Edit] = [
        Resubstitute(name="__eco_no_such_node__", fanins=("x",), gate="BUF"),
        RemoveNode(name="__eco_no_such_node__"),
        SetDelay(name="__eco_no_such_node__", delay=1.0),
        RetargetOutputs(outputs=("__eco_no_such_node__",)),
        SetDelay(name=net.outputs[0], delay=-1.0),
    ]
    gates = _gates(net)
    if gates:
        # dangling fanin
        bad.append(
            Resubstitute(
                name=gates[0], fanins=("__eco_dangling__",), gate="BUF"
            )
        )
        # self-cycle: a gate feeding itself
        bad.append(Resubstitute(name=gates[0], fanins=(gates[0],), gate="BUF"))
    return bad


def _check_atomicity(session, result: CaseResult) -> None:
    """Invalid edits must raise :class:`EcoError` and change nothing."""
    import json

    def state() -> str:
        return json.dumps(
            {
                "rows": session.rows(),
                "digests": session.digests(),
                "outputs": list(session.network.outputs),
                "nodes": sorted(session.network.nodes),
                "required": session.required,
                "edits_applied": session.edits_applied,
            },
            sort_keys=True,
        )

    before = state()
    for bad in _invalid_edits(session.network):
        try:
            session.apply_edit(bad)
        except EcoError:
            pass
        except Exception as exc:  # noqa: BLE001
            result.failures.append(
                CheckFailure(
                    "eco-atomicity",
                    f"invalid edit {bad.to_dict()} raised "
                    f"{type(exc).__name__} instead of EcoError: {exc}",
                )
            )
            continue
        else:
            result.failures.append(
                CheckFailure(
                    "eco-atomicity",
                    f"invalid edit {bad.to_dict()} did not raise EcoError",
                )
            )
            continue
        after = state()
        if after != before:
            result.failures.append(
                CheckFailure(
                    "eco-atomicity",
                    f"session changed after rejected edit {bad.to_dict()}",
                )
            )
            return


# ----------------------------------------------------------------------
# shrinking: minimize the edit list, keep the divergence
# ----------------------------------------------------------------------

EcoPredicate = Callable[[EcoTrace], bool]


def eco_failure_predicate(
    suite: EngineSuite | None = None,
    checks: set[str] | None = None,
) -> EcoPredicate:
    """The eco analogue of :func:`repro.fuzz.shrink.failure_predicate`.

    ``checks`` restricts interest to specific check names; a shrink
    candidate whose only failure is ``eco-trace-invalid`` (its edits no
    longer apply) is uninteresting unless that is the finding itself.
    """
    suite = suite or EngineSuite()

    def predicate(trace: EcoTrace) -> bool:
        result = run_eco_differential(trace, suite)
        if checks is None:
            return not result.ok
        return any(f.check in checks for f in result.failures)

    return predicate


def edits_replay_cleanly(case: FuzzCase, edits: Sequence[Edit]) -> bool:
    """Whether ``edits`` validate and apply in order against ``case``.

    The same replica/delays/required maintenance as
    :func:`generate_eco_trace`, reduced to a boolean — the cheap
    pre-filter that lets base-circuit shrinking discard a surgically
    altered netlist whose edit preconditions broke without spending a
    full predicate evaluation on it.
    """
    from repro.timing.delay import unit_delay

    replica = case.network.copy()
    delays = case.delays if case.delays is not None else unit_delay()
    required = dict(case.required_map())
    for edit in edits:
        try:
            edit.validate(replica, delays, required)
            effect = edit.apply(replica, delays, required)
        except EcoError:
            return False
        if effect.delays is not None:
            delays = effect.delays
        if effect.required is not None:
            required = dict(effect.required)
            for name in list(required):
                if name not in replica.outputs:
                    required.pop(name)
    return True


def shrink_eco_trace(
    trace: EcoTrace,
    predicate: EcoPredicate,
    max_evals: int = 100,
) -> EcoTrace:
    """Greedy fixpoint minimization of the edit list *and* the base
    circuit under ``predicate``.

    Edit-list passes run first: suffix truncation (a parity divergence
    found after edit *i* rarely needs the edits after it), then
    single-edit deletion, newest first.  When the edit list is locally
    minimal, a base-surgery pass tries every one-step simplification of
    the seed netlist from the circuit shrinker
    (:func:`repro.fuzz.shrink.case_candidates` — drop outputs, bypass
    gates, cofactor away fanins, merge inputs, simplify the
    environment), pre-filtered by :func:`edits_replay_cleanly` so a
    candidate whose edit preconditions broke is discarded for free.
    Any accepted candidate restarts the pass list.  Deterministic
    candidate order, so shrinking is reproducible; ``max_evals`` caps
    predicate evaluations (pre-filter rejections are not charged).
    """
    import dataclasses

    from repro.fuzz.shrink import case_candidates

    def try_candidate(candidate: EcoTrace) -> bool:
        try:
            return predicate(candidate)
        except Exception:  # noqa: BLE001 - a crashier candidate is
            return False  # a *different* repro; stay on course

    current = trace
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        candidates: list[list[Edit]] = []
        n = len(current.edits)
        for keep in range(n - 1, 0, -1):  # suffix truncation, biggest cut first
            candidates.append(current.edits[:keep])
        for i in range(n - 1, -1, -1):  # single deletion, newest first
            candidates.append(current.edits[:i] + current.edits[i + 1:])
        for edits in candidates:
            if evals >= max_evals:
                break
            if not edits:
                continue
            candidate = dataclasses.replace(current, edits=list(edits))
            evals += 1
            if try_candidate(candidate):
                current = candidate
                progress = True
                break
        if progress:
            continue  # re-minimize the edit list before more surgery
        for case in case_candidates(current.case):
            if evals >= max_evals:
                break
            if not case.network.outputs or not case.network.inputs:
                continue
            try:
                case.network.validate()
            except Exception:  # pragma: no cover - defensive
                continue
            if not edits_replay_cleanly(case, current.edits):
                continue  # free skip: the trace no longer applies
            candidate = dataclasses.replace(current, case=case)
            evals += 1
            if try_candidate(candidate):
                current = candidate
                progress = True
                break
    return current


def trace_from_entry(case: FuzzCase, metadata: dict) -> EcoTrace:
    """Rebuild an :class:`EcoTrace` from a corpus entry's pieces (the
    ``eco`` metadata block written by ``save_eco_repro``)."""
    eco = metadata.get("eco") or {}
    return EcoTrace(
        trace_id=metadata.get("case_id", case.case_id),
        case=case,
        edits=[edit_from_dict(spec) for spec in eco.get("edits", [])],
        seed=str(eco.get("seed", metadata.get("seed", ""))),
        profile=metadata.get("profile", "unknown"),
    )


#: Every check name the eco differential can emit.
ECO_CHECKS = (
    "eco-parity[topological]",
    "eco-parity[approx2]",
    "eco-trace-invalid",
    "eco-atomicity",
    "eco-error",
)

__all__ = [
    "ECO_CHECKS",
    "EcoTrace",
    "eco_failure_predicate",
    "edits_replay_cleanly",
    "generate_eco_trace",
    "run_eco_differential",
    "shrink_eco_trace",
    "trace_from_entry",
]
