"""The persistent regression corpus: minimal repros on disk, replayable.

Every failure the fuzzer finds is committed as a pair of files under a
corpus directory (``tests/corpus/`` in this repository):

* ``<case_id>.blif`` — the shrunk netlist, in standard BLIF so any
  external tool can read it;
* ``<case_id>.json`` — metadata: the seed and profile that produced it,
  the delay-model spec, the output required times, the checks it failed
  and why, and the pre-shrink size for context.

``load_corpus`` rebuilds full :class:`~repro.fuzz.gen.FuzzCase` objects
from those pairs and ``replay_entry`` re-runs the differential checks,
so every past failure becomes a permanent tier-1 regression test: once
the underlying bug is fixed, the replay must pass forever after.

Entries of the ``eco`` fuzz family carry an extra ``"eco"`` metadata
block — the edit trace (docs/ECO.md format) and its generator seed —
and ``replay_entry`` dispatches them to
:func:`repro.fuzz.eco.run_eco_differential` instead of the static
differential runner, so eco findings replay through the exact same
corpus pipeline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import ReproError
from repro.fuzz.checks import CaseResult, CheckFailure, EngineSuite, run_differential
from repro.fuzz.gen import FuzzCase
from repro.network.blif import parse_blif_file, write_blif
from repro.timing.delay import DelayModel

FORMAT_VERSION = 1


@dataclass
class CorpusEntry:
    """One on-disk repro: the rebuilt case plus its raw metadata."""

    case: FuzzCase
    metadata: dict
    blif_path: str
    json_path: str

    @property
    def failed_checks(self) -> list[str]:
        return [f["check"] for f in self.metadata.get("failures", [])]


def save_repro(
    directory: str,
    case: FuzzCase,
    failures: list[CheckFailure],
    original: FuzzCase | None = None,
) -> str:
    """Write ``case`` as a corpus entry; returns the entry's base name.

    ``original`` is the pre-shrink case, recorded (sizes and seed only)
    so a reader can judge how much the shrinker removed.
    """
    os.makedirs(directory, exist_ok=True)
    base = case.case_id
    blif_path = os.path.join(directory, f"{base}.blif")
    json_path = os.path.join(directory, f"{base}.json")
    metadata = {
        "format": FORMAT_VERSION,
        "case_id": case.case_id,
        "profile": case.profile,
        "family": case.family,
        "seed": case.seed,
        "delays": case.delays.to_spec(),
        "output_required": case.output_required,
        "inputs": case.num_inputs,
        "outputs": case.network.num_outputs,
        "gates": case.num_gates,
        "failures": [
            {"check": f.check, "detail": f.detail} for f in failures
        ],
    }
    if original is not None:
        metadata["original"] = {
            "case_id": original.case_id,
            "gates": original.num_gates,
            "inputs": original.num_inputs,
            "seed": original.seed,
        }
    with open(blif_path, "w") as handle:
        write_blif(case.network, handle)
    with open(json_path, "w") as handle:
        json.dump(metadata, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return base


def save_eco_repro(
    directory: str,
    trace,
    failures: list[CheckFailure],
    original=None,
) -> str:
    """Write an :class:`~repro.fuzz.eco.EcoTrace` as a corpus entry.

    The ``.blif`` holds the *base* netlist; the metadata's ``"eco"``
    block holds the edit trace (shrunk), its rng seed, and — when the
    shrinker removed edits — the original trace length for context.
    Returns the entry's base name (the trace id).
    """
    os.makedirs(directory, exist_ok=True)
    base = trace.trace_id
    blif_path = os.path.join(directory, f"{base}.blif")
    json_path = os.path.join(directory, f"{base}.json")
    metadata = {
        "format": FORMAT_VERSION,
        "case_id": trace.trace_id,
        "profile": trace.profile,
        "family": "eco",
        "seed": trace.case.seed,
        "delays": trace.case.delays.to_spec(),
        "output_required": trace.case.output_required,
        "inputs": trace.case.num_inputs,
        "outputs": trace.case.network.num_outputs,
        "gates": trace.case.num_gates,
        "failures": [
            {"check": f.check, "detail": f.detail} for f in failures
        ],
        "eco": {
            "seed": trace.seed,
            "edits": trace.edits_json(),
        },
    }
    if original is not None:
        metadata["original"] = {
            "case_id": original.trace_id,
            "edits": original.num_edits,
            "gates": original.case.num_gates,
            "seed": original.seed,
        }
    with open(blif_path, "w") as handle:
        write_blif(trace.case.network, handle)
    with open(json_path, "w") as handle:
        json.dump(metadata, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return base


def load_entry(directory: str, base: str) -> CorpusEntry:
    """Rebuild one corpus entry from its ``.blif``/``.json`` pair."""
    blif_path = os.path.join(directory, f"{base}.blif")
    json_path = os.path.join(directory, f"{base}.json")
    with open(json_path) as handle:
        metadata = json.load(handle)
    network = parse_blif_file(blif_path)
    required = metadata.get("output_required", 0.0)
    if not isinstance(required, dict):
        required = float(required)
    case = FuzzCase(
        case_id=metadata.get("case_id", base),
        network=network,
        delays=DelayModel.from_spec(metadata.get("delays", {})),
        output_required=required,
        profile=metadata.get("profile", "unknown"),
        seed=str(metadata.get("seed", "")),
        family=metadata.get("family", "unknown"),
    )
    return CorpusEntry(
        case=case, metadata=metadata, blif_path=blif_path, json_path=json_path
    )


def load_corpus(directory: str) -> list[CorpusEntry]:
    """Every entry of a corpus directory, sorted by case id."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".json"):
            continue
        base = fname[: -len(".json")]
        if not os.path.exists(os.path.join(directory, f"{base}.blif")):
            raise ReproError(
                f"corpus entry {base!r} has metadata but no .blif netlist"
            )
        entries.append(load_entry(directory, base))
    return entries


def replay_entry(
    entry: CorpusEntry, suite: EngineSuite | None = None, **run_kwargs
) -> CaseResult:
    """Re-run the differential checks on a corpus entry.

    With the stock :class:`EngineSuite` this is the regression direction:
    the entry documents a *fixed* failure, so the replay must come back
    clean.  Passing the suite that originally misbehaved (in mutation
    tests) must reproduce the recorded failure instead.

    Entries carrying an ``"eco"`` metadata block replay through the
    edit-trace differential (incremental session vs full recompute);
    the static-runner ``run_kwargs`` do not apply there.
    """
    if entry.metadata.get("eco"):
        from repro.fuzz.eco import run_eco_differential, trace_from_entry

        return run_eco_differential(
            trace_from_entry(entry.case, entry.metadata), suite
        )
    return run_differential(entry.case, suite, **run_kwargs)


__all__ = [
    "FORMAT_VERSION",
    "CorpusEntry",
    "load_corpus",
    "load_entry",
    "replay_entry",
    "save_eco_repro",
    "save_repro",
]
