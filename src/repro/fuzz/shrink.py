"""Delta-debugging shrinker: minimize a failing case, keep the failure.

Given a case and a *failure predicate* (re-runs the differential checks
and reports whether the interesting failure is still present), the
shrinker greedily applies structure-removing transformations until a
fixpoint:

* drop primary outputs (then sweep the dead cone),
* bypass a gate — replace every reference to it by one of its fanins,
* drop a fanin of a gate — cofactor the local cover against one phase,
* merge two primary inputs into one,
* drop unused primary inputs,
* simplify the delay model to unit delays,
* simplify the output required times to the scalar 0.

Every transformation produces a *valid* network (checked) and is only
kept when the predicate still holds, so the final case is a locally
minimal repro.  The pass order and candidate order are deterministic,
making shrinking reproducible.  Gate bypassing can create duplicate
fanin columns; those are collapsed by rebuilding the local cover from
its truth table (node fanin counts are small by construction).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from repro.network.network import Network
from repro.network.opt import sweep
from repro.sop import Cover
from repro.fuzz.checks import EngineSuite, run_differential
from repro.fuzz.gen import FuzzCase

Predicate = Callable[[FuzzCase], bool]


def failure_predicate(
    suite: EngineSuite | None = None,
    checks: set[str] | None = None,
    **run_kwargs,
) -> Predicate:
    """The standard predicate: the case still fails the differential run.

    ``checks`` restricts interest to specific check names (so shrinking
    one repro cannot wander off to a different failure class); by default
    any failure keeps the candidate.
    """
    suite = suite or EngineSuite()

    def predicate(case: FuzzCase) -> bool:
        result = run_differential(case, suite, **run_kwargs)
        if checks is None:
            return not result.ok
        return any(f.check in checks for f in result.failures)

    return predicate


# ----------------------------------------------------------------------
# network surgery
# ----------------------------------------------------------------------


def _truth_table_cover(fanins: list[str], cover: Cover) -> tuple[list[str], Cover]:
    """Collapse duplicate fanin columns by re-tabulating the function."""
    unique = list(dict.fromkeys(fanins))
    if len(unique) == len(fanins):
        return fanins, cover
    minterms = []
    for m in range(1 << len(unique)):
        values = {s: (m >> i) & 1 for i, s in enumerate(unique)}
        assignment = 0
        for i, s in enumerate(fanins):
            if values[s]:
                assignment |= 1 << i
        if cover.evaluate(assignment):
            minterms.append(m)
    return unique, Cover.from_minterms(len(unique), minterms)


def _rebuild(
    net: Network,
    rename: dict[str, str],
    drop: set[str],
    outputs: list[str] | None = None,
    name: str | None = None,
) -> Network:
    """Copy ``net`` with nodes in ``drop`` removed and every reference
    renamed through ``rename`` (applied to fanins and outputs)."""

    def ref(s: str) -> str:
        while s in rename:
            s = rename[s]
        return s

    clone = Network(name or net.name)
    for pi in net.inputs:
        if pi in drop:
            continue
        clone.add_input(pi)
    for node_name in net.topological_order():
        node = net.nodes[node_name]
        if node.is_input or node_name in drop:
            continue
        fanins = [ref(f) for f in node.fanins]
        fanins, cover = _truth_table_cover(fanins, node.cover)
        clone.add_node(node_name, fanins, cover.copy())
    outs = []
    for o in outputs if outputs is not None else net.outputs:
        o = ref(o)
        if o in clone.nodes and o not in outs:
            outs.append(o)
    clone.set_outputs(outs)
    sweep(clone)
    return clone


def _narrow_gate(
    net: Network, gate: str, fanins: list[str], cover: Cover
) -> Network:
    """Copy ``net`` with one gate's fanin list and cover replaced."""
    clone = Network(net.name)
    for pi in net.inputs:
        clone.add_input(pi)
    for node_name in net.topological_order():
        node = net.nodes[node_name]
        if node.is_input:
            continue
        if node_name == gate:
            fi, cv = _truth_table_cover(list(fanins), cover)
            clone.add_node(node_name, fi, cv)
        else:
            clone.add_node(node_name, list(node.fanins), node.cover.copy())
    clone.set_outputs(list(net.outputs))
    sweep(clone)
    return clone


def _with_network(case: FuzzCase, net: Network) -> FuzzCase:
    """The case rebased onto a surgically altered network: delay
    overrides for removed gates are dropped, per-output required times
    are restricted to the surviving outputs."""
    required = case.output_required
    if isinstance(required, dict):
        required = {o: required[o] for o in net.outputs if o in required}
        missing = [o for o in net.outputs if o not in required]
        for o in missing:  # outputs renamed onto other nodes keep 0.0
            required[o] = 0.0
    return dataclasses.replace(
        case,
        network=net,
        delays=case.delays.restricted_to(net),
        output_required=required,
    )


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Every one-step simplification of ``case``, deterministic order,
    most aggressive (largest expected deletion) first."""
    net = case.network

    # simplify the environment before the structure: a repro that fails
    # under unit delays and zero required times is easier to read
    from repro.timing.delay import unit_delay

    if case.delays.to_spec() != unit_delay().to_spec():
        yield dataclasses.replace(case, delays=unit_delay())
    if case.output_required != 0.0:
        yield dataclasses.replace(case, output_required=0.0)

    # drop outputs (and their now-dead cones)
    if len(net.outputs) > 1:
        for out in list(net.outputs):
            keep = [o for o in net.outputs if o != out]
            yield _with_network(case, _rebuild(net, {}, set(), outputs=keep))

    gates = [n for n in net.reverse_topological_order() if not net.nodes[n].is_input]

    # bypass a gate: every reference to it becomes one of its fanins
    for g in gates:
        for f in net.nodes[g].fanins:
            yield _with_network(case, _rebuild(net, {g: f}, {g}))

    # drop one fanin of a gate by cofactoring its cover against a phase
    for g in gates:
        node = net.nodes[g]
        if len(node.fanins) < 2:
            continue
        for i in range(len(node.fanins)):
            for phase in (1, 0):
                # the cofactor frees column i ('-' in every cube), so the
                # column can be deleted from the patterns afterwards
                reduced = node.cover.cofactor(i, phase)
                patterns = [
                    c.to_pattern()[:i] + c.to_pattern()[i + 1 :] for c in reduced
                ]
                new_fanins = node.fanins[:i] + node.fanins[i + 1 :]
                cover = (
                    Cover.from_patterns(patterns)
                    if patterns
                    else Cover.zero(len(new_fanins))
                )
                yield _with_network(
                    case, _narrow_gate(net, g, new_fanins, cover)
                )

    # merge one primary input into the first input
    if len(net.inputs) > 1:
        first = net.inputs[0]
        for a in net.inputs[1:]:
            yield _with_network(case, _rebuild(net, {a: first}, {a}))

    # drop inputs that feed nothing and are not outputs
    fanouts = net.fanouts()
    dead = [
        pi
        for pi in net.inputs
        if not fanouts[pi] and pi not in net.outputs and len(net.inputs) > 1
    ]
    if dead:
        yield _with_network(case, _rebuild(net, {}, set(dead)))


def case_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Every one-step simplification of ``case``, deterministic order,
    most aggressive first — the same candidate stream :func:`shrink_case`
    consumes.  Public so the ECO shrinker can reuse it for base-circuit
    surgery (:func:`repro.fuzz.eco.shrink_eco_trace`): there the stream
    is pre-filtered by replaying the edit trace, not by a differential
    run."""
    return _candidates(case)


def shrink_case(
    case: FuzzCase,
    predicate: Predicate,
    max_evals: int = 400,
) -> FuzzCase:
    """Greedy fixpoint shrink of ``case`` under ``predicate``.

    ``max_evals`` caps the number of predicate evaluations (each one is a
    full differential run); the best case found so far is returned when
    the budget runs out.
    """
    current = case
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            if not candidate.network.outputs or not candidate.network.inputs:
                continue
            try:
                candidate.network.validate()
            except Exception:  # pragma: no cover - defensive
                continue
            evals += 1
            try:
                keep = predicate(candidate)
            except Exception:  # noqa: BLE001 - a crashier candidate is
                keep = False  # a *different* repro; stay on course
            if keep:
                current = candidate
                progress = True
                break  # restart the pass list on the smaller case
    return current


__all__ = ["Predicate", "case_candidates", "failure_predicate", "shrink_case"]
