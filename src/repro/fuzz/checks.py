"""The differential runner: one case, every engine, every oracle.

Per circuit this module computes required times with all four engines
(exact, approx1, approx2, topological) and asserts the paper's ordering
and safety theorems against the implementations that do *not* share code
with the engine under test:

* ``a1-dominates-topo`` — every approx-1 profile is at least as loose as
  the topological baseline (Corollary 1);
* ``a1-safe-bdd`` — feeding an approx-1 profile back as arrival times
  leaves every output stable by its required time (BDD χ engine);
* ``a2-above-bottom`` — every approx-2 maximal vector dominates r_⊥;
* ``a2-cross-engine-safe`` — a vector validated by the SAT climb is
  re-validated by the BDD engine and vice versa;
* ``a2-engines-agree`` — the two climbs find identical maximal vectors
  (they take the same deterministic raise order, so any divergence is an
  engine disagreement on some stability check);
* ``hierarchy`` — approx-2 non-trivial ⇒ approx-1 non-trivial ⇒ exact
  non-trivial (the looseness ordering of §4);
* ``exact-contains-topo`` — the exact relation admits the topological
  assignment (Theorem 1's base case);
* ``oracle-topo-safe`` / ``oracle-a1-safe`` / ``oracle-a2-safe`` /
  ``oracle-exact-minterm`` — on small instances, exhaustive ternary
  XBD0 simulation over every input vector confirms each engine's answer
  with an implementation that shares neither χ covers nor BDDs nor CNF
  with any engine;
* ``cache-parity`` — the persistent result cache replayed against a
  fresh computation: a cold run through a throwaway cache followed by a
  warm run must hit and return a bit-identical canonical row (the free
  cache-correctness oracle of docs/CACHING.md — every fuzz case
  exercises keying, serialization, and warm reconstruction);
* ``bdd-backend-parity`` — the BDD-bound engines (exact, approx-1)
  re-run under every BDD kernel (``object``, ``array``, and — when it
  built — ``native``, see docs/BDD_BACKENDS.md): the canonical
  time-free rows — including budget-abort status — must be
  bit-identical, so the kernels can never drift apart semantically.

Any engine exception is itself a verdict (``engine-error``): a crash on
a generated circuit is a bug the shrinker can minimize like any other.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.approx1 import Approx1Analysis, Approx1Result
from repro.core.approx2 import Approx2Analysis, Approx2Result
from repro.core.required_time import topological_input_required_times
from repro.errors import ResourceLimitError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.timing.functional import FunctionalTiming
from repro.timing.ternary import stabilization_times

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.exact import ExactRelation
    from repro.fuzz.gen import FuzzCase

_EPS = 1e-9


@dataclass(frozen=True)
class CheckFailure:
    """One violated invariant: the check's name plus a short diagnosis."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.check}: {self.detail}"


@dataclass
class CaseResult:
    """Verdict of the differential runner on one case."""

    case: "FuzzCase"
    failures: list[CheckFailure] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    elapsed: float = 0.0
    #: registry deltas attributable to *this* case alone: the runner
    #: brackets each case with ``REGISTRY.snapshot()`` and stores the
    #: ``diff()``, so per-case accounting never inherits BDD/SAT counts
    #: from engines left over by a previous case (the historical bug was
    #: relying on manager counters without resetting between cases).
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_checks(self) -> list[str]:
        return sorted({f.check for f in self.failures})


class EngineSuite:
    """The engines under differential test, as injectable callables.

    Tests (and the mutation-testing harness) subclass this and corrupt
    one method to prove the fuzzer catches a specific class of engine
    bug; the fuzz runner itself always uses the stock suite.

    Every budget is a *deterministic* resource counter (BDD nodes,
    validation checks) rather than wall-clock time, so a generated case
    produces the same verdict on every machine: a case that exhausts a
    budget is recorded as skipped for that engine, never as flaky.
    """

    def __init__(
        self,
        exact_max_nodes: int = 200_000,
        approx1_max_nodes: int = 200_000,
        approx2_max_checks: int = 2_000,
    ):
        self.exact_max_nodes = exact_max_nodes
        self.approx1_max_nodes = approx1_max_nodes
        self.approx2_max_checks = approx2_max_checks

    def topological(self, case: "FuzzCase") -> dict[str, float]:
        return topological_input_required_times(
            case.network, case.delays, case.output_required
        )

    def approx1(self, case: "FuzzCase") -> Approx1Result:
        return Approx1Analysis(
            case.network,
            case.delays,
            case.output_required,
            max_nodes=self.approx1_max_nodes,
        ).run()

    def approx2(self, case: "FuzzCase", engine: str = "sat") -> Approx2Result:
        return Approx2Analysis(
            case.network,
            case.delays,
            case.output_required,
            engine=engine,
            max_checks=self.approx2_max_checks,
        ).run()

    def exact(self, case: "FuzzCase") -> "ExactRelation":
        from repro.core.exact import ExactAnalysis

        return ExactAnalysis(
            case.network,
            case.delays,
            case.output_required,
            max_nodes=self.exact_max_nodes,
        ).relation()


def _profile_arrivals(profile) -> dict[str, tuple[float, float]]:
    """An approx-1 profile replayed as (arrive-for-0, arrive-for-1) pairs."""
    return {x: (r0, r1) for x, (r0, r1) in profile.as_dict().items()}


def _fmt_vector(r: Mapping) -> str:
    return "{" + ", ".join(f"{k}={v:g}" for k, v in sorted(r.items(), key=lambda kv: str(kv[0]))) + "}"


def _oracle_minterms(n_inputs: int, cap: int = 16) -> list[int]:
    """Deterministic sample of input minterms for per-minterm checks."""
    total = 1 << n_inputs
    if total <= cap:
        return list(range(total))
    stride = total // cap
    return list(range(0, total, stride))[:cap]


def run_differential(
    case: "FuzzCase",
    suite: EngineSuite | None = None,
    oracle_max_inputs: int = 6,
    exact_max_inputs: int = 7,
) -> CaseResult:
    """Run every engine on ``case`` and cross-examine the answers."""
    suite = suite or EngineSuite()
    result = CaseResult(case=case)
    start = _time.monotonic()
    before = REGISTRY.snapshot()
    net = case.network
    required = case.required_map()

    def ran(check: str) -> None:
        result.checks_run.append(check)

    def fail(check: str, detail: str) -> None:
        result.failures.append(CheckFailure(check, detail))

    def stage(name: str, thunk):
        """Run one engine, converting a crash into a recorded failure.

        Exhausting a deterministic resource budget (BDD node count,
        validation-check count) is *not* a finding — the engine declined
        the case rather than answering it wrongly — so it lands in
        ``skipped``, keeping verdicts stable across machines.
        """
        try:
            return thunk()
        except ResourceLimitError:
            result.skipped.append(name)
            return None
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            fail("engine-error", f"{name}: {type(exc).__name__}: {exc}")
            return None

    topo = stage("topological", lambda: suite.topological(case))
    a1 = stage("approx1", lambda: suite.approx1(case))
    a2 = {
        eng: stage(f"approx2[{eng}]", lambda e=eng: suite.approx2(case, engine=e))
        for eng in ("sat", "bdd")
    }
    small = net.num_inputs <= oracle_max_inputs
    rel = None
    if net.num_inputs <= exact_max_inputs:
        rel = stage("exact", lambda: suite.exact(case))
    else:
        result.skipped.append("exact")

    # ------------------------------------------------------------------
    # ordering + safety against the χ engines
    # ------------------------------------------------------------------
    if a1 is not None and topo is not None:
        ran("a1-dominates-topo")
        for profile in a1.profiles:
            if not profile.is_at_least_as_loose_as(topo):
                fail(
                    "a1-dominates-topo",
                    f"profile {profile} tighter than baseline {_fmt_vector(topo)}",
                )
    if a1 is not None:
        ran("a1-safe-bdd")
        for profile in a1.profiles:
            ft = FunctionalTiming(
                net, case.delays, arrivals=_profile_arrivals(profile), engine="bdd"
            )
            if not ft.all_stable_by(required):
                fail("a1-safe-bdd", f"unsafe profile {profile}")

    for eng, res in a2.items():
        if res is None:
            continue
        ran(f"a2-above-bottom[{eng}]")
        for r in res.maximal:
            if any(r[x] + _EPS < res.r_bottom[x] for x in r):
                fail(
                    f"a2-above-bottom[{eng}]",
                    f"vector {_fmt_vector(r)} below bottom "
                    f"{_fmt_vector(res.r_bottom)}",
                )
        other = "bdd" if eng == "sat" else "sat"
        ran(f"a2-cross-engine-safe[{eng}->{other}]")
        for r in res.maximal:
            ft = FunctionalTiming(net, case.delays, arrivals=dict(r), engine=other)
            if not ft.all_stable_by(required):
                fail(
                    f"a2-cross-engine-safe[{eng}->{other}]",
                    f"{eng}-validated vector {_fmt_vector(r)} rejected by {other}",
                )

    if (
        a2["sat"] is not None
        and a2["bdd"] is not None
        and not a2["sat"].aborted
        and not a2["bdd"].aborted
    ):
        ran("a2-engines-agree")
        sat_set = {tuple(sorted(r.items())) for r in a2["sat"].maximal}
        bdd_set = {tuple(sorted(r.items())) for r in a2["bdd"].maximal}
        if sat_set != bdd_set:
            fail(
                "a2-engines-agree",
                f"sat={sorted(sat_set)} bdd={sorted(bdd_set)}",
            )

    # ------------------------------------------------------------------
    # the looseness hierarchy
    # ------------------------------------------------------------------
    if a1 is not None and a2["sat"] is not None:
        ran("hierarchy")
        if a2["sat"].nontrivial and not a1.nontrivial:
            fail("hierarchy", "approx2 non-trivial but approx1 trivial")
        if rel is not None and a1.nontrivial:
            trivial = stage("exact.nontrivial", lambda: not rel.nontrivial())
            if trivial:
                fail("hierarchy", "approx1 non-trivial but exact trivial")
    if rel is not None:
        ran("exact-contains-topo")
        missing = stage(
            "exact.contains_topological",
            lambda: not rel.contains_topological(),
        )
        if missing:
            fail("exact-contains-topo", "relation rejects topological assignment")

    # ------------------------------------------------------------------
    # exhaustive ternary-oracle cross-checks (small instances)
    # ------------------------------------------------------------------
    if small:
        import itertools

        vectors = list(itertools.product((0, 1), repeat=net.num_inputs))

        def oracle_safe(arrivals, check: str, label: str) -> None:
            for bits in vectors:
                vec = dict(zip(net.inputs, bits))
                stab = stabilization_times(net, vec, case.delays, arrivals)
                for out, t in required.items():
                    if stab[out] > t + _EPS:
                        fail(
                            check,
                            f"{label}: vector {vec} stabilizes {out} at "
                            f"{stab[out]:g} > required {t:g}",
                        )
                        return

        if topo is not None:
            ran("oracle-topo-safe")
            oracle_safe(dict(topo), "oracle-topo-safe", _fmt_vector(topo))
        if a1 is not None:
            ran("oracle-a1-safe")
            for profile in a1.profiles:
                oracle_safe(
                    _profile_arrivals(profile), "oracle-a1-safe", str(profile)
                )
        for eng, res in a2.items():
            if res is None:
                continue
            ran(f"oracle-a2-safe[{eng}]")
            for r in res.maximal:
                oracle_safe(dict(r), f"oracle-a2-safe[{eng}]", _fmt_vector(r))

        if rel is not None:
            ran("oracle-exact-minterm")
            for m in _oracle_minterms(net.num_inputs):
                minterm = {
                    x: (m >> i) & 1 for i, x in enumerate(net.inputs)
                }
                try:
                    profiles = rel.required_tuples(minterm)
                except ResourceLimitError:
                    result.skipped.append("oracle-exact-minterm")
                    break
                except Exception as exc:  # noqa: BLE001
                    fail(
                        "engine-error",
                        f"exact.required_tuples({minterm}): "
                        f"{type(exc).__name__}: {exc}",
                    )
                    break
                for profile in profiles:
                    arrivals = _profile_arrivals(profile)
                    stab = stabilization_times(
                        net, minterm, case.delays, arrivals
                    )
                    bad = [
                        (out, stab[out], t)
                        for out, t in required.items()
                        if stab[out] > t + _EPS
                    ]
                    if bad:
                        out, got, want = bad[0]
                        fail(
                            "oracle-exact-minterm",
                            f"minterm {minterm} profile {profile}: {out} "
                            f"stabilizes at {got:g} > required {want:g}",
                        )
    else:
        result.skipped.append("oracle")

    # ------------------------------------------------------------------
    # cache parity: warm must be bit-identical to cold
    # ------------------------------------------------------------------
    _check_cache_parity(case, suite, ran, fail, result)

    # ------------------------------------------------------------------
    # backend parity: object and array BDD kernels must agree bit-exactly
    # ------------------------------------------------------------------
    _check_bdd_backend_parity(
        case, suite, ran, fail, result,
        with_exact=net.num_inputs <= exact_max_inputs,
    )

    result.elapsed = _time.monotonic() - start
    result.metrics = REGISTRY.snapshot().diff(before)
    return result


def _check_cache_parity(
    case: "FuzzCase", suite: EngineSuite, ran, fail, result: CaseResult
) -> None:
    """Round-trip the cheap methods through a throwaway result cache.

    Runs ``topological`` and ``approx2`` (the lightest engines, so the
    extra cost per case stays small) cold through a fresh two-tier cache
    and then warm; the warm call must *hit* and the canonical rows must
    be JSON-bit-identical.  Aborted cold runs are uncacheable by design
    and are skipped.
    """
    import json
    import tempfile

    from repro.cache import ResultCache, cached_analyze_required_times

    ran("cache-parity")
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
        cache = ResultCache(tmp)
        for method, options in (
            ("topological", {}),
            ("approx2", {"engine": "sat", "max_checks": suite.approx2_max_checks}),
        ):
            try:
                cold, hit0 = cached_analyze_required_times(
                    case.network, method, cache,
                    delays=case.delays,
                    output_required=case.output_required,
                    options=options,
                )
                if cold.aborted:
                    result.skipped.append(f"cache-parity[{method}]")
                    continue
                warm, hit1 = cached_analyze_required_times(
                    case.network, method, cache,
                    delays=case.delays,
                    output_required=case.output_required,
                    options=options,
                )
            except ResourceLimitError:
                result.skipped.append(f"cache-parity[{method}]")
                continue
            except Exception as exc:  # noqa: BLE001 — any crash is a finding
                fail(
                    "engine-error",
                    f"cache[{method}]: {type(exc).__name__}: {exc}",
                )
                continue
            if hit0:
                fail("cache-parity", f"{method}: first lookup hit a fresh cache")
            if not hit1:
                fail("cache-parity", f"{method}: warm lookup missed")
                continue
            cold_row = json.dumps(cold.row(), sort_keys=True)
            warm_row = json.dumps(warm.row(), sort_keys=True)
            if cold_row != warm_row:
                fail(
                    "cache-parity",
                    f"{method}: warm != cold: {warm_row} vs {cold_row}",
                )


def _check_bdd_backend_parity(
    case: "FuzzCase",
    suite: EngineSuite,
    ran,
    fail,
    result: CaseResult,
    with_exact: bool,
) -> None:
    """Differential run of the BDD-bound engines under every kernel.

    ``exact`` and ``approx1`` are re-run once per backend (fresh manager
    each, so neither run can warm the other) and their canonical
    time-free rows are compared as JSON.  The row includes the
    non-triviality verdict, per-input required times, and the
    budget-abort status, so a kernel that diverges in *any*
    user-observable way — including aborting at a different node
    count — is a failure the shrinker can minimize.

    The ``native`` kernel joins the comparison only when it actually
    built/loaded — under its no-compiler fallback it *is* the array
    kernel, and a trivially-true three-way diff would overstate coverage.
    """
    import json

    from repro.bdd.native_backend import native_status
    from repro.cache.results import CachedRequiredResult
    from repro.core.required_time import analyze_required_times

    ran("bdd-backend-parity")
    backends = ["object", "array"]
    if native_status()[0]:
        backends.append("native")
    methods = [("approx1", {"max_nodes": suite.approx1_max_nodes})]
    if with_exact:
        methods.append(("exact", {"max_nodes": suite.exact_max_nodes}))
    try:
        baseline = topological_input_required_times(
            case.network, case.delays, case.output_required
        )
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        fail("engine-error", f"backend-parity baseline: {type(exc).__name__}: {exc}")
        return
    for method, options in methods:
        rows: dict[str, str] = {}
        for backend in backends:
            try:
                report = analyze_required_times(
                    case.network,
                    method,
                    delays=case.delays,
                    output_required=case.output_required,
                    backend=backend,
                    **options,
                )
                rows[backend] = json.dumps(
                    CachedRequiredResult.from_report(report, baseline).row(),
                    sort_keys=True,
                )
            except ResourceLimitError:
                result.skipped.append(f"bdd-backend-parity[{method}]")
                rows = {}
                break
            except Exception as exc:  # noqa: BLE001 — any crash is a finding
                fail(
                    "engine-error",
                    f"backend-parity {method}[{backend}]: "
                    f"{type(exc).__name__}: {exc}",
                )
                rows = {}
                break
        if len(rows) == len(backends):
            for backend in backends[1:]:
                if rows[backend] != rows["object"]:
                    fail(
                        "bdd-backend-parity",
                        f"{method}: object row != {backend} row: "
                        f"{rows['object']} vs {rows[backend]}",
                    )


#: Every check name the runner can emit.
ALL_CHECKS = (
    "engine-error",
    "a1-dominates-topo",
    "a1-safe-bdd",
    "a2-above-bottom[sat]",
    "a2-above-bottom[bdd]",
    "a2-cross-engine-safe[sat->bdd]",
    "a2-cross-engine-safe[bdd->sat]",
    "a2-engines-agree",
    "hierarchy",
    "exact-contains-topo",
    "oracle-topo-safe",
    "oracle-a1-safe",
    "oracle-a2-safe[sat]",
    "oracle-a2-safe[bdd]",
    "oracle-exact-minterm",
    "cache-parity",
    "bdd-backend-parity",
)

__all__ = [
    "ALL_CHECKS",
    "CaseResult",
    "CheckFailure",
    "EngineSuite",
    "run_differential",
]
