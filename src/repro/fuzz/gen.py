"""Seeded random-netlist generation for the differential fuzzer.

A :class:`FuzzProfile` bundles every knob of the generator: circuit-size
ranges, gate mix, fanin bounds, reconvergence density, the mix of
structured circuit families (layered on :mod:`repro.circuits.generators`),
and the distributions of delay models and output required times.  A
:class:`FuzzCase` is one fully specified analysis problem — network,
delay model, required times — plus the identity needed to regenerate it.

Determinism contract: ``generate_case(seed, profile, index)`` depends on
nothing but its arguments.  Every random draw flows through one
``random.Random`` seeded with the string ``"{seed}:{index}"``, so the
case sequence of a fuzzing run is identical run-to-run and across
machines, and any single case can be regenerated without replaying the
cases before it.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.circuits.generators import (
    carry_select_adder,
    carry_skip_adder,
    cascaded_mux_chain,
    parity_tree,
    random_reconvergent,
)
from repro.errors import TimingError
from repro.network.network import Network
from repro.timing.delay import DelayModel, unit_delay


@dataclass(frozen=True)
class FuzzProfile:
    """The generator's configuration (all distributions are weighted)."""

    name: str
    #: inclusive range of primary-input counts for the random family
    n_inputs: tuple[int, int] = (3, 7)
    #: inclusive range of gate counts for the random family
    n_gates: tuple[int, int] = (4, 14)
    max_fanin: int = 3
    #: weighted gate kinds for randomly grown logic
    gate_mix: tuple[tuple[str, int], ...] = (
        ("AND", 3),
        ("OR", 3),
        ("NAND", 2),
        ("NOR", 2),
        ("XOR", 2),
        ("XNOR", 1),
        ("NOT", 1),
        ("BUF", 1),
    )
    #: probability that a fanin is drawn from the most recent signals —
    #: the locality bias that produces reconvergent false-path structure
    reconvergence: float = 0.6
    #: weighted circuit families; ``random`` grows gate soup from the
    #: mixes above, the others instantiate the paper's structured
    #: false-path families, and ``composed`` grows random logic on top of
    #: a structured core
    family_mix: tuple[tuple[str, int], ...] = (
        ("random", 5),
        ("carry_skip", 2),
        ("carry_select", 1),
        ("mux_chain", 2),
        ("parity", 1),
        ("composed", 2),
    )
    #: weighted delay models: ``unit`` (the paper's), ``integer`` (a few
    #: gates slowed to 2–3), ``risefall`` (value-dependent pairs)
    delay_mix: tuple[tuple[str, int], ...] = (
        ("unit", 4),
        ("integer", 2),
        ("risefall", 1),
    )
    #: weighted output required-time shapes: ``zero`` (the paper's
    #: default), ``scalar`` (one positive constant), ``per_output``
    required_mix: tuple[tuple[str, int], ...] = (
        ("zero", 3),
        ("scalar", 2),
        ("per_output", 1),
    )
    #: probability of exposing every sink as an output (vs just one)
    multi_output: float = 0.7


#: Named profiles selectable via ``repro fuzz --profile``.
PROFILES: dict[str, FuzzProfile] = {
    "default": FuzzProfile(name="default"),
    # oracle-friendly: every case is small enough for the exhaustive
    # ternary simulator and the exact relation
    "tiny": FuzzProfile(
        name="tiny",
        n_inputs=(2, 5),
        n_gates=(3, 8),
        family_mix=(
            ("random", 5),
            ("carry_select", 1),
            ("mux_chain", 2),
            ("parity", 1),
            ("composed", 1),
        ),
    ),
    # weighted toward the adder families whose block-crossing carry paths
    # are the paper's canonical false paths
    "arith": FuzzProfile(
        name="arith",
        n_inputs=(4, 8),
        n_gates=(6, 18),
        family_mix=(
            ("random", 1),
            ("carry_skip", 4),
            ("carry_select", 3),
            ("mux_chain", 1),
            ("composed", 2),
        ),
    ),
    # long mux chains and deep random logic: many candidate times per
    # input, stressing the lattice climb and the leaf enumeration
    "deep": FuzzProfile(
        name="deep",
        n_inputs=(3, 6),
        n_gates=(10, 22),
        reconvergence=0.8,
        family_mix=(
            ("random", 3),
            ("mux_chain", 4),
            ("composed", 3),
        ),
    ),
}


@dataclass
class FuzzCase:
    """One fully specified required-time analysis problem."""

    case_id: str
    network: Network
    delays: DelayModel
    output_required: float | dict[str, float]
    profile: str
    #: the exact ``random.Random`` seed string that regenerates the case
    seed: str
    family: str = "unknown"

    @property
    def num_gates(self) -> int:
        return self.network.num_gates

    @property
    def num_inputs(self) -> int:
        return self.network.num_inputs

    def required_map(self) -> dict[str, float]:
        """Required times normalized to a per-output mapping."""
        if isinstance(self.output_required, Mapping):
            return {o: float(t) for o, t in self.output_required.items()}
        return {o: float(self.output_required) for o in self.network.outputs}


# ----------------------------------------------------------------------
# weighted draws and random gate soup
# ----------------------------------------------------------------------


def _weighted(rng: random.Random, pairs: Sequence[tuple[str, int]]) -> str:
    total = sum(w for _, w in pairs)
    pick = rng.randrange(total)
    for item, w in pairs:
        pick -= w
        if pick < 0:
            return item
    raise TimingError("empty weighted distribution")  # pragma: no cover


def _pick_fanins(
    rng: random.Random, signals: list[str], k: int, reconvergence: float
) -> list[str]:
    """Draw ``k`` distinct fanins, biased toward recent signals."""
    recent = signals[-6:]
    chosen: list[str] = []
    attempts = 0
    while len(chosen) < k and attempts < 8 * k:
        attempts += 1
        pool = recent if rng.random() < reconvergence else signals
        s = pool[rng.randrange(len(pool))]
        if s not in chosen:
            chosen.append(s)
    for s in signals:  # backfill (tiny signal lists can exhaust the draws)
        if len(chosen) >= k:
            break
        if s not in chosen:
            chosen.append(s)
    return chosen


def _grow_random_logic(
    rng: random.Random,
    net: Network,
    signals: list[str],
    n_gates: int,
    profile: FuzzProfile,
    prefix: str = "g",
) -> list[str]:
    """Append ``n_gates`` random gates over ``signals``; returns the new
    gate names in creation order."""
    created = []
    for g in range(n_gates):
        kind = _weighted(rng, profile.gate_mix)
        if kind in ("NOT", "BUF"):
            fanins = [signals[rng.randrange(len(signals))]]
        else:
            k = rng.randint(2, max(2, min(profile.max_fanin, len(signals))))
            fanins = _pick_fanins(rng, signals, k, profile.reconvergence)
        name = f"{prefix}{g}"
        net.add_gate(name, kind, fanins)
        signals.append(name)
        created.append(name)
    return created


def _sink_outputs(net: Network, created: list[str], rng, profile) -> list[str]:
    """Expose the dangling gates (or just the last one) as outputs."""
    fanouts = net.fanouts()
    sinks = [s for s in created if not fanouts[s]]
    if not sinks:
        sinks = [created[-1]]
    if len(sinks) > 1 and rng.random() >= profile.multi_output:
        sinks = [sinks[-1]]
    return sinks


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------


def _family_random(rng: random.Random, profile: FuzzProfile) -> Network:
    n_inputs = rng.randint(*profile.n_inputs)
    n_gates = rng.randint(*profile.n_gates)
    net = Network("random")
    signals = []
    for i in range(n_inputs):
        net.add_input(f"x{i}")
        signals.append(f"x{i}")
    created = _grow_random_logic(rng, net, signals, n_gates, profile)
    net.set_outputs(_sink_outputs(net, created, rng, profile))
    return net


def _family_carry_skip(rng: random.Random, profile: FuzzProfile) -> Network:
    # inputs = 1 + 2 * n_blocks * block_bits; keep within the profile cap
    hi = max(profile.n_inputs[1], 5)
    n_blocks = 2 if hi >= 9 and rng.random() < 0.5 else 1
    block_bits = 3 if hi >= 7 + 4 * (n_blocks - 1) and rng.random() < 0.5 else 2
    return carry_skip_adder(n_blocks, block_bits)


def _family_carry_select(rng: random.Random, profile: FuzzProfile) -> Network:
    hi = max(profile.n_inputs[1], 3)
    n_blocks = 2 if hi >= 5 and rng.random() < 0.4 else 1
    block_bits = 2 if hi >= 2 * n_blocks * 2 + 1 and rng.random() < 0.5 else 1
    return carry_select_adder(n_blocks, block_bits)


def _family_mux_chain(rng: random.Random, profile: FuzzProfile) -> Network:
    # inputs = stages + 2
    stages = rng.randint(2, max(2, profile.n_inputs[1] - 2))
    return cascaded_mux_chain(stages)


def _family_parity(rng: random.Random, profile: FuzzProfile) -> Network:
    return parity_tree(rng.randint(max(2, profile.n_inputs[0]), profile.n_inputs[1]))


def _family_composed(rng: random.Random, profile: FuzzProfile) -> Network:
    """Random logic grown over a structured false-path core: the core's
    internal signals feed the new gates, producing reconvergence *through*
    the false-path structure rather than beside it."""
    core_kind = _weighted(
        rng, (("mux_chain", 2), ("carry_select", 1), ("reconv", 2))
    )
    if core_kind == "mux_chain":
        core = _family_mux_chain(rng, profile)
    elif core_kind == "carry_select":
        core = _family_carry_select(rng, profile)
    else:
        core = random_reconvergent(
            max(2, profile.n_inputs[0]), max(3, profile.n_gates[0]), rng
        )
    net = core.copy("composed")
    signals = [n for n in net.topological_order()]
    n_extra = rng.randint(2, max(2, profile.n_gates[1] // 2))
    created = _grow_random_logic(rng, net, signals, n_extra, profile, prefix="ext")
    extra_outputs = [
        s for s in _sink_outputs(net, created, rng, profile)
        if s not in net.outputs
    ]
    net.set_outputs(list(net.outputs) + extra_outputs)
    return net


_FAMILIES = {
    "random": _family_random,
    "carry_skip": _family_carry_skip,
    "carry_select": _family_carry_select,
    "mux_chain": _family_mux_chain,
    "parity": _family_parity,
    "composed": _family_composed,
}


# ----------------------------------------------------------------------
# delay and required-time profiles
# ----------------------------------------------------------------------


def _draw_delays(rng: random.Random, net: Network, profile: FuzzProfile) -> DelayModel:
    kind = _weighted(rng, profile.delay_mix)
    if kind == "unit":
        return unit_delay()
    gates = sorted(n for n, node in net.nodes.items() if not node.is_input)
    count = min(len(gates), rng.randint(1, 4))
    victims = rng.sample(gates, count)
    if kind == "integer":
        overrides = {g: float(rng.randint(2, 3)) for g in victims}
    else:  # risefall: value-dependent (rise, fall) pairs
        overrides = {
            g: (float(rng.randint(1, 2)), float(rng.randint(1, 2)))
            for g in victims
        }
    return DelayModel(default=1.0, overrides=overrides)


def _draw_required(
    rng: random.Random, net: Network, profile: FuzzProfile
) -> float | dict[str, float]:
    kind = _weighted(rng, profile.required_mix)
    if kind == "zero":
        return 0.0
    if kind == "scalar":
        return float(rng.randint(1, 2))
    return {o: float(rng.randint(0, 2)) for o in net.outputs}


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def generate_case(
    seed: int | str, profile: FuzzProfile | str = "default", index: int = 0
) -> FuzzCase:
    """The ``index``-th case of the run seeded by ``seed``.

    Pure: depends only on the arguments (see the module docstring's
    determinism contract).
    """
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise TimingError(
                f"unknown fuzz profile {profile!r}; "
                f"choose from {sorted(PROFILES)}"
            ) from None
    case_seed = f"{seed}:{index}"
    rng = random.Random(case_seed)
    family = _weighted(rng, profile.family_mix)
    net = _FAMILIES[family](rng, profile)
    digest = hashlib.sha1(case_seed.encode()).hexdigest()[:8]
    case_id = f"{profile.name}-{index:04d}-{family}-{digest}"
    net.name = case_id
    net.validate()
    delays = _draw_delays(rng, net, profile)
    required = _draw_required(rng, net, profile)
    return FuzzCase(
        case_id=case_id,
        network=net,
        delays=delays,
        output_required=required,
        profile=profile.name,
        seed=case_seed,
        family=family,
    )


def iter_cases(
    seed: int | str, profile: FuzzProfile | str = "default", count: int | None = None
) -> Iterator[FuzzCase]:
    """The deterministic case sequence of one fuzzing run."""
    index = 0
    while count is None or index < count:
        yield generate_case(seed, profile, index)
        index += 1
