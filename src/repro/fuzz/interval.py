"""The ``interval`` fuzz family: interval-delay differential oracles.

Where the ``circuit`` family cross-checks the four engines against each
other on one scalar-delay problem, this family checks the interval delay
model (:class:`~repro.timing.delay.IntervalDelayModel`,
docs/DELAY_MODELS.md) against its two defining contracts:

* **point-interval degeneracy** (``interval-point-parity[<method>]``) —
  a point interval ``[d, d]`` built from the case's scalar delays must
  produce a canonical result row *byte-identical* to the scalar model's,
  per engine.  This is the central correctness oracle of the model: the
  χ machinery consumes interval delays only through their hi projection,
  so any divergence is a hole in that projection;
* **widening monotonicity** (``interval-monotonicity``) — widening every
  delay interval can only widen the topological ``[lo, hi]``
  required-time bounds (lo never rises, hi never falls).  Checked across
  a seeded chain of strictly growing widths;
* **bounds soundness** (``interval-soundness``) — the scalar required
  time always lies inside the interval bounds of any widening of its
  model (the ``widen = 0`` member of the box is the scalar assignment).

Any crash during the above is an ``interval-error`` finding.

Determinism contract (same as :mod:`repro.fuzz.gen`): the widths are a
pure function of ``(seed, profile, index)`` — drawn from one
``random.Random`` seeded with ``"{seed}:{index}:interval"`` — so a
verdict regenerates from its recorded seed alone.
"""

from __future__ import annotations

import hashlib
import json
import random
import time as _time
from dataclasses import dataclass

from repro.fuzz.checks import CaseResult, CheckFailure, EngineSuite
from repro.fuzz.gen import FuzzCase, FuzzProfile, generate_case
from repro.obs.metrics import REGISTRY
from repro.timing.delay import IntervalDelayModel, unit_delay

#: Engine methods the point-parity oracle covers, with the same
#: deterministic budgets the circuit family runs under.
def _parity_methods(suite: EngineSuite) -> list[tuple[str, dict]]:
    """(method, options) pairs for the per-engine degeneracy check."""
    return [
        ("topological", {}),
        ("exact", {"max_nodes": suite.exact_max_nodes}),
        ("approx1", {"max_nodes": suite.approx1_max_nodes}),
        ("approx2", {"engine": "sat", "max_checks": suite.approx2_max_checks}),
    ]


@dataclass
class IntervalCase:
    """One interval-delay problem: a base case plus a widening chain."""

    case_id: str
    case: FuzzCase
    #: strictly increasing interval half-widths; index 0 is always 0.0
    #: (the point model the parity oracle compares against the scalar run)
    widths: tuple[float, ...]
    #: the exact rng seed string that regenerates the width draws
    seed: str
    profile: str

    @property
    def num_inputs(self) -> int:
        return self.case.num_inputs

    @property
    def num_gates(self) -> int:
        return self.case.num_gates


def generate_interval_case(
    seed: int | str,
    profile: FuzzProfile | str = "default",
    index: int = 0,
) -> IntervalCase:
    """The ``index``-th interval case of the run seeded by ``seed``.

    Pure in its arguments (module-docstring contract): the base circuit
    is ``generate_case(seed, profile, index)`` and the widening chain is
    drawn from a rng seeded with ``"{seed}:{index}:interval"``.
    """
    case = generate_case(seed, profile, index)
    interval_seed = f"{seed}:{index}:interval"
    rng = random.Random(interval_seed)
    first = rng.choice((0.25, 0.5, 1.0))
    second = first + rng.choice((0.5, 1.0, 2.0))
    digest = hashlib.sha1(interval_seed.encode()).hexdigest()[:8]
    profile_name = profile.name if isinstance(profile, FuzzProfile) else profile
    return IntervalCase(
        case_id=f"{profile_name}-{index:04d}-interval-{digest}",
        case=case,
        widths=(0.0, first, second),
        seed=interval_seed,
        profile=profile_name,
    )


def _canonical_row(network, method, delays, output_required, options) -> dict:
    """One engine run reduced to its canonical time-free row."""
    from repro.cache.results import CachedRequiredResult
    from repro.core.required_time import (
        analyze_required_times,
        topological_input_required_times,
    )

    baseline = topological_input_required_times(network, delays, output_required)
    report = analyze_required_times(
        network, method, delays=delays, output_required=output_required, **options
    )
    return CachedRequiredResult.from_report(report, baseline).row()


def run_interval_differential(
    icase: IntervalCase,
    suite: EngineSuite | None = None,
) -> CaseResult:
    """All interval oracles on one case, reported as a
    :class:`~repro.fuzz.checks.CaseResult` over the base case."""
    from repro.core.required_time import topological_input_required_times
    from repro.timing.topological import required_time_bounds

    suite = suite or EngineSuite()
    result = CaseResult(case=icase.case)
    start = _time.monotonic()
    before = REGISTRY.snapshot()
    case = icase.case
    scalar = case.delays if case.delays is not None else unit_delay()
    point = IntervalDelayModel.from_scalar(scalar)
    required = case.output_required

    # --- point-interval ≡ scalar, per engine ---------------------------
    for method, options in _parity_methods(suite):
        check = f"interval-point-parity[{method}]"
        result.checks_run.append(check)
        try:
            scalar_row = _canonical_row(
                case.network, method, scalar, required, options
            )
            point_row = _canonical_row(
                case.network, method, point, required,
                {**options, "delay_model": "interval"},
            )
            a = json.dumps(scalar_row, sort_keys=True)
            b = json.dumps(point_row, sort_keys=True)
            if a != b:
                result.failures.append(
                    CheckFailure(
                        check,
                        f"point-interval row diverged from scalar: "
                        f"scalar={a} interval={b}",
                    )
                )
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            result.failures.append(
                CheckFailure(
                    "interval-error", f"{method}: {type(exc).__name__}: {exc}"
                )
            )

    # --- widening monotonicity + bounds soundness ----------------------
    result.checks_run.append("interval-monotonicity")
    result.checks_run.append("interval-soundness")
    try:
        scalar_req = topological_input_required_times(
            case.network, scalar, required
        )
        prev = None
        for width in icase.widths:
            model = IntervalDelayModel.from_scalar(scalar, widen=width)
            bounds = required_time_bounds(case.network, model, required)
            for pi in case.network.inputs:
                lo, hi = bounds[pi]
                if not (lo <= scalar_req[pi] <= hi):
                    result.failures.append(
                        CheckFailure(
                            "interval-soundness",
                            f"widen={width}: scalar requirement "
                            f"{scalar_req[pi]} of {pi} outside "
                            f"[{lo}, {hi}]",
                        )
                    )
                if prev is not None:
                    plo, phi = prev[1][pi]
                    if lo > plo or hi < phi:
                        result.failures.append(
                            CheckFailure(
                                "interval-monotonicity",
                                f"widen {prev[0]} -> {width} tightened "
                                f"{pi}: [{plo}, {phi}] -> [{lo}, {hi}]",
                            )
                        )
            prev = (width, bounds)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        result.failures.append(
            CheckFailure(
                "interval-error", f"bounds: {type(exc).__name__}: {exc}"
            )
        )

    result.elapsed = _time.monotonic() - start
    result.metrics = REGISTRY.snapshot().diff(before)
    return result


#: Every check name the interval differential can emit.
INTERVAL_CHECKS = (
    "interval-point-parity[topological]",
    "interval-point-parity[exact]",
    "interval-point-parity[approx1]",
    "interval-point-parity[approx2]",
    "interval-monotonicity",
    "interval-soundness",
    "interval-error",
)

__all__ = [
    "INTERVAL_CHECKS",
    "IntervalCase",
    "generate_interval_case",
    "run_interval_differential",
]
