"""Differential fuzzing of the required-time engines.

The paper's central claims are *ordering theorems* — the exact relation
is provably no tighter than approximation 1, which is no tighter than
approximation 2, which is no tighter than the topological baseline — and
the repository carries four independent engines plus two independent
semantic oracles (the ternary XBD0 simulator and the SAT validator) that
must all agree.  This package turns that redundancy into an adversarial
test harness:

* :mod:`repro.fuzz.gen` — a seeded, fully deterministic random-netlist
  generator with configurable gate mix, fanin, reconvergence density,
  delay models, and required-time profiles;
* :mod:`repro.fuzz.checks` — the differential runner: per circuit, run
  every engine, assert the looseness ordering, cross-check against the
  ternary oracle on small instances, and compare BDD vs SAT validation;
* :mod:`repro.fuzz.shrink` — a delta-debugging shrinker that minimizes a
  failing netlist while preserving the failure;
* :mod:`repro.fuzz.corpus` — the persistent repro format (minimal BLIF +
  JSON metadata) and the replayer that turns every past failure into a
  permanent regression test;
* :mod:`repro.fuzz.runner` — the budgeted generate → check → shrink →
  save loop behind ``repro fuzz`` and the nightly CI job;
* :mod:`repro.fuzz.eco` — the ``eco`` family: seeded *edit traces*
  replayed through an incremental :class:`~repro.eco.NetworkSession`
  against a full-recompute parity oracle after every edit;
* :mod:`repro.fuzz.interval` — the ``interval`` family: interval-delay
  cases checked for point-interval/scalar canonical-row parity per
  engine and for widening monotonicity of the ``[lo, hi]``
  required-time bounds (docs/DELAY_MODELS.md).
"""

from repro.fuzz.checks import CaseResult, CheckFailure, EngineSuite, run_differential
from repro.fuzz.corpus import (
    CorpusEntry,
    load_corpus,
    replay_entry,
    save_eco_repro,
    save_repro,
)
from repro.fuzz.eco import (
    ECO_CHECKS,
    EcoTrace,
    eco_failure_predicate,
    edits_replay_cleanly,
    generate_eco_trace,
    run_eco_differential,
    shrink_eco_trace,
)
from repro.fuzz.gen import PROFILES, FuzzCase, FuzzProfile, generate_case, iter_cases
from repro.fuzz.interval import (
    INTERVAL_CHECKS,
    IntervalCase,
    generate_interval_case,
    run_interval_differential,
)
from repro.fuzz.runner import FuzzReport, FuzzRunner
from repro.fuzz.shrink import case_candidates, failure_predicate, shrink_case

__all__ = [
    "CaseResult",
    "CheckFailure",
    "CorpusEntry",
    "ECO_CHECKS",
    "EcoTrace",
    "EngineSuite",
    "FuzzCase",
    "FuzzProfile",
    "FuzzReport",
    "FuzzRunner",
    "INTERVAL_CHECKS",
    "IntervalCase",
    "PROFILES",
    "case_candidates",
    "eco_failure_predicate",
    "edits_replay_cleanly",
    "failure_predicate",
    "generate_case",
    "generate_eco_trace",
    "generate_interval_case",
    "iter_cases",
    "load_corpus",
    "replay_entry",
    "run_differential",
    "run_eco_differential",
    "run_interval_differential",
    "save_eco_repro",
    "save_repro",
    "shrink_case",
    "shrink_eco_trace",
]
