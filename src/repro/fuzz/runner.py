"""The budgeted fuzzing loop: generate → check → shrink → save.

:class:`FuzzRunner` drives the whole pipeline.  The case sequence is a
pure function of ``(seed, profile)`` — budgets only decide how far along
the sequence a run gets — so two runs with the same seed and case budget
produce identical circuits and identical verdicts, and a failure found
by the nightly job is regenerated locally from its recorded seed alone.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.fuzz.checks import CaseResult, CheckFailure, EngineSuite, run_differential
from repro.fuzz.corpus import save_eco_repro, save_repro
from repro.fuzz.gen import FuzzProfile, generate_case
from repro.fuzz.shrink import failure_predicate, shrink_case
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span


@dataclass
class CaseVerdict:
    """One line of a fuzzing report."""

    index: int
    case_id: str
    family: str
    num_inputs: int
    num_gates: int
    ok: bool
    failed_checks: list[str] = field(default_factory=list)
    #: gate count after shrinking (None when the case passed or
    #: shrinking was disabled)
    shrunk_gates: int | None = None
    #: corpus base name of the saved repro, when one was written
    repro: str | None = None
    elapsed: float = 0.0
    #: per-case registry deltas (``bdd.*`` / ``sat.*`` / ``approx2.*``),
    #: bracketed around this case alone — see ``CaseResult.metrics``
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL " + ",".join(self.failed_checks)
        line = (
            f"[{self.index:4d}] {self.case_id:<40} "
            f"{self.num_inputs}PI/{self.num_gates}G  {status}"
        )
        if self.shrunk_gates is not None:
            line += f"  (shrunk to {self.shrunk_gates} gates)"
        if self.repro is not None:
            line += f"  -> {self.repro}"
        return line


@dataclass
class FuzzReport:
    """The outcome of one fuzzing run."""

    seed: str
    profile: str
    verdicts: list[CaseVerdict] = field(default_factory=list)
    elapsed: float = 0.0
    #: why the loop ended: "budget" (case budget spent), "time"
    #: (wall-clock cap), or "stop-on-failure"
    stopped: str = "budget"
    #: registry deltas over the whole run (``--metrics-json`` payload)
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def num_cases(self) -> int:
        return len(self.verdicts)

    @property
    def num_failures(self) -> int:
        return sum(1 for v in self.verdicts if not v.ok)

    @property
    def ok(self) -> bool:
        return self.num_failures == 0

    def summary(self) -> str:
        return (
            f"fuzz(seed={self.seed}, profile={self.profile}): "
            f"{self.num_cases} cases, {self.num_failures} failures, "
            f"{self.elapsed:.1f}s ({self.stopped})"
        )

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "cases": self.num_cases,
            "failures": self.num_failures,
            "elapsed": round(self.elapsed, 3),
            "stopped": self.stopped,
            "metrics": self.metrics,
            "verdicts": [
                {
                    "index": v.index,
                    "case_id": v.case_id,
                    "family": v.family,
                    "inputs": v.num_inputs,
                    "gates": v.num_gates,
                    "ok": v.ok,
                    "failed_checks": v.failed_checks,
                    "shrunk_gates": v.shrunk_gates,
                    "repro": v.repro,
                    "metrics": v.metrics,
                }
                for v in self.verdicts
            ],
        }


class FuzzRunner:
    """Generate/check/shrink/save over one deterministic case sequence."""

    def __init__(
        self,
        seed: int | str = 0,
        budget: int = 25,
        profile: FuzzProfile | str = "default",
        time_budget: float | None = None,
        suite: EngineSuite | None = None,
        corpus_dir: str | None = None,
        shrink: bool = True,
        stop_on_failure: bool = False,
        oracle_max_inputs: int = 6,
        exact_max_inputs: int = 7,
        max_shrink_evals: int = 300,
        jobs: int = 1,
        family: str = "circuit",
        log=None,
    ):
        self.seed = seed
        self.budget = budget
        self.profile = profile
        self.time_budget = time_budget
        self.suite = suite or EngineSuite()
        self.corpus_dir = corpus_dir
        self.shrink = shrink
        self.stop_on_failure = stop_on_failure
        self.oracle_max_inputs = oracle_max_inputs
        self.exact_max_inputs = exact_max_inputs
        self.max_shrink_evals = max_shrink_evals
        #: case-loop parallelism: 1 = serial (reference semantics), N>1 =
        #: a warm worker pool runs ``run_differential`` per case, 0 = one
        #: worker per core.  Cases are deterministic functions of
        #: (seed, profile, index), so workers regenerate them from the
        #: index alone and the verdict sequence is identical to serial.
        self.jobs = jobs
        #: what each case is: ``circuit`` (one static analysis problem,
        #: the classic differential run), ``eco`` (a base circuit plus
        #: a seeded edit trace checked for incremental-vs-full-recompute
        #: parity after every edit — see :mod:`repro.fuzz.eco`), or
        #: ``interval`` (a base circuit checked for point-interval/scalar
        #: row parity per engine plus widening monotonicity — see
        #: :mod:`repro.fuzz.interval`)
        self.family = family
        #: optional per-verdict callback (the CLI's live output)
        self.log = log

    def _profile_name(self) -> str:
        return (
            self.profile.name
            if isinstance(self.profile, FuzzProfile)
            else self.profile
        )

    def _parallel_capable(self) -> bool:
        """Workers rebuild the suite from its budgets; a subclassed suite
        (mutation tests inject those) cannot cross the process boundary."""
        return self.jobs != 1 and type(self.suite) is EngineSuite

    def run(self) -> FuzzReport:
        if self.family not in ("circuit", "eco", "interval"):
            from repro.errors import ReproError

            raise ReproError(
                f"unknown fuzz family {self.family!r}; "
                f"choose from ['circuit', 'eco', 'interval']"
            )
        start = _time.monotonic()
        before = REGISTRY.snapshot()
        cases_metric = REGISTRY.counter("fuzz.cases")
        failures_metric = REGISTRY.counter("fuzz.failures")
        report = FuzzReport(seed=str(self.seed), profile=self._profile_name())
        if self.family == "eco":
            # eco traces replay serially: each case already fans out into
            # one session per method plus a full-recompute oracle per edit
            self._run_eco(report, start, cases_metric, failures_metric)
            report.elapsed = _time.monotonic() - start
            report.metrics = REGISTRY.snapshot().diff(before)
            return report
        if self.family == "interval":
            # interval cases run serially: each already runs every engine
            # twice (scalar vs point-interval) for the parity oracle
            self._run_interval(report, start, cases_metric, failures_metric)
            report.elapsed = _time.monotonic() - start
            report.metrics = REGISTRY.snapshot().diff(before)
            return report
        if self._parallel_capable():
            self._run_parallel(report, start, cases_metric, failures_metric)
            report.elapsed = _time.monotonic() - start
            report.metrics = REGISTRY.snapshot().diff(before)
            return report
        for index in range(self.budget):
            if (
                self.time_budget is not None
                and _time.monotonic() - start > self.time_budget
            ):
                report.stopped = "time"
                break
            case = generate_case(self.seed, self.profile, index)
            with span("fuzz.case", case=case.case_id, index=index):
                result = run_differential(
                    case,
                    self.suite,
                    oracle_max_inputs=self.oracle_max_inputs,
                    exact_max_inputs=self.exact_max_inputs,
                )
                verdict = self._verdict(index, result)
            cases_metric.inc()
            if not verdict.ok:
                failures_metric.inc()
            report.verdicts.append(verdict)
            if self.log is not None:
                self.log(verdict)
            if not verdict.ok and self.stop_on_failure:
                report.stopped = "stop-on-failure"
                break
        report.elapsed = _time.monotonic() - start
        report.metrics = REGISTRY.snapshot().diff(before)
        return report

    def _run_eco(self, report, start, cases_metric, failures_metric) -> None:
        """The serial eco-family loop: generate trace → replay → shrink.

        Structurally the serial circuit loop with the eco generator and
        differential swapped in; verdicts reuse :class:`CaseVerdict`
        with ``shrunk_gates`` recording the *shrunk edit count* (the
        quantity the eco shrinker minimizes).
        """
        from repro.fuzz.eco import (
            eco_failure_predicate,
            generate_eco_trace,
            run_eco_differential,
            shrink_eco_trace,
        )

        for index in range(self.budget):
            if (
                self.time_budget is not None
                and _time.monotonic() - start > self.time_budget
            ):
                report.stopped = "time"
                break
            trace = generate_eco_trace(self.seed, self.profile, index)
            with span("fuzz.eco_case", trace=trace.trace_id, index=index):
                result = run_eco_differential(trace, self.suite)
            verdict = CaseVerdict(
                index=index,
                case_id=trace.trace_id,
                family="eco",
                num_inputs=trace.case.num_inputs,
                num_gates=trace.case.num_gates,
                ok=result.ok,
                failed_checks=result.failed_checks,
                elapsed=result.elapsed,
                metrics=result.metrics,
            )
            if not verdict.ok:
                shrunk = trace
                if self.shrink:
                    predicate = eco_failure_predicate(
                        self.suite, checks=set(verdict.failed_checks)
                    )
                    shrunk = shrink_eco_trace(
                        trace, predicate,
                        max_evals=min(self.max_shrink_evals, 100),
                    )
                    verdict.shrunk_gates = shrunk.num_edits
                if self.corpus_dir is not None:
                    final = run_eco_differential(shrunk, self.suite)
                    use = final.failures if final.failures else result.failures
                    verdict.repro = save_eco_repro(
                        self.corpus_dir, shrunk, use, original=trace
                    )
            cases_metric.inc()
            if not verdict.ok:
                failures_metric.inc()
            report.verdicts.append(verdict)
            if self.log is not None:
                self.log(verdict)
            if not verdict.ok and self.stop_on_failure:
                report.stopped = "stop-on-failure"
                break

    def _run_interval(
        self, report, start, cases_metric, failures_metric
    ) -> None:
        """The serial interval-family loop: generate → differential → save.

        Interval findings are not shrunk (the base circuit is the whole
        repro — the widths regenerate from the recorded seed); failures
        persist to the corpus like circuit findings when ``corpus_dir``
        is set.
        """
        from repro.fuzz.interval import (
            generate_interval_case,
            run_interval_differential,
        )

        for index in range(self.budget):
            if (
                self.time_budget is not None
                and _time.monotonic() - start > self.time_budget
            ):
                report.stopped = "time"
                break
            icase = generate_interval_case(self.seed, self.profile, index)
            with span("fuzz.interval_case", case=icase.case_id, index=index):
                result = run_interval_differential(icase, self.suite)
            verdict = CaseVerdict(
                index=index,
                case_id=icase.case_id,
                family="interval",
                num_inputs=icase.num_inputs,
                num_gates=icase.num_gates,
                ok=result.ok,
                failed_checks=result.failed_checks,
                elapsed=result.elapsed,
                metrics=result.metrics,
            )
            if not verdict.ok and self.corpus_dir is not None:
                verdict.repro = save_repro(
                    self.corpus_dir, icase.case, result.failures,
                    original=icase.case,
                )
            cases_metric.inc()
            if not verdict.ok:
                failures_metric.inc()
            report.verdicts.append(verdict)
            if self.log is not None:
                self.log(verdict)
            if not verdict.ok and self.stop_on_failure:
                report.stopped = "stop-on-failure"
                break

    def _run_parallel(self, report, start, cases_metric, failures_metric) -> None:
        """The pooled case loop (``jobs != 1``).

        Cases are dispatched in chunks so the wall-clock budget and
        ``stop_on_failure`` keep deterministic cut points: a chunk either
        runs entirely or not at all, and on a failure the verdict list is
        truncated at the first failing index — the same prefix a serial
        stop-on-failure run reports.  Shrinking and corpus writes happen
        in the parent, serially, on regenerated cases.
        """
        from repro.parallel.pool import WorkerPool, default_jobs
        from repro.parallel.tasks import Task

        jobs = self.jobs if self.jobs > 0 else default_jobs()
        profile_name = self._profile_name()
        suite_args = {
            "exact_max_nodes": self.suite.exact_max_nodes,
            "approx1_max_nodes": self.suite.approx1_max_nodes,
            "approx2_max_checks": self.suite.approx2_max_checks,
        }

        def task_for(index: int) -> Task:
            return Task(
                task_id=f"case-{index}",
                kind="fuzz_case",
                payload={
                    "seed": self.seed,
                    "profile": profile_name,
                    "index": index,
                    "suite": suite_args,
                    "oracle_max_inputs": self.oracle_max_inputs,
                    "exact_max_inputs": self.exact_max_inputs,
                },
                circuit_key=f"fuzz:{self.seed}:{profile_name}",
                cost=1.0,
            )

        chunk_size = max(jobs * 2, 4)
        with WorkerPool(jobs) as pool:
            for lo in range(0, self.budget, chunk_size):
                if (
                    self.time_budget is not None
                    and _time.monotonic() - start > self.time_budget
                ):
                    report.stopped = "time"
                    break
                chunk = [task_for(i) for i in range(lo, min(lo + chunk_size, self.budget))]
                with span("fuzz.chunk", first=lo, size=len(chunk)):
                    batch = pool.run(chunk)
                failed_here = False
                for outcome in batch.outcomes:
                    verdict = self._verdict_from_outcome(outcome)
                    cases_metric.inc()
                    if not verdict.ok:
                        failures_metric.inc()
                        failed_here = True
                    report.verdicts.append(verdict)
                    if self.log is not None:
                        self.log(verdict)
                    if not verdict.ok and self.stop_on_failure:
                        break
                if failed_here and self.stop_on_failure:
                    report.stopped = "stop-on-failure"
                    first_bad = next(
                        i for i, v in enumerate(report.verdicts) if not v.ok
                    )
                    del report.verdicts[first_bad + 1 :]
                    break

    def _verdict_from_outcome(self, outcome) -> CaseVerdict:
        """A pooled case's verdict; failures re-run the serial tail."""
        value = outcome.value
        if not outcome.ok or value is None:
            # the pool already retried worker faults; a residual error is
            # recorded as a failed verdict, never raised
            return CaseVerdict(
                index=int(outcome.task_id.rsplit("-", 1)[1]),
                case_id=outcome.task_id,
                family="unknown",
                num_inputs=0,
                num_gates=0,
                ok=False,
                failed_checks=["pool-error"],
                elapsed=outcome.elapsed,
                metrics=outcome.metrics,
            )
        verdict = CaseVerdict(
            index=value.index,
            case_id=value.case_id,
            family=value.family,
            num_inputs=value.num_inputs,
            num_gates=value.num_gates,
            ok=value.ok,
            failed_checks=list(value.failed_checks),
            elapsed=value.elapsed,
            metrics=dict(value.metrics),
        )
        if verdict.ok:
            return verdict
        # regenerate the deterministic case in the parent for the serial
        # shrink/save tail (identical to what the serial loop would do)
        case = generate_case(self.seed, self.profile, value.index)
        failures = [CheckFailure(check, detail) for check, detail in value.failures]
        return self._shrink_and_save(case, failures, verdict)

    def _verdict(self, index: int, result: CaseResult) -> CaseVerdict:
        case = result.case
        verdict = CaseVerdict(
            index=index,
            case_id=case.case_id,
            family=case.family,
            num_inputs=case.num_inputs,
            num_gates=case.num_gates,
            ok=result.ok,
            failed_checks=result.failed_checks,
            elapsed=result.elapsed,
            metrics=result.metrics,
        )
        if result.ok:
            return verdict
        return self._shrink_and_save(case, result.failures, verdict)

    def _shrink_and_save(
        self, case, failures: list[CheckFailure], verdict: CaseVerdict
    ) -> CaseVerdict:
        """The serial failure tail: delta-debug and persist one repro."""
        shrunk = case
        if self.shrink:
            predicate = failure_predicate(
                self.suite,
                checks=set(verdict.failed_checks),
                oracle_max_inputs=self.oracle_max_inputs,
                exact_max_inputs=self.exact_max_inputs,
            )
            shrunk = shrink_case(case, predicate, max_evals=self.max_shrink_evals)
            verdict.shrunk_gates = shrunk.num_gates
        if self.corpus_dir is not None:
            # re-run on the shrunk case so the recorded failures describe
            # the committed netlist, not its ancestor
            final = run_differential(
                shrunk,
                self.suite,
                oracle_max_inputs=self.oracle_max_inputs,
                exact_max_inputs=self.exact_max_inputs,
            )
            use = final.failures if final.failures else failures
            verdict.repro = save_repro(
                self.corpus_dir, shrunk, use, original=case
            )
        return verdict


__all__ = ["CaseVerdict", "FuzzReport", "FuzzRunner"]
