"""The array BDD kernel: flat node storage, iterative apply, compacting GC.

This is the ``array`` backend behind :func:`repro.bdd.create_manager`.
It keeps the full public surface (and the id-level conventions) of
:class:`repro.bdd.manager.BddManager` — same operation semantics, same
short-circuits, same ``statistics()`` shape, same ``bdd.*`` telemetry —
while replacing every hot data structure and recursion:

* **Node storage** stays the three parallel lists ``_var``/``_low``/
  ``_high`` but is kept *dense*: there is no free list, and garbage
  collection compacts the arrays in place (see below).  CPython list
  indexing of small ints is the fastest random-access store available
  without native code; :meth:`ArrayBddManager.to_arrays` exports the
  same data as numpy ``int32`` arrays for vectorized passes.
* **Unique tables** are per-variable open-addressed hash tables
  (:class:`_UniqueTable`): parallel ``keys``/``vals`` slot lists, the
  key packed as ``(low << 32) | high`` (never 0, since ``low == high``
  nodes are reduced away before insertion — so 0 doubles as the empty
  sentinel), Fibonacci-style slot hash ``((low * 0x9E3779B1) ^ high)``,
  linear probing, growth at 2/3 load.
* **Computed tables** for the hot operations are direct-mapped
  open-addressed caches (:class:`_DirectCache`): fixed-power-of-two
  slot arrays with a *generation* tag per slot, so invalidation is an
  O(1) generation bump instead of an O(n) clear, and an overwrite of a
  live entry is the (counted) eviction policy.  The cold operations
  (``ite``/``restrict``/``compose``, whose keys are structured tuples)
  keep the parent's bounded-dict tables.
* **Apply loops** are iterative with an explicit frame stack and a
  result stack — no Python call per recursion step, and the per-call
  attribute hoists of the recursive kernel are paid once per top-level
  operation instead of once per node visited.  The short-circuit
  structure of the recursive kernel is preserved *exactly* (a TRUE low
  cofactor under an ∃-quantified level never expands the high branch,
  dually for ∀), so both backends create identical node sequences and
  hit resource budgets at identical points.
* **Garbage collection** is tombstone-first mark/sweep with deferred
  compaction: every collection marks from the external roots and
  tombstones dead unique-table entries in place — O(dead), ids
  untouched — leaving zeroed dead rows in the node arrays.  Only once
  the accumulated dead rows outnumber the live ones does the
  mark-and-compact pass run: build an old→new remap, rewrite the
  arrays densely, rebuild the unique tables sized to their survivors,
  and remap every external id — the refcount table and all live
  :class:`BddNode` handles, which the manager tracks as a periodically
  purged list of weak references (a ``WeakSet`` would dedup handles
  that hash equal while owning distinct ``id`` fields).  Node *ids*
  are therefore stable across sweeps but not across compactions;
  everything observable at the function level is unchanged.

See docs/BDD_BACKENDS.md for the full layout and the measured
crossover between the backends.
"""

from __future__ import annotations

import weakref

import numpy as _np

from repro.bdd.manager import (
    _TERMINAL_VAR,
    DEFAULT_CACHE_BOUND,
    FALSE,
    TRUE,
    BddManager,
    BddNode,
)
from repro.errors import BddError, ResourceLimitError

#: Knuth multiplicative hash constants for slot indexing.
_H1 = 0x9E3779B1
_H2 = 0x85EBCA77

#: hard ceiling on computed-cache slots per operation (2^18 slots);
#: beyond this the direct-mapped overwrite policy is the eviction story.
_MAX_CACHE_SLOTS = 1 << 18

#: frame tags of the iterative apply loops
_EXPAND = 0


def _pow2(n: int) -> int:
    size = 1
    while size < n:
        size <<= 1
    return size


def _rehash(old_keys: list[int], old_vals: list[int], slots: int):
    """Rehash the resident entries of an open-addressed table.

    Returns fresh ``(keys, vals)`` slot lists of ``slots`` slots with
    tombstones dropped.  The home slot of every resident is computed
    vectorized (the hash only depends on the low bits of the product,
    so 64-bit wraparound is exact); only collision probing runs in the
    interpreter, and at the post-grow load factor most entries place on
    their home slot.
    """
    mask = slots - 1
    keys = [0] * slots
    vals = [0] * slots
    if len(old_keys) < 4096:
        # below numpy's conversion break-even, rehash in plain Python
        for idx, packed in enumerate(old_keys):
            if packed > 0:
                j = (((packed >> 32) * _H1) ^ (packed & 0xFFFFFFFF)) & mask
                while keys[j]:
                    j = (j + 1) & mask
                keys[j] = packed
                vals[j] = old_vals[idx]
        return keys, vals
    kn = _np.array(old_keys, dtype=_np.int64)
    live = _np.nonzero(kn > 0)[0]
    if live.size:
        packed = kn[live].astype(_np.uint64)
        home = (
            ((packed >> _np.uint64(32)) * _np.uint64(_H1))
            ^ (packed & _np.uint64(0xFFFFFFFF))
        ) & _np.uint64(mask)
        vn = _np.array(old_vals, dtype=_np.int64)[live]
        for p, j, v in zip(kn[live].tolist(), home.tolist(), vn.tolist()):
            while keys[j]:
                j = (j + 1) & mask
            keys[j] = p
            vals[j] = v
    return keys, vals


class _UniqueTable:
    """One variable's open-addressed unique table.

    ``keys[j]`` holds the packed ``(low << 32) | high`` of the node in
    slot ``j``, ``vals[j]`` its id.  Slot states: ``0`` = never used
    (probe stop), ``-1`` = tombstone of a swept node (probes continue
    straight past it, so the hot inline probes need no tombstone
    awareness at all), ``> 0`` = resident.  The GC sweep tombstones
    dead entries in place — O(dead), ids untouched — and a table whose
    tombstones exceed a quarter of its slots is rehashed at the same
    capacity (:meth:`rebuild`) so probe chains stay short and the
    load-factor triggers stay honest.
    """

    __slots__ = ("keys", "vals", "size", "tombs", "mask")

    def __init__(self, capacity: int = 8):
        slots = _pow2(max(8, capacity))
        self.keys: list[int] = [0] * slots
        self.vals: list[int] = [0] * slots
        self.size = 0
        self.tombs = 0
        self.mask = slots - 1

    def reset(self, capacity: int) -> None:
        """Empty the table, pre-sized for ``capacity`` entries.

        Never shrinks: a GC rebuild sized exactly to its survivors
        would re-grow step by step as the table refills (measured as the
        dominant cost of GC-heavy runs), so a table keeps its peak slot
        count for the life of the manager.
        """
        slots = max(_pow2(max(8, capacity * 2)), self.mask + 1)
        self.keys = [0] * slots
        self.vals = [0] * slots
        self.size = 0
        self.tombs = 0
        self.mask = slots - 1

    def lookup(self, low: int, high: int) -> int | None:
        key = (low << 32) | high
        keys = self.keys
        mask = self.mask
        j = ((low * _H1) ^ high) & mask
        while True:
            slot = keys[j]
            if slot == key:
                return self.vals[j]
            if slot == 0:
                return None
            j = (j + 1) & mask

    def insert(self, low: int, high: int, node_id: int) -> None:
        """Insert a (low, high) -> id entry assumed not present."""
        keys = self.keys
        mask = self.mask
        j = ((low * _H1) ^ high) & mask
        while keys[j] > 0:
            j = (j + 1) & mask
        if keys[j] < 0:
            self.tombs -= 1
        keys[j] = (low << 32) | high
        self.vals[j] = node_id
        self.size += 1
        if (self.size + self.tombs) * 3 >= (mask + 1) * 2:
            self.grow()

    def grow(self) -> None:
        """Grow the slot count and rehash every resident entry.

        Mid-size tables quadruple — repeated rehashing while a table
        climbs is a measured hot spot on node-heavy runs, and the
        geometric sum of rehash work drops from 2× to 1.33× the final
        size — while large tables double to bound slot memory.
        """
        slots = self.mask + 1
        slots <<= 1 if slots >= (1 << 16) else 2
        self.keys, self.vals = _rehash(self.keys, self.vals, slots)
        self.tombs = 0
        self.mask = slots - 1

    def rebuild(self) -> None:
        """Rehash at the same capacity, dropping tombstones."""
        self.keys, self.vals = _rehash(self.keys, self.vals, self.mask + 1)
        self.tombs = 0

    def node_ids(self) -> list[int]:
        """The ids of every resident node (unordered)."""
        keys = self.keys
        vals = self.vals
        return [vals[j] for j in range(len(keys)) if keys[j] > 0]


class _DirectCache:
    """A direct-mapped computed table with generation-tag invalidation.

    Three parallel slot lists: packed integer ``keys``, result ``vals``
    and the ``gens`` tag a slot was last written under.  A slot is live
    iff its tag equals the table's current generation, so
    :meth:`clear` — the invalidation entry point shared with the dict
    tables — is a single generation bump.  Collisions overwrite (the
    classical direct-mapped cache policy) and count as evictions.

    The table starts small and grows only *between* top-level apply
    calls (:meth:`maybe_grow`): the apply loops hoist the slot lists
    into locals, so in-flight growth would strand their writes.
    """

    __slots__ = (
        "name",
        "keys",
        "vals",
        "gens",
        "gen",
        "mask",
        "max_slots",
        "count",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, name: str, bound: int, initial: int = 1024):
        self.name = name
        self.max_slots = _pow2(max(16, min(bound, _MAX_CACHE_SLOTS)))
        slots = min(_pow2(max(16, initial)), self.max_slots)
        self.keys: list[int] = [0] * slots
        self.vals: list[int] = [0] * slots
        self.gens: list[int] = [0] * slots
        self.gen = 1
        self.mask = slots - 1
        self.count = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def maybe_grow(self) -> None:
        """Quadruple the slot count when half full (called between ops).

        Growth discards the resident entries (their slots are derived
        from the un-packed key parts, which differ per operation); the
        transient misses are far cheaper than rehash plumbing, and each
        table grows at most four times in its life.
        """
        slots = self.mask + 1
        if self.count * 4 >= slots and slots < self.max_slots:  # 25% load
            slots = min(slots << 2, self.max_slots)
            self.keys = [0] * slots
            self.vals = [0] * slots
            self.gens = [0] * slots
            self.gen = 1
            self.mask = slots - 1
            self.count = 0

    def clear(self) -> None:
        self.gen += 1
        self.count = 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.count,
        }


class ArrayBddManager(BddManager):
    """The array-kernel BDD manager (backend name ``"array"``).

    Drop-in replacement for :class:`BddManager`; see the module
    docstring for what is different under the hood.  The enumeration,
    statistics, and handle machinery are inherited unchanged.
    """

    def __init__(
        self,
        auto_reorder: bool = False,
        reorder_threshold: int = 50_000,
        max_nodes: int | None = None,
        cache_bound: int = DEFAULT_CACHE_BOUND,
    ):
        super().__init__(auto_reorder, reorder_threshold, max_nodes, cache_bound)
        # replace the hot computed tables with direct-mapped caches; the
        # structured-key cold tables (ite/restrict/compose) stay dicts
        self._not_tab = _DirectCache("not", cache_bound)
        self._and_tab = _DirectCache("and", cache_bound)
        self._or_tab = _DirectCache("or", cache_bound)
        self._xor_tab = _DirectCache("xor", cache_bound)
        self._exists_tab = _DirectCache("exists", cache_bound)
        self._andex_tab = _DirectCache("and_exists", cache_bound)
        self._andall_tab = _DirectCache("and_forall", cache_bound)
        self._tables = (
            self._not_tab,
            self._and_tab,
            self._or_tab,
            self._xor_tab,
            self._ite_tab,
            self._exists_tab,
            self._andex_tab,
            self._andall_tab,
            self._restrict_tab,
            self._compose_tab,
        )
        # open-addressed unique tables (parent initialized dicts, but no
        # variable exists yet at this point)
        self._unique: list[_UniqueTable] = []
        # quantified level-tuples interned to small ints for key packing
        self._levels_intern: dict[tuple[int, ...], int] = {}
        # One weakref per live handle, so compacting GC can remap their
        # ids.  A WeakSet would be wrong here: BddNode compares (and
        # hashes) by node id, so distinct handle objects sharing an id
        # would be deduplicated and all but one would miss the remap.
        self._handles: list["weakref.ref[BddNode]"] = []
        self._handles_purge_at = 1024
        # Rows of swept-but-not-yet-compacted nodes still occupying the
        # node arrays.  ``len(self._var) - self._dead_rows`` is exactly
        # the object kernel's ``len(self._var) - len(self._free)``, so
        # the budget cap below keeps ResourceLimitError timing
        # bit-identical across backends.
        self._dead_rows = 0
        self._node_cap = max_nodes

    # ------------------------------------------------------------------
    # wrapping / variables
    # ------------------------------------------------------------------
    def _wrap(self, node_id: int) -> BddNode:
        node = super()._wrap(node_id)
        handles = self._handles
        handles.append(weakref.ref(node))
        if len(handles) > self._handles_purge_at:
            # amortized purge of dead references (no per-ref callbacks)
            self._handles = handles = [r for r in handles if r() is not None]
            self._handles_purge_at = max(1024, 2 * len(handles))
        return node

    def add_var(self, name: str) -> BddNode:
        """Declare a new variable at the bottom of the current order."""
        if name in self._name2var:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._names)
        self._names.append(name)
        self._name2var[name] = var
        self._unique.append(_UniqueTable())
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return self._wrap(self._mk(var, FALSE, TRUE))

    def _levels_id(self, levels: tuple[int, ...]) -> int:
        """A small interned int standing for a quantified-levels tuple."""
        intern = self._levels_intern
        lid = intern.get(levels)
        if lid is None:
            lid = len(intern) + 1
            intern[levels] = lid
        return lid

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        # The out-of-line version, for the inherited recursions
        # (ite/restrict/compose), level swaps, and helper modules; the
        # apply loops below inline the same probe.
        if low == high:
            return low
        ut = self._unique[var]
        keys = ut.keys
        mask = ut.mask
        key = (low << 32) | high
        j = ((low * _H1) ^ high) & mask
        while True:
            slot = keys[j]
            if slot == key:
                return ut.vals[j]
            if slot == 0:
                break
            j = (j + 1) & mask
        var_ = self._var
        if self._node_cap is not None and len(var_) > self._node_cap:
            raise ResourceLimitError(
                f"BDD node budget exceeded ({self.max_nodes} nodes)"
            )
        node_id = len(var_)
        var_.append(var)
        self._low.append(low)
        self._high.append(high)
        keys[j] = key
        ut.vals[j] = node_id
        size = ut.size + 1
        ut.size = size
        if size * 3 >= (mask + 1) * 2:
            ut.grow()
        self._nodes_created += 1
        live = self._nodes_live + 1
        self._nodes_live = live
        if live > self._peak_live:
            self._peak_live = live
        return node_id

    # ------------------------------------------------------------------
    # iterative apply loops
    # ------------------------------------------------------------------
    # The machine keeps one *current* sub-problem in locals — already
    # normalized, non-terminal, and counted as a cache miss — and chains
    # the low cofactor directly into the next iteration (the "left
    # spine" never touches the frame stack).  Both cofactors are first
    # resolved inline: terminal rules always, plus a computed-cache
    # probe for the low child (which runs at exactly the same sequence
    # point as the recursive kernel's probe would).  The high child's
    # probe is deferred to a frame popped *after* the low subtree
    # completes, because the low subtree may populate the cache entry in
    # between — probing early would diverge from the recursive kernel's
    # node-creation order.  Frame tags:
    #
    #   1 — combine: pop the low result from ``rs``; ``r`` is high
    #   2 — high expand: normalized + non-terminal, probe pending
    #   3 — combine with an inline-resolved high result
    #   4 — deferred full ladder (XOR's TRUE cofactor → NOT call)
    #
    # Counter deltas live in locals and are flushed in ``finally`` —
    # additive, so nested operation calls (e.g. the OR inside an ∃
    # combine) compose correctly even when a resource budget aborts the
    # loop midway.

    def _not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        tab = self._not_tab
        tab.maybe_grow()
        ckeys = tab.keys
        cvals = tab.vals
        cgens = tab.gens
        cgen = tab.gen
        cmask = tab.mask
        i = (f * _H1) & cmask
        if cgens[i] == cgen and ckeys[i] == f:
            tab.hits += 1
            return cvals[i]
        var_ = self._var
        low_ = self._low
        high_ = self._high
        unique = self._unique
        max_nodes = self.max_nodes
        node_cap = self._node_cap
        if node_cap is None:
            node_cap = 1 << 62
        hits = 0
        misses = 1
        evictions = created = 0
        rs: list[int] = []
        stack: list[tuple] = []
        pop = stack.pop
        push = stack.append
        rpush = rs.append
        rpop = rs.pop
        try:
            while True:
                # -- expand the current miss (f, i) ----------------
                var = var_[f]
                a = low_[f]
                c = high_[f]
                # low cofactor: terminal rules, then the cache
                if a == FALSE:
                    r0 = TRUE
                elif a == TRUE:
                    r0 = FALSE
                else:
                    i0 = (a * _H1) & cmask
                    if cgens[i0] == cgen and ckeys[i0] == a:
                        hits += 1
                        r0 = cvals[i0]
                    else:
                        misses += 1
                        r0 = -1
                # high cofactor: terminal rules only (probe deferred)
                if c == FALSE:
                    r1 = TRUE
                elif c == TRUE:
                    r1 = FALSE
                else:
                    r1 = -1
                if r0 < 0:
                    if r1 < 0:
                        push((1, var, f, i, 0))
                        push((2, c, 0, 0, 0))
                    else:
                        push((3, var, f, i, r1))
                    f = a
                    i = i0
                    continue
                if r1 < 0:
                    # low resolved; probe the high child now — the same
                    # sequence point as the recursive kernel.
                    i1 = (c * _H1) & cmask
                    if cgens[i1] == cgen and ckeys[i1] == c:
                        hits += 1
                        r1 = cvals[i1]
                    else:
                        misses += 1
                        rpush(r0)
                        push((1, var, f, i, 0))
                        f = c
                        i = i1
                        continue
                low = r0
                high = r1
                k = f
                # -- make + store + propagate ----------------------
                while True:
                    if low == high:
                        r = low
                    else:
                        ut = unique[var]
                        ukeys = ut.keys
                        uvals = ut.vals
                        umask = ut.mask
                        ukey = (low << 32) | high
                        j = ((low * _H1) ^ high) & umask
                        while True:
                            slot = ukeys[j]
                            if slot == ukey:
                                r = uvals[j]
                                break
                            if slot == 0:
                                if len(var_) > node_cap:
                                    raise ResourceLimitError(
                                        f"BDD node budget exceeded ({max_nodes} nodes)"
                                    )
                                r = len(var_)
                                var_.append(var)
                                low_.append(low)
                                high_.append(high)
                                ukeys[j] = ukey
                                uvals[j] = r
                                size = ut.size + 1
                                ut.size = size
                                created += 1
                                if size * 3 >= (umask + 1) * 2:
                                    ut.grow()
                                break
                            j = (j + 1) & umask
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
                    if not stack:
                        return r
                    t, ta, tb, tc, td = pop()
                    if t == 2:
                        # ``r`` is the finished low result; the high
                        # child gets its (deferred) probe now.
                        c = ta
                        i1 = (c * _H1) & cmask
                        if cgens[i1] == cgen and ckeys[i1] == c:
                            # hit: the matching combine frame is
                            # directly underneath — consume it here,
                            # bypassing ``rs`` entirely.
                            hits += 1
                            low = r
                            high = cvals[i1]
                            t, ta, tb, tc, td = pop()
                            var = ta
                            k = tb
                            i = tc
                            continue
                        misses += 1
                        rpush(r)
                        f = c
                        i = i1
                        break
                    if t == 1:
                        low = rpop()
                        high = r
                    else:
                        low = r
                        high = td
                    var = ta
                    k = tb
                    i = tc
        finally:
            tab.hits += hits
            tab.misses += misses
            tab.evictions += evictions
            self._nodes_created += created
            live = self._nodes_live + created
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live

    def _and(self, f: int, g: int) -> int:
        if f == g:
            return f
        if f > g:
            f, g = g, f
        if f == FALSE:
            return FALSE
        if f == TRUE:
            return g
        tab = self._and_tab
        tab.maybe_grow()
        ckeys = tab.keys
        cvals = tab.vals
        cgens = tab.gens
        cgen = tab.gen
        cmask = tab.mask
        k = (f << 32) | g
        i = ((f * _H1) ^ g) & cmask
        if cgens[i] == cgen and ckeys[i] == k:
            tab.hits += 1
            return cvals[i]
        var_ = self._var
        low_ = self._low
        high_ = self._high
        v2l = self._var2level
        unique = self._unique
        max_nodes = self.max_nodes
        node_cap = self._node_cap
        if node_cap is None:
            node_cap = 1 << 62
        hits = 0
        misses = 1
        evictions = created = 0
        rs: list[int] = []
        stack: list[tuple] = []
        pop = stack.pop
        push = stack.append
        rpush = rs.append
        rpop = rs.pop
        try:
            while True:
                # -- expand the current miss (f, g, k, i) ----------
                vf = var_[f]
                vg = var_[g]
                lf = v2l[vf]
                lg = v2l[vg]
                if lf <= lg:
                    var = vf
                    f0 = low_[f]
                    f1 = high_[f]
                else:
                    var = vg
                    f0 = f1 = f
                if lg <= lf:
                    g0 = low_[g]
                    g1 = high_[g]
                else:
                    g0 = g1 = g
                # low cofactor: terminal rules, then the cache
                a = f0
                b = g0
                if a == b:
                    r0 = a
                else:
                    if a > b:
                        a, b = b, a
                    if a == FALSE:
                        r0 = FALSE
                    elif a == TRUE:
                        r0 = b
                    else:
                        k0 = (a << 32) | b
                        i0 = ((a * _H1) ^ b) & cmask
                        if cgens[i0] == cgen and ckeys[i0] == k0:
                            hits += 1
                            r0 = cvals[i0]
                        else:
                            misses += 1
                            r0 = -1
                # high cofactor: terminal rules only (probe deferred)
                c = f1
                d = g1
                if c == d:
                    r1 = c
                else:
                    if c > d:
                        c, d = d, c
                    if c == FALSE:
                        r1 = FALSE
                    elif c == TRUE:
                        r1 = d
                    else:
                        r1 = -1
                if r0 < 0:
                    if r1 < 0:
                        push((1, var, k, i, 0))
                        push((2, c, d, 0, 0))
                    else:
                        push((3, var, k, i, r1))
                    f = a
                    g = b
                    k = k0
                    i = i0
                    continue
                if r1 < 0:
                    # low resolved; probe the high child now — the same
                    # sequence point as the recursive kernel.
                    k1 = (c << 32) | d
                    i1 = ((c * _H1) ^ d) & cmask
                    if cgens[i1] == cgen and ckeys[i1] == k1:
                        hits += 1
                        r1 = cvals[i1]
                    else:
                        misses += 1
                        rpush(r0)
                        push((1, var, k, i, 0))
                        f = c
                        g = d
                        k = k1
                        i = i1
                        continue
                low = r0
                high = r1
                # -- make + store + propagate ----------------------
                while True:
                    if low == high:
                        r = low
                    else:
                        ut = unique[var]
                        ukeys = ut.keys
                        uvals = ut.vals
                        umask = ut.mask
                        ukey = (low << 32) | high
                        j = ((low * _H1) ^ high) & umask
                        while True:
                            slot = ukeys[j]
                            if slot == ukey:
                                r = uvals[j]
                                break
                            if slot == 0:
                                if len(var_) > node_cap:
                                    raise ResourceLimitError(
                                        f"BDD node budget exceeded ({max_nodes} nodes)"
                                    )
                                r = len(var_)
                                var_.append(var)
                                low_.append(low)
                                high_.append(high)
                                ukeys[j] = ukey
                                uvals[j] = r
                                size = ut.size + 1
                                ut.size = size
                                created += 1
                                if size * 3 >= (umask + 1) * 2:
                                    ut.grow()
                                break
                            j = (j + 1) & umask
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
                    if not stack:
                        return r
                    t, ta, tb, tc, td = pop()
                    if t == 2:
                        # ``r`` is the finished low result; the high
                        # child gets its (deferred) probe now.
                        c = ta
                        d = tb
                        k1 = (c << 32) | d
                        i1 = ((c * _H1) ^ d) & cmask
                        if cgens[i1] == cgen and ckeys[i1] == k1:
                            # hit: the matching combine frame is
                            # directly underneath — consume it here,
                            # bypassing ``rs`` entirely.
                            hits += 1
                            low = r
                            high = cvals[i1]
                            t, ta, tb, tc, td = pop()
                            var = ta
                            k = tb
                            i = tc
                            continue
                        misses += 1
                        rpush(r)
                        f = c
                        g = d
                        k = k1
                        i = i1
                        break
                    if t == 1:
                        low = rpop()
                        high = r
                    else:
                        low = r
                        high = td
                    var = ta
                    k = tb
                    i = tc
        finally:
            tab.hits += hits
            tab.misses += misses
            tab.evictions += evictions
            self._nodes_created += created
            live = self._nodes_live + created
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live

    def _or(self, f: int, g: int) -> int:
        if f == g:
            return f
        if f > g:
            f, g = g, f
        if f == FALSE:
            return g
        if f == TRUE:
            return TRUE
        tab = self._or_tab
        tab.maybe_grow()
        ckeys = tab.keys
        cvals = tab.vals
        cgens = tab.gens
        cgen = tab.gen
        cmask = tab.mask
        k = (f << 32) | g
        i = ((f * _H1) ^ g) & cmask
        if cgens[i] == cgen and ckeys[i] == k:
            tab.hits += 1
            return cvals[i]
        var_ = self._var
        low_ = self._low
        high_ = self._high
        v2l = self._var2level
        unique = self._unique
        max_nodes = self.max_nodes
        node_cap = self._node_cap
        if node_cap is None:
            node_cap = 1 << 62
        hits = 0
        misses = 1
        evictions = created = 0
        rs: list[int] = []
        stack: list[tuple] = []
        pop = stack.pop
        push = stack.append
        rpush = rs.append
        rpop = rs.pop
        try:
            while True:
                # -- expand the current miss (f, g, k, i) ----------
                vf = var_[f]
                vg = var_[g]
                lf = v2l[vf]
                lg = v2l[vg]
                if lf <= lg:
                    var = vf
                    f0 = low_[f]
                    f1 = high_[f]
                else:
                    var = vg
                    f0 = f1 = f
                if lg <= lf:
                    g0 = low_[g]
                    g1 = high_[g]
                else:
                    g0 = g1 = g
                # low cofactor: terminal rules, then the cache
                a = f0
                b = g0
                if a == b:
                    r0 = a
                else:
                    if a > b:
                        a, b = b, a
                    if a == FALSE:
                        r0 = b
                    elif a == TRUE:
                        r0 = TRUE
                    else:
                        k0 = (a << 32) | b
                        i0 = ((a * _H1) ^ b) & cmask
                        if cgens[i0] == cgen and ckeys[i0] == k0:
                            hits += 1
                            r0 = cvals[i0]
                        else:
                            misses += 1
                            r0 = -1
                # high cofactor: terminal rules only (probe deferred)
                c = f1
                d = g1
                if c == d:
                    r1 = c
                else:
                    if c > d:
                        c, d = d, c
                    if c == FALSE:
                        r1 = d
                    elif c == TRUE:
                        r1 = TRUE
                    else:
                        r1 = -1
                if r0 < 0:
                    if r1 < 0:
                        push((1, var, k, i, 0))
                        push((2, c, d, 0, 0))
                    else:
                        push((3, var, k, i, r1))
                    f = a
                    g = b
                    k = k0
                    i = i0
                    continue
                if r1 < 0:
                    # low resolved; probe the high child now — the same
                    # sequence point as the recursive kernel.
                    k1 = (c << 32) | d
                    i1 = ((c * _H1) ^ d) & cmask
                    if cgens[i1] == cgen and ckeys[i1] == k1:
                        hits += 1
                        r1 = cvals[i1]
                    else:
                        misses += 1
                        rpush(r0)
                        push((1, var, k, i, 0))
                        f = c
                        g = d
                        k = k1
                        i = i1
                        continue
                low = r0
                high = r1
                # -- make + store + propagate ----------------------
                while True:
                    if low == high:
                        r = low
                    else:
                        ut = unique[var]
                        ukeys = ut.keys
                        uvals = ut.vals
                        umask = ut.mask
                        ukey = (low << 32) | high
                        j = ((low * _H1) ^ high) & umask
                        while True:
                            slot = ukeys[j]
                            if slot == ukey:
                                r = uvals[j]
                                break
                            if slot == 0:
                                if len(var_) > node_cap:
                                    raise ResourceLimitError(
                                        f"BDD node budget exceeded ({max_nodes} nodes)"
                                    )
                                r = len(var_)
                                var_.append(var)
                                low_.append(low)
                                high_.append(high)
                                ukeys[j] = ukey
                                uvals[j] = r
                                size = ut.size + 1
                                ut.size = size
                                created += 1
                                if size * 3 >= (umask + 1) * 2:
                                    ut.grow()
                                break
                            j = (j + 1) & umask
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
                    if not stack:
                        return r
                    t, ta, tb, tc, td = pop()
                    if t == 2:
                        # ``r`` is the finished low result; the high
                        # child gets its (deferred) probe now.
                        c = ta
                        d = tb
                        k1 = (c << 32) | d
                        i1 = ((c * _H1) ^ d) & cmask
                        if cgens[i1] == cgen and ckeys[i1] == k1:
                            # hit: consume the combine frame directly
                            # underneath, bypassing ``rs`` entirely.
                            hits += 1
                            low = r
                            high = cvals[i1]
                            t, ta, tb, tc, td = pop()
                            var = ta
                            k = tb
                            i = tc
                            continue
                        misses += 1
                        rpush(r)
                        f = c
                        g = d
                        k = k1
                        i = i1
                        break
                    if t == 1:
                        low = rpop()
                        high = r
                    else:
                        low = r
                        high = td
                    var = ta
                    k = tb
                    i = tc
        finally:
            tab.hits += hits
            tab.misses += misses
            tab.evictions += evictions
            self._nodes_created += created
            live = self._nodes_live + created
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f > g:
            f, g = g, f
        if f == FALSE:
            return g
        if f == TRUE:
            return self._not(g)
        tab = self._xor_tab
        tab.maybe_grow()
        ckeys = tab.keys
        cvals = tab.vals
        cgens = tab.gens
        cgen = tab.gen
        cmask = tab.mask
        k = (f << 32) | g
        i = ((f * _H1) ^ g) & cmask
        if cgens[i] == cgen and ckeys[i] == k:
            tab.hits += 1
            return cvals[i]
        var_ = self._var
        low_ = self._low
        high_ = self._high
        v2l = self._var2level
        unique = self._unique
        max_nodes = self.max_nodes
        node_cap = self._node_cap
        if node_cap is None:
            node_cap = 1 << 62
        hits = 0
        misses = 1
        evictions = created = 0
        rs: list[int] = []
        stack: list[tuple] = []
        pop = stack.pop
        push = stack.append
        rpush = rs.append
        rpop = rs.pop
        try:
            while True:
                # -- expand the current miss (f, g, k, i) ----------
                vf = var_[f]
                vg = var_[g]
                lf = v2l[vf]
                lg = v2l[vg]
                if lf <= lg:
                    var = vf
                    f0 = low_[f]
                    f1 = high_[f]
                else:
                    var = vg
                    f0 = f1 = f
                if lg <= lf:
                    g0 = low_[g]
                    g1 = high_[g]
                else:
                    g0 = g1 = g
                # low cofactor: terminal rules, then the cache.  A TRUE
                # operand means NOT of the other — the recursive kernel
                # calls it at this very point, so inlining is exact.
                a = f0
                b = g0
                if a == b:
                    r0 = FALSE
                else:
                    if a > b:
                        a, b = b, a
                    if a == FALSE:
                        r0 = b
                    elif a == TRUE:
                        r0 = self._not(b)
                    else:
                        k0 = (a << 32) | b
                        i0 = ((a * _H1) ^ b) & cmask
                        if cgens[i0] == cgen and ckeys[i0] == k0:
                            hits += 1
                            r0 = cvals[i0]
                        else:
                            misses += 1
                            r0 = -1
                # high cofactor: terminal rules only; its NOT call (and
                # probe) must wait until the low subtree is done, or
                # node-creation order would diverge from the recursive
                # kernel (-2 marks the deferred NOT).
                c = f1
                d = g1
                if c == d:
                    r1 = FALSE
                else:
                    if c > d:
                        c, d = d, c
                    if c == FALSE:
                        r1 = d
                    elif c == TRUE:
                        r1 = -2
                    else:
                        r1 = -1
                if r0 < 0:
                    if r1 == -1:
                        push((1, var, k, i, 0))
                        push((2, c, d, 0, 0))
                    elif r1 == -2:
                        push((1, var, k, i, 0))
                        push((4, 0, 0, 0, d))
                    else:
                        push((3, var, k, i, r1))
                    f = a
                    g = b
                    k = k0
                    i = i0
                    continue
                if r1 == -2:
                    r1 = self._not(d)
                elif r1 == -1:
                    # low resolved; probe the high child now — the same
                    # sequence point as the recursive kernel.
                    k1 = (c << 32) | d
                    i1 = ((c * _H1) ^ d) & cmask
                    if cgens[i1] == cgen and ckeys[i1] == k1:
                        hits += 1
                        r1 = cvals[i1]
                    else:
                        misses += 1
                        rpush(r0)
                        push((1, var, k, i, 0))
                        f = c
                        g = d
                        k = k1
                        i = i1
                        continue
                low = r0
                high = r1
                # -- make + store + propagate ----------------------
                while True:
                    if low == high:
                        r = low
                    else:
                        ut = unique[var]
                        ukeys = ut.keys
                        uvals = ut.vals
                        umask = ut.mask
                        ukey = (low << 32) | high
                        j = ((low * _H1) ^ high) & umask
                        while True:
                            slot = ukeys[j]
                            if slot == ukey:
                                r = uvals[j]
                                break
                            if slot == 0:
                                if len(var_) > node_cap:
                                    raise ResourceLimitError(
                                        f"BDD node budget exceeded ({max_nodes} nodes)"
                                    )
                                r = len(var_)
                                var_.append(var)
                                low_.append(low)
                                high_.append(high)
                                ukeys[j] = ukey
                                uvals[j] = r
                                size = ut.size + 1
                                ut.size = size
                                created += 1
                                if size * 3 >= (umask + 1) * 2:
                                    ut.grow()
                                break
                            j = (j + 1) & umask
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
                    if not stack:
                        return r
                    t, ta, tb, tc, td = pop()
                    while t == 4:
                        # the deferred NOT of the high cofactor — ``r``
                        # (the low result) parks on ``rs`` meanwhile.
                        rpush(r)
                        r = self._not(td)
                        t, ta, tb, tc, td = pop()
                    if t == 2:
                        # ``r`` is the finished low result; the high
                        # child gets its (deferred) probe now.
                        c = ta
                        d = tb
                        k1 = (c << 32) | d
                        i1 = ((c * _H1) ^ d) & cmask
                        if cgens[i1] == cgen and ckeys[i1] == k1:
                            # hit: consume the combine frame directly
                            # underneath, bypassing ``rs`` entirely.
                            hits += 1
                            low = r
                            high = cvals[i1]
                            t, ta, tb, tc, td = pop()
                            var = ta
                            k = tb
                            i = tc
                            continue
                        misses += 1
                        rpush(r)
                        f = c
                        g = d
                        k = k1
                        i = i1
                        break
                    if t == 1:
                        low = rpop()
                        high = r
                    else:
                        low = r
                        high = td
                    var = ta
                    k = tb
                    i = tc
        finally:
            tab.hits += hits
            tab.misses += misses
            tab.evictions += evictions
            self._nodes_created += created
            live = self._nodes_live + created
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live

    # ------------------------------------------------------------------
    # iterative quantification
    # ------------------------------------------------------------------
    # Three-phase frames preserve the recursive kernel's short-circuits
    # exactly: the low branch is fully evaluated first, and at an
    # ∃-quantified (resp. ∀-quantified) level a TRUE (resp. FALSE) low
    # result answers the sub-problem without ever expanding the high
    # branch — which keeps node creation, and therefore resource-budget
    # behavior, identical across backends.

    def _exists(self, f: int, levels: tuple[int, ...]) -> int:
        if f <= TRUE or not levels:
            return f
        tab = self._exists_tab
        tab.maybe_grow()
        lid = self._levels_id(levels)
        max_level = levels[-1]
        level_set = set(levels)
        var_ = self._var
        low_ = self._low
        high_ = self._high
        v2l = self._var2level
        unique = self._unique
        max_nodes = self.max_nodes
        node_cap = self._node_cap
        if node_cap is None:
            node_cap = 1 << 62
        ckeys = tab.keys
        cvals = tab.vals
        cgens = tab.gens
        cgen = tab.gen
        cmask = tab.mask
        hits = misses = evictions = created = dlive = 0
        rs: list[int] = []
        # frames: (_EXPAND, f) | (1, f, k, i) quantified after-low |
        # (2, f, k, i) unquantified after-low | (3, k, i) quantified
        # combine | (4, var, k, i) unquantified combine
        stack: list[tuple] = [(_EXPAND, f)]
        pop = stack.pop
        push = stack.append
        rpush = rs.append
        try:
            while stack:
                frame = pop()
                ph = frame[0]
                if ph == _EXPAND:
                    f = frame[1]
                    if f <= TRUE:
                        rpush(f)
                        continue
                    flevel = v2l[var_[f]]
                    if flevel > max_level:
                        rpush(f)
                        continue
                    i = ((f * _H1) ^ lid) & cmask
                    k = (f << 32) | lid
                    if cgens[i] == cgen and ckeys[i] == k:
                        hits += 1
                        rpush(cvals[i])
                        continue
                    misses += 1
                    if flevel in level_set:
                        push((1, f, k, i))
                    else:
                        push((2, f, k, i))
                    push((_EXPAND, low_[f]))
                elif ph == 1:
                    # ∃-quantified level, low known: TRUE short-circuits
                    low = rs[-1]
                    k = frame[2]
                    i = frame[3]
                    if low == TRUE:
                        if cgens[i] == cgen:
                            if ckeys[i] != k:
                                evictions += 1
                        else:
                            cgens[i] = cgen
                            tab.count += 1
                        ckeys[i] = k
                        cvals[i] = TRUE
                        continue
                    push((3, k, i))
                    push((_EXPAND, high_[frame[1]]))
                elif ph == 2:
                    push((4, var_[frame[1]], frame[2], frame[3]))
                    push((_EXPAND, high_[frame[1]]))
                elif ph == 3:
                    high = rs.pop()
                    low = rs[-1]
                    r = self._or(low, high)
                    rs[-1] = r
                    k = frame[1]
                    i = frame[2]
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
                else:
                    high = rs.pop()
                    low = rs[-1]
                    if low == high:
                        r = low
                    else:
                        var = frame[1]
                        ut = unique[var]
                        ukeys = ut.keys
                        uvals = ut.vals
                        umask = ut.mask
                        ukey = (low << 32) | high
                        j = ((low * _H1) ^ high) & umask
                        while True:
                            slot = ukeys[j]
                            if slot == ukey:
                                r = uvals[j]
                                break
                            if slot == 0:
                                if len(var_) > node_cap:
                                    raise ResourceLimitError(
                                        f"BDD node budget exceeded ({max_nodes} nodes)"
                                    )
                                r = len(var_)
                                var_.append(var)
                                low_.append(low)
                                high_.append(high)
                                ukeys[j] = ukey
                                uvals[j] = r
                                size = ut.size + 1
                                ut.size = size
                                created += 1
                                dlive += 1
                                if size * 3 >= (umask + 1) * 2:
                                    ut.grow()
                                break
                            j = (j + 1) & umask
                    rs[-1] = r
                    k = frame[2]
                    i = frame[3]
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
        finally:
            tab.hits += hits
            tab.misses += misses
            tab.evictions += evictions
            self._nodes_created += created
            live = self._nodes_live + dlive
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live
        return rs[0]

    def _and_exists(self, f: int, g: int, levels: tuple[int, ...]) -> int:
        if not levels:
            return self._and(f, g)
        tab = self._andex_tab
        tab.maybe_grow()
        lid = self._levels_id(levels)
        max_level = levels[-1]
        level_set = set(levels)
        var_ = self._var
        low_ = self._low
        high_ = self._high
        v2l = self._var2level
        unique = self._unique
        max_nodes = self.max_nodes
        node_cap = self._node_cap
        if node_cap is None:
            node_cap = 1 << 62
        ckeys = tab.keys
        cvals = tab.vals
        cgens = tab.gens
        cgen = tab.gen
        cmask = tab.mask
        hits = misses = evictions = created = dlive = 0
        rs: list[int] = []
        # frames: (_EXPAND, f, g) | (1, f1, g1, k, i) quantified
        # after-low | (2, var, f1, g1, k, i) unquantified after-low |
        # (3, k, i) quantified combine | (4, var, k, i) combine
        stack: list[tuple] = [(_EXPAND, f, g)]
        pop = stack.pop
        push = stack.append
        rpush = rs.append
        try:
            while stack:
                frame = pop()
                ph = frame[0]
                if ph == _EXPAND:
                    f = frame[1]
                    g = frame[2]
                    if f == FALSE or g == FALSE:
                        rpush(FALSE)
                        continue
                    if f == TRUE:
                        rpush(self._exists(g, levels))
                        continue
                    if g == TRUE or f == g:
                        rpush(self._exists(f, levels))
                        continue
                    if f > g:
                        f, g = g, f
                    lf = v2l[var_[f]]
                    lg = v2l[var_[g]]
                    top = lf if lf <= lg else lg
                    if top > max_level:
                        rpush(self._and(f, g))
                        continue
                    i = ((f * _H1) ^ (g * _H2) ^ lid) & cmask
                    k = (((f << 32) | g) << 32) | lid
                    if cgens[i] == cgen and ckeys[i] == k:
                        hits += 1
                        rpush(cvals[i])
                        continue
                    misses += 1
                    if lf <= lg:
                        var = var_[f]
                        f0 = low_[f]
                        f1 = high_[f]
                    else:
                        var = var_[g]
                        f0 = f1 = f
                    if lg <= lf:
                        g0 = low_[g]
                        g1 = high_[g]
                    else:
                        g0 = g1 = g
                    if top in level_set:
                        push((1, f1, g1, k, i))
                    else:
                        push((2, var, f1, g1, k, i))
                    push((_EXPAND, f0, g0))
                elif ph == 1:
                    low = rs[-1]
                    k = frame[3]
                    i = frame[4]
                    if low == TRUE:
                        if cgens[i] == cgen:
                            if ckeys[i] != k:
                                evictions += 1
                        else:
                            cgens[i] = cgen
                            tab.count += 1
                        ckeys[i] = k
                        cvals[i] = TRUE
                        continue
                    push((3, k, i))
                    push((_EXPAND, frame[1], frame[2]))
                elif ph == 2:
                    push((4, frame[1], frame[4], frame[5]))
                    push((_EXPAND, frame[2], frame[3]))
                elif ph == 3:
                    high = rs.pop()
                    low = rs[-1]
                    r = self._or(low, high)
                    rs[-1] = r
                    k = frame[1]
                    i = frame[2]
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
                else:
                    high = rs.pop()
                    low = rs[-1]
                    if low == high:
                        r = low
                    else:
                        var = frame[1]
                        ut = unique[var]
                        ukeys = ut.keys
                        uvals = ut.vals
                        umask = ut.mask
                        ukey = (low << 32) | high
                        j = ((low * _H1) ^ high) & umask
                        while True:
                            slot = ukeys[j]
                            if slot == ukey:
                                r = uvals[j]
                                break
                            if slot == 0:
                                if len(var_) > node_cap:
                                    raise ResourceLimitError(
                                        f"BDD node budget exceeded ({max_nodes} nodes)"
                                    )
                                r = len(var_)
                                var_.append(var)
                                low_.append(low)
                                high_.append(high)
                                ukeys[j] = ukey
                                uvals[j] = r
                                size = ut.size + 1
                                ut.size = size
                                created += 1
                                dlive += 1
                                if size * 3 >= (umask + 1) * 2:
                                    ut.grow()
                                break
                            j = (j + 1) & umask
                    rs[-1] = r
                    k = frame[2]
                    i = frame[3]
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
        finally:
            tab.hits += hits
            tab.misses += misses
            tab.evictions += evictions
            self._nodes_created += created
            live = self._nodes_live + dlive
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live
        return rs[0]

    def _and_forall(self, f: int, g: int, levels: tuple[int, ...]) -> int:
        if not levels:
            return self._and(f, g)
        tab = self._andall_tab
        tab.maybe_grow()
        lid = self._levels_id(levels)
        max_level = levels[-1]
        level_set = set(levels)
        var_ = self._var
        low_ = self._low
        high_ = self._high
        v2l = self._var2level
        unique = self._unique
        max_nodes = self.max_nodes
        node_cap = self._node_cap
        if node_cap is None:
            node_cap = 1 << 62
        ckeys = tab.keys
        cvals = tab.vals
        cgens = tab.gens
        cgen = tab.gen
        cmask = tab.mask
        hits = misses = evictions = created = dlive = 0
        rs: list[int] = []
        stack: list[tuple] = [(_EXPAND, f, g)]
        pop = stack.pop
        push = stack.append
        rpush = rs.append

        def forall_one(x: int) -> int:
            return self._not(self._exists(self._not(x), levels))

        try:
            while stack:
                frame = pop()
                ph = frame[0]
                if ph == _EXPAND:
                    f = frame[1]
                    g = frame[2]
                    if f == FALSE or g == FALSE:
                        rpush(FALSE)
                        continue
                    if f == TRUE:
                        rpush(forall_one(g))
                        continue
                    if g == TRUE or f == g:
                        rpush(forall_one(f))
                        continue
                    if f > g:
                        f, g = g, f
                    lf = v2l[var_[f]]
                    lg = v2l[var_[g]]
                    top = lf if lf <= lg else lg
                    if top > max_level:
                        rpush(self._and(f, g))
                        continue
                    i = ((f * _H1) ^ (g * _H2) ^ lid) & cmask
                    k = (((f << 32) | g) << 32) | lid
                    if cgens[i] == cgen and ckeys[i] == k:
                        hits += 1
                        rpush(cvals[i])
                        continue
                    misses += 1
                    if lf <= lg:
                        var = var_[f]
                        f0 = low_[f]
                        f1 = high_[f]
                    else:
                        var = var_[g]
                        f0 = f1 = f
                    if lg <= lf:
                        g0 = low_[g]
                        g1 = high_[g]
                    else:
                        g0 = g1 = g
                    if top in level_set:
                        push((1, f1, g1, k, i))
                    else:
                        push((2, var, f1, g1, k, i))
                    push((_EXPAND, f0, g0))
                elif ph == 1:
                    # ∀-quantified level, low known: FALSE short-circuits
                    low = rs[-1]
                    k = frame[3]
                    i = frame[4]
                    if low == FALSE:
                        if cgens[i] == cgen:
                            if ckeys[i] != k:
                                evictions += 1
                        else:
                            cgens[i] = cgen
                            tab.count += 1
                        ckeys[i] = k
                        cvals[i] = FALSE
                        continue
                    push((3, k, i))
                    push((_EXPAND, frame[1], frame[2]))
                elif ph == 2:
                    push((4, frame[1], frame[4], frame[5]))
                    push((_EXPAND, frame[2], frame[3]))
                elif ph == 3:
                    high = rs.pop()
                    low = rs[-1]
                    r = self._and(low, high)
                    rs[-1] = r
                    k = frame[1]
                    i = frame[2]
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
                else:
                    high = rs.pop()
                    low = rs[-1]
                    if low == high:
                        r = low
                    else:
                        var = frame[1]
                        ut = unique[var]
                        ukeys = ut.keys
                        uvals = ut.vals
                        umask = ut.mask
                        ukey = (low << 32) | high
                        j = ((low * _H1) ^ high) & umask
                        while True:
                            slot = ukeys[j]
                            if slot == ukey:
                                r = uvals[j]
                                break
                            if slot == 0:
                                if len(var_) > node_cap:
                                    raise ResourceLimitError(
                                        f"BDD node budget exceeded ({max_nodes} nodes)"
                                    )
                                r = len(var_)
                                var_.append(var)
                                low_.append(low)
                                high_.append(high)
                                ukeys[j] = ukey
                                uvals[j] = r
                                size = ut.size + 1
                                ut.size = size
                                created += 1
                                dlive += 1
                                if size * 3 >= (umask + 1) * 2:
                                    ut.grow()
                                break
                            j = (j + 1) & umask
                    rs[-1] = r
                    k = frame[2]
                    i = frame[3]
                    if cgens[i] == cgen:
                        if ckeys[i] != k:
                            evictions += 1
                    else:
                        cgens[i] = cgen
                        tab.count += 1
                    ckeys[i] = k
                    cvals[i] = r
        finally:
            tab.hits += hits
            tab.misses += misses
            tab.evictions += evictions
            self._nodes_created += created
            live = self._nodes_live + dlive
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live
        return rs[0]

    # ------------------------------------------------------------------
    # garbage collection: tombstone sweep + mark-and-compact
    # ------------------------------------------------------------------
    def garbage_collect(self) -> int:
        """Sweep dead nodes; compact the arrays once dead rows dominate.

        Every collection marks from the externally referenced roots and
        *tombstones* dead unique-table entries in place — O(dead) per
        table plus a slot scan, node ids untouched, dead rows zeroed
        but left in the arrays (mirroring the object kernel's freed
        rows).  Only when the accumulated dead rows outnumber the live
        ones does the mark-and-compact pass run: build an old→new id
        remap (terminals stay put), rewrite the arrays densely, rebuild
        the unique tables sized to their survivors, and remap every
        external id — the refcount table and the ids inside all live
        :class:`BddNode` handles.  This keeps the per-collection cost
        proportional to garbage (like the object kernel's dict sweeps)
        while bounding array memory at twice the live size.  All
        operation caches are dropped (generation bump).  Returns the
        number of nodes reclaimed this call.
        """
        var_ = self._var
        low_ = self._low
        high_ = self._high
        n = len(var_)
        marked = bytearray(n)
        marked[FALSE] = 1
        marked[TRUE] = 1
        marked_np = _np.frombuffer(marked, dtype=_np.uint8)
        low_np = high_np = None
        roots = [f for f, c in self._extref.items() if c > 0]
        if n < 4096:
            # small store: a plain DFS beats the numpy conversion cost
            stack = roots
            while stack:
                f = stack.pop()
                if marked[f]:
                    continue
                marked[f] = 1
                if var_[f] != _TERMINAL_VAR:
                    stack.append(low_[f])
                    stack.append(high_[f])
        elif roots:
            # vectorized breadth-first mark: gather both children of
            # the whole frontier at once; terminals and dead rows have
            # zeroed children, which are marked from the start, so the
            # filter needs no special cases.  Total gather work is
            # bounded by the edge count.
            low_np = _np.array(low_, dtype=_np.int64)
            high_np = _np.array(high_, dtype=_np.int64)
            frontier = _np.unique(_np.array(roots, dtype=_np.int64))
            frontier = frontier[marked_np[frontier] == 0]
            marked_np[frontier] = 1
            while frontier.size:
                children = _np.concatenate(
                    (low_np[frontier], high_np[frontier])
                )
                children = _np.unique(children)
                children = children[marked_np[children] == 0]
                marked_np[children] = 1
                frontier = children
        # -- tombstone sweep: drop dead entries table by table ---------
        # The dead-slot scan is vectorized: stale ``vals`` under empty
        # or tombstoned slots are masked out by ``keys > 0`` (and are
        # always valid indices — ids only grow between compactions, and
        # compaction rebuilds every table fresh).
        reclaimed = 0
        for ut in self._unique:
            if not ut.size:
                continue
            keys = ut.keys
            vals = ut.vals
            if ut.mask < 2048:
                dead = 0
                for j, packed in enumerate(keys):
                    if packed > 0:
                        nid = vals[j]
                        if not marked[nid]:
                            keys[j] = -1
                            var_[nid] = _TERMINAL_VAR
                            low_[nid] = FALSE
                            high_[nid] = FALSE
                            dead += 1
            else:
                kn = _np.array(keys, dtype=_np.int64)
                vn = _np.array(vals, dtype=_np.int64)
                dead_slots = _np.nonzero((kn > 0) & (marked_np[vn] == 0))[0]
                dead = int(dead_slots.size)
                for j in dead_slots.tolist():
                    nid = vals[j]
                    keys[j] = -1
                    var_[nid] = _TERMINAL_VAR
                    low_[nid] = FALSE
                    high_[nid] = FALSE
            if dead:
                ut.size -= dead
                ut.tombs += dead
                reclaimed += dead
                if ut.tombs * 4 > ut.mask + 1:
                    ut.rebuild()
        dead_rows = self._dead_rows + reclaimed
        if dead_rows * 2 >= n:
            # -- mark-and-compact: rewrite the arrays densely ----------
            # Snapshot the live handles *before* mutating anything:
            # holding strong references pins them so no handle can be
            # collected (and drop a refcount against a stale id)
            # halfway through the remap.
            handles = [h for h in (r() for r in self._handles) if h is not None]
            self._handles = [weakref.ref(h) for h in handles]
            self._handles_purge_at = max(1024, 2 * len(handles))
            # The remap and the dense rewrite are pure gathers, so both
            # run vectorized; only hash-slot placement (collision
            # probing) stays in the interpreter, one step per survivor.
            remap_np = _np.cumsum(marked_np, dtype=_np.int64) - 1
            live_idx = _np.nonzero(marked_np)[0]
            new_id = int(live_idx.size)
            # the mark-phase conversions (when present) predate the
            # sweep, but the sweep only zeroes *dead* rows and only
            # live rows are gathered here
            if low_np is None:
                low_np = _np.array(low_, dtype=_np.int64)
                high_np = _np.array(high_, dtype=_np.int64)
            var_np = _np.array(var_, dtype=_np.int64)[live_idx]
            low_np = remap_np[low_np[live_idx]]
            high_np = remap_np[high_np[live_idx]]
            self._var = var_np.tolist()
            self._low = low_np.tolist()
            self._high = high_np.tolist()
            unique = self._unique
            nvars = len(unique)
            counts = _np.bincount(var_np[2:], minlength=nvars)
            hash_np = (
                low_np.astype(_np.uint64) * _np.uint64(_H1)
            ) ^ high_np.astype(_np.uint64)
            packed_np = (low_np << 32) | high_np
            order = _np.argsort(var_np[2:], kind="stable") + 2
            start = 0
            for var, ut in enumerate(unique):
                count = int(counts[var])
                ut.reset(count)
                if not count:
                    continue
                grp = order[start : start + count]
                start += count
                mask = ut.mask
                keys = ut.keys
                vals = ut.vals
                homes = (hash_np[grp] & _np.uint64(mask)).tolist()
                for p, j, nid in zip(
                    packed_np[grp].tolist(), homes, grp.tolist()
                ):
                    while keys[j]:
                        j = (j + 1) & mask
                    keys[j] = p
                    vals[j] = nid
                ut.size = count
            self._extref = {
                int(remap_np[f]): c for f, c in self._extref.items() if c > 0
            }
            for handle in handles:
                handle.id = int(remap_np[handle.id])
            dead_rows = 0
        self._dead_rows = dead_rows
        if self.max_nodes is not None:
            self._node_cap = self.max_nodes + dead_rows
        self._nodes_live -= reclaimed
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        self._invalidate_caches()
        return reclaimed

    # ------------------------------------------------------------------
    # reordering plumbing
    # ------------------------------------------------------------------
    def swap_levels(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place.

        Same contract as the object kernel: node ids are preserved, only
        upper-level nodes that reference the lower variable are
        rewritten, and all operation caches are invalidated.
        """
        if not 0 <= level < len(self._level2var) - 1:
            raise BddError(f"cannot swap level {level}")
        upper = self._level2var[level]
        lower = self._level2var[level + 1]
        var_ = self._var
        low_ = self._low
        high_ = self._high
        upper_table = self._unique[upper]
        lower_table = self._unique[lower]

        residents = upper_table.node_ids()
        interacting = [
            nid
            for nid in residents
            if var_[low_[nid]] == lower or var_[high_[nid]] == lower
        ]
        if interacting:
            upper_table.reset(len(residents) - len(interacting))
            skip = set(interacting)
            for nid in residents:
                if nid not in skip:
                    upper_table.insert(low_[nid], high_[nid], nid)
        self._nodes_live -= len(interacting)

        # Commit the level exchange before creating new upper-var nodes
        # so that _mk built levels are consistent.
        self._level2var[level], self._level2var[level + 1] = lower, upper
        self._var2level[upper] = level + 1
        self._var2level[lower] = level

        for nid in interacting:
            f0, f1 = low_[nid], high_[nid]
            if var_[f0] == lower:
                f00, f01 = low_[f0], high_[f0]
            else:
                f00 = f01 = f0
            if var_[f1] == lower:
                f10, f11 = low_[f1], high_[f1]
            else:
                f10 = f11 = f1
            new_low = self._mk(upper, f00, f10)
            new_high = self._mk(upper, f01, f11)
            var_[nid] = lower
            low_[nid] = new_low
            high_[nid] = new_high
            existing = lower_table.lookup(new_low, new_high)
            if existing is not None and existing != nid:
                raise BddError(
                    "unique-table collision during swap; manager corrupted"
                )
            if existing is None:
                lower_table.insert(new_low, new_high, nid)
            self._nodes_live += 1
            if self._nodes_live > self._peak_live:
                self._peak_live = self._nodes_live

        self._level_swaps += 1
        self._invalidate_caches()

    def level_sizes(self) -> list[int]:
        """Unique-table size per level (after GC this is the live profile)."""
        return [
            self._unique[self._level2var[lv]].size
            for lv in range(len(self._level2var))
        ]

    # ------------------------------------------------------------------
    # vectorized export
    # ------------------------------------------------------------------
    def to_arrays(self):
        """The node store as numpy ``int32`` arrays ``(var, low, high)``.

        A snapshot, not a view — the hot path stays on CPython lists
        (faster for the scalar random access the apply loops do), and
        this export is the bridge for numpy-vectorized whole-level
        passes over the DAG.
        """
        import numpy as np

        return (
            np.array(self._var, dtype=np.int32),
            np.array(self._low, dtype=np.int32),
            np.array(self._high, dtype=np.int32),
        )


__all__ = ["ArrayBddManager"]
