"""Build machinery and ctypes loader for the native BDD kernel."""

from repro.bdd._native.build import (
    KERNEL_SOURCE,
    artifact_path,
    build_kernel,
    find_compiler,
    load_kernel,
    source_digest,
)

__all__ = [
    "KERNEL_SOURCE",
    "artifact_path",
    "build_kernel",
    "find_compiler",
    "load_kernel",
    "source_digest",
]
