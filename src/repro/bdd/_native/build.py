"""Lazy on-demand build of the native BDD kernel (`kernel.c`).

The shared library is compiled at first use with the system C compiler
and cached under a content-addressed file name: the artifact embeds a
hash of the C source, so editing ``kernel.c`` makes the old artifact
stale by construction and the next load rebuilds — no timestamps, no
build system.  Everything degrades gracefully: a missing compiler or a
failed compile yields ``(None, reason)`` and the caller (the ``native``
backend factory) falls back to the array kernel.

Environment knobs:

* ``REPRO_NATIVE_CC``    — compiler executable (name or path); default
  is the first of ``cc``, ``gcc``, ``clang`` found on ``PATH``.
* ``REPRO_NATIVE_CACHE`` — artifact directory; default is
  ``$XDG_CACHE_HOME/repro/native`` (or ``~/.cache/repro/native``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

#: the single C translation unit of the kernel
KERNEL_SOURCE = Path(__file__).with_name("kernel.c")

#: compiler override environment variable
CC_ENV = "REPRO_NATIVE_CC"

#: artifact-directory override environment variable
CACHE_ENV = "REPRO_NATIVE_CACHE"

#: candidate compilers, in preference order, when no override is set
COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: flags for a small position-independent shared object
CFLAGS = ("-O2", "-fPIC", "-shared")

#: expected ``nat_abi_version()`` of a loadable artifact
ABI_VERSION = 2

# (lib, reason) memo of the one load attempt per process; retried only
# when a test resets it explicitly.
_LOADED: tuple[ctypes.CDLL | None, str | None] | None = None


def find_compiler() -> str | None:
    """The compiler executable to use, or ``None`` when there is none.

    ``$REPRO_NATIVE_CC`` wins (its absence from PATH is an error surfaced
    as a fallback reason, not silently ignored); otherwise the first of
    ``cc``/``gcc``/``clang`` found wins.
    """
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override) or override
    for name in COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def source_digest(source: Path = KERNEL_SOURCE) -> str:
    """SHA-256 of the C source — the identity of a built artifact."""
    return hashlib.sha256(source.read_bytes()).hexdigest()


def artifact_dir() -> Path:
    """Where built kernels live (created on demand)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "native"


def artifact_path(source: Path = KERNEL_SOURCE) -> Path:
    """The content-addressed artifact for the current source text."""
    return artifact_dir() / f"libreprobdd-{source_digest(source)[:16]}.so"


def build_kernel(
    source: Path = KERNEL_SOURCE, force: bool = False
) -> tuple[Path | None, str | None]:
    """Compile ``source`` if its artifact is missing (or ``force``).

    Returns ``(artifact, None)`` on success and ``(None, reason)`` on any
    failure — no exception escapes, because a broken toolchain must
    degrade to the array kernel, not break the run.
    """
    try:
        artifact = artifact_path(source)
    except OSError as exc:
        return None, f"cannot read kernel source: {exc}"
    if artifact.exists() and not force:
        return artifact, None
    cc = find_compiler()
    if cc is None:
        return None, "no C compiler found (cc/gcc/clang; set $REPRO_NATIVE_CC)"
    try:
        artifact.parent.mkdir(parents=True, exist_ok=True)
        # compile to a temp name then rename: concurrent builders race
        # benignly (same content-addressed target, atomic replace)
        fd, tmp = tempfile.mkstemp(
            suffix=".so", prefix="libreprobdd-", dir=artifact.parent
        )
        os.close(fd)
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", tmp, str(source)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            detail = (proc.stderr or proc.stdout or "").strip().splitlines()
            head = detail[0] if detail else "no compiler output"
            return None, f"{Path(cc).name} failed (exit {proc.returncode}): {head}"
        os.replace(tmp, artifact)
        return artifact, None
    except (OSError, subprocess.SubprocessError) as exc:
        return None, f"build failed: {exc}"


def load_kernel() -> tuple[ctypes.CDLL | None, str | None]:
    """The loaded kernel library, building it first if needed.

    Memoized per process: one build/load attempt, then the same
    ``(lib, reason)`` answer forever (tests reset ``_LOADED`` to retry).
    """
    global _LOADED
    if _LOADED is not None:
        return _LOADED
    artifact, reason = build_kernel()
    if artifact is None:
        _LOADED = (None, reason)
        return _LOADED
    try:
        lib = ctypes.CDLL(str(artifact))
        _configure(lib)
        if lib.nat_abi_version() != ABI_VERSION:
            raise OSError(f"ABI mismatch in {artifact}")
    except OSError as exc:
        # stale or corrupt artifact: rebuild once from scratch
        try:
            artifact.unlink(missing_ok=True)
        except OSError:
            pass
        artifact, reason = build_kernel(force=True)
        if artifact is None:
            _LOADED = (None, f"reload failed ({exc}); rebuild: {reason}")
            return _LOADED
        try:
            lib = ctypes.CDLL(str(artifact))
            _configure(lib)
        except OSError as exc2:
            _LOADED = (None, f"cannot load built kernel: {exc2}")
            return _LOADED
    _LOADED = (lib, None)
    return _LOADED


def _configure(lib: ctypes.CDLL) -> None:
    """Declare the nat_* ABI (argument/return types) on ``lib``."""
    c = ctypes
    i32 = c.c_int32
    i64 = c.c_int64
    p = c.c_void_p
    i32p = c.POINTER(c.c_int32)
    i64p = c.POINTER(c.c_int64)
    lib.nat_new.argtypes = [i64, i64]
    lib.nat_new.restype = p
    lib.nat_free.argtypes = [p]
    lib.nat_free.restype = None
    lib.nat_add_var.argtypes = [p]
    lib.nat_add_var.restype = None
    lib.nat_set_node_cap.argtypes = [p, i64]
    lib.nat_set_node_cap.restype = None
    lib.nat_load.argtypes = [p, i64, i32p, i32p, i32p, i32, i32p, i64]
    lib.nat_load.restype = None
    lib.nat_num_nodes.argtypes = [p]
    lib.nat_num_nodes.restype = i64
    lib.nat_read_rows.argtypes = [p, i64, i64, i32p, i32p, i32p]
    lib.nat_read_rows.restype = None
    lib.nat_invalidate_caches.argtypes = [p]
    lib.nat_invalidate_caches.restype = None
    lib.nat_read_stats.argtypes = [p, i64p]
    lib.nat_read_stats.restype = None
    lib.nat_reset_stats.argtypes = [p]
    lib.nat_reset_stats.restype = None
    lib.nat_mk.argtypes = [p, i32, i32, i32]
    lib.nat_mk.restype = i64
    lib.nat_not.argtypes = [p, i32]
    lib.nat_not.restype = i64
    lib.nat_and.argtypes = [p, i32, i32]
    lib.nat_and.restype = i64
    lib.nat_or.argtypes = [p, i32, i32]
    lib.nat_or.restype = i64
    lib.nat_xor.argtypes = [p, i32, i32]
    lib.nat_xor.restype = i64
    lib.nat_exists.argtypes = [p, i32, i32p, i32, i64]
    lib.nat_exists.restype = i64
    lib.nat_and_exists.argtypes = [p, i32, i32, i32p, i32, i64]
    lib.nat_and_exists.restype = i64
    lib.nat_and_forall.argtypes = [p, i32, i32, i32p, i32, i64]
    lib.nat_and_forall.restype = i64
    lib.nat_restrict.argtypes = [p, i32, i32p, i32, i32, i64]
    lib.nat_restrict.restype = i64
    lib.nat_abi_version.argtypes = []
    lib.nat_abi_version.restype = i64


__all__ = [
    "ABI_VERSION",
    "CC_ENV",
    "CACHE_ENV",
    "KERNEL_SOURCE",
    "artifact_dir",
    "artifact_path",
    "build_kernel",
    "find_compiler",
    "load_kernel",
    "source_digest",
]
