/* kernel.c — the native BDD apply kernel (backend name "native").
 *
 * A single self-contained translation unit compiled on demand by
 * repro.bdd._native.build (cc -O2 -fPIC -shared).  It reimplements the
 * hot apply/quantify loops of the array backend over the same packed-int
 * memory layout: parallel (var, low, high) node arrays with terminals at
 * ids 0/1, per-variable open-addressed unique tables keyed by
 * (low << 32) | high with linear probing, and direct-mapped computed
 * caches per operation.
 *
 * Bit-identity contract (enforced by the parity fuzz check and the
 * --native-backend regression gate): the *node-creation sequence* and the
 * *budget-abort point* are identical to the object and array kernels.
 * Both are determined purely by the traversal structure — low cofactor
 * fully before high, the exists/forall short-circuits, XOR's nested NOT
 * at the TRUE-cofactor sequence point, and the node-cap check performed
 * only when a genuinely new node is about to be created.  Computed-cache
 * policy (probe points, sizing, eviction) is free: a cache miss on an
 * already-computed subproblem only recomputes canonical intermediate
 * results that the unique tables dedupe, creating no new nodes.  The
 * machines below therefore probe at expand time (simpler than the array
 * kernel's deferred probes) without affecting parity.
 *
 * Budget aborts are reported by returning -1 through every machine; the
 * Python wrapper (repro.bdd.native_backend) raises ResourceLimitError
 * after mirroring the partial node rows, exactly like the other kernels.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int32_t i32;
typedef int64_t i64;
typedef uint32_t u32;
typedef uint64_t u64;

#define FALSE_ID 0
#define TRUE_ID 1
#define TERMINAL_VAR (-1)
#define H1 0x9E3779B1ULL
#define H2 0x85EBCA77ULL
#define NO_CAP ((i64)1 << 62)

/* computed-table indices (order mirrors the Python _tables hot prefix) */
enum { T_NOT, T_AND, T_OR, T_XOR, T_EXISTS, T_ANDEX, T_ANDALL, T_RESTRICT,
       N_TABS };

/* ------------------------------------------------------------------ */
/* per-variable unique table                                           */
/* ------------------------------------------------------------------ */

typedef struct {
    u64 *keys; /* packed (low << 32) | high; 0 = empty (no tombstones:   */
    i32 *vals; /* the C tables are rebuilt from rows after every GC)     */
    u64 mask;
    i64 size;
} UT;

/* ------------------------------------------------------------------ */
/* direct-mapped computed cache                                        */
/* ------------------------------------------------------------------ */

typedef struct {
    u64 *k1;  /* 0 = empty slot (every live key has a node id >= 2 in    */
    u64 *k2;  /* its top 32 bits, so 0 never collides with a real key)   */
    i32 *val;
    u64 mask;
    u64 max_slots;
    i64 count; /* live entries */
    i64 hits;
    i64 misses;
    i64 evictions;
} Cache;

/* ------------------------------------------------------------------ */
/* machine frames                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    i32 tag;
    i32 var;
    i32 f;
    i32 g;
    u64 k1;
    u64 k2;
    u64 slot;
} Frame;

enum { FR_EXPAND, FR_COMBINE, FR_AFTER_LOW, FR_COMBINE_OP };

typedef struct {
    i32 *var;
    i32 *low;
    i32 *high;
    i64 n;        /* node rows in use (terminals included)   */
    i64 cap;      /* allocated rows                          */
    i64 node_cap; /* abort threshold: creating row n > cap   */
    int nvars;
    int vcap;
    UT *ut;       /* one per variable                        */
    i32 *v2l;     /* var -> level                            */
    Cache tabs[N_TABS];
    i64 cache_bound;
    /* quantification scratch: level membership bitmap       */
    unsigned char *qset;
    int qset_cap;
    /* reentrant machine scratch (frames + results)          */
    Frame *fs;
    i64 fs_cap;
    i64 fp;
    i32 *rs;
    i64 rs_cap;
    i64 rp;
} Mgr;

/* ------------------------------------------------------------------ */
/* small helpers                                                       */
/* ------------------------------------------------------------------ */

static u64 pow2_at_least(u64 n) {
    u64 p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

static void ut_init(UT *t, u64 capacity) {
    u64 slots = pow2_at_least(capacity < 8 ? 8 : capacity);
    t->keys = (u64 *)calloc(slots, sizeof(u64));
    t->vals = (i32 *)calloc(slots, sizeof(i32));
    t->mask = slots - 1;
    t->size = 0;
}

static void ut_free(UT *t) {
    free(t->keys);
    free(t->vals);
    t->keys = NULL;
    t->vals = NULL;
}

static void ut_grow(UT *t) {
    u64 slots = t->mask + 1;
    /* mid-size tables quadruple, large tables double (array-kernel policy) */
    slots <<= (slots >= ((u64)1 << 16)) ? 1 : 2;
    u64 *nk = (u64 *)calloc(slots, sizeof(u64));
    i32 *nv = (i32 *)calloc(slots, sizeof(i32));
    u64 mask = slots - 1;
    u64 old_slots = t->mask + 1;
    for (u64 i = 0; i < old_slots; i++) {
        u64 key = t->keys[i];
        if (!key)
            continue;
        u64 j = (((key >> 32) * H1) ^ (key & 0xFFFFFFFFULL)) & mask;
        while (nk[j])
            j = (j + 1) & mask;
        nk[j] = key;
        nv[j] = t->vals[i];
    }
    free(t->keys);
    free(t->vals);
    t->keys = nk;
    t->vals = nv;
    t->mask = mask;
}

static void ut_insert(UT *t, i32 low, i32 high, i32 id) {
    u64 key = ((u64)(u32)low << 32) | (u32)high;
    u64 j = (((u64)(u32)low * H1) ^ (u32)high) & t->mask;
    while (t->keys[j])
        j = (j + 1) & t->mask;
    t->keys[j] = key;
    t->vals[j] = id;
    if (++t->size * 3 >= (i64)(t->mask + 1) * 2)
        ut_grow(t);
}

static void cache_init(Cache *c, i64 bound) {
    u64 max_slots = pow2_at_least((u64)(bound < 16 ? 16 : bound));
    if (max_slots > ((u64)1 << 18))
        max_slots = (u64)1 << 18;
    u64 slots = 1024;
    if (slots > max_slots)
        slots = max_slots;
    c->k1 = (u64 *)calloc(slots, sizeof(u64));
    c->k2 = (u64 *)calloc(slots, sizeof(u64));
    c->val = (i32 *)calloc(slots, sizeof(i32));
    c->mask = slots - 1;
    c->max_slots = max_slots;
    c->count = 0;
    c->hits = 0;
    c->misses = 0;
    c->evictions = 0;
}

static void cache_free(Cache *c) {
    free(c->k1);
    free(c->k2);
    free(c->val);
    c->k1 = NULL;
    c->k2 = NULL;
    c->val = NULL;
}

static void cache_clear(Cache *c) {
    memset(c->k1, 0, (c->mask + 1) * sizeof(u64));
    c->count = 0;
}

/* grow between top-level ops at 25% load, quadrupling, discarding the
 * resident entries — the array kernel's maybe_grow policy */
static void cache_maybe_grow(Cache *c) {
    u64 slots = c->mask + 1;
    if ((u64)c->count * 4 >= slots && slots < c->max_slots) {
        slots <<= 2;
        if (slots > c->max_slots)
            slots = c->max_slots;
        free(c->k1);
        free(c->k2);
        free(c->val);
        c->k1 = (u64 *)calloc(slots, sizeof(u64));
        c->k2 = (u64 *)calloc(slots, sizeof(u64));
        c->val = (i32 *)calloc(slots, sizeof(i32));
        c->mask = slots - 1;
        c->count = 0;
    }
}

static void cache_store(Cache *c, u64 slot, u64 k1, u64 k2, i32 r) {
    if (c->k1[slot] == 0)
        c->count++;
    else if (c->k1[slot] != k1 || c->k2[slot] != k2)
        c->evictions++;
    c->k1[slot] = k1;
    c->k2[slot] = k2;
    c->val[slot] = r;
}

/* ------------------------------------------------------------------ */
/* manager lifecycle                                                   */
/* ------------------------------------------------------------------ */

static void grow_nodes(Mgr *m) {
    i64 cap = m->cap * 2;
    m->var = (i32 *)realloc(m->var, cap * sizeof(i32));
    m->low = (i32 *)realloc(m->low, cap * sizeof(i32));
    m->high = (i32 *)realloc(m->high, cap * sizeof(i32));
    m->cap = cap;
}

Mgr *nat_new(i64 node_cap, i64 cache_bound) {
    Mgr *m = (Mgr *)calloc(1, sizeof(Mgr));
    m->cap = 1024;
    m->var = (i32 *)malloc(m->cap * sizeof(i32));
    m->low = (i32 *)malloc(m->cap * sizeof(i32));
    m->high = (i32 *)malloc(m->cap * sizeof(i32));
    /* terminals occupy ids 0 and 1 */
    m->var[0] = TERMINAL_VAR;
    m->low[0] = FALSE_ID;
    m->high[0] = FALSE_ID;
    m->var[1] = TERMINAL_VAR;
    m->low[1] = TRUE_ID;
    m->high[1] = TRUE_ID;
    m->n = 2;
    m->node_cap = node_cap < 0 ? NO_CAP : node_cap;
    m->nvars = 0;
    m->vcap = 16;
    m->ut = (UT *)calloc(m->vcap, sizeof(UT));
    m->v2l = (i32 *)calloc(m->vcap, sizeof(i32));
    m->cache_bound = cache_bound;
    for (int t = 0; t < N_TABS; t++)
        cache_init(&m->tabs[t], cache_bound);
    m->qset_cap = 64;
    m->qset = (unsigned char *)calloc(m->qset_cap, 1);
    m->fs_cap = 1024;
    m->fs = (Frame *)malloc(m->fs_cap * sizeof(Frame));
    m->fp = 0;
    m->rs_cap = 1024;
    m->rs = (i32 *)malloc(m->rs_cap * sizeof(i32));
    m->rp = 0;
    return m;
}

void nat_free(Mgr *m) {
    if (!m)
        return;
    free(m->var);
    free(m->low);
    free(m->high);
    for (int v = 0; v < m->nvars; v++)
        ut_free(&m->ut[v]);
    free(m->ut);
    free(m->v2l);
    for (int t = 0; t < N_TABS; t++)
        cache_free(&m->tabs[t]);
    free(m->qset);
    free(m->fs);
    free(m->rs);
    free(m);
}

void nat_add_var(Mgr *m) {
    if (m->nvars == m->vcap) {
        int vcap = m->vcap * 2;
        m->ut = (UT *)realloc(m->ut, vcap * sizeof(UT));
        m->v2l = (i32 *)realloc(m->v2l, vcap * sizeof(i32));
        memset(m->ut + m->vcap, 0, (vcap - m->vcap) * sizeof(UT));
        m->vcap = vcap;
    }
    int var = m->nvars++;
    ut_init(&m->ut[var], 8);
    m->v2l[var] = var; /* fresh vars enter at the bottom level */
    if (m->nvars > m->qset_cap) {
        int cap = m->qset_cap * 2;
        m->qset = (unsigned char *)realloc(m->qset, cap);
        memset(m->qset + m->qset_cap, 0, cap - m->qset_cap);
        m->qset_cap = cap;
    }
}

void nat_set_node_cap(Mgr *m, i64 node_cap) {
    m->node_cap = node_cap < 0 ? NO_CAP : node_cap;
}

/* Bulk (re)load after a Python-authority episode (GC, level swaps,
 * reordering): replace the node rows, rebuild every unique table from
 * the surviving rows, adopt the current variable order, and drop the
 * computed caches (their node-id keys may have been remapped). */
void nat_load(Mgr *m, i64 n, const i32 *var, const i32 *low, const i32 *high,
              i32 nvars, const i32 *v2l, i64 node_cap) {
    if (n > m->cap) {
        i64 cap = m->cap;
        while (cap < n)
            cap *= 2;
        m->var = (i32 *)realloc(m->var, cap * sizeof(i32));
        m->low = (i32 *)realloc(m->low, cap * sizeof(i32));
        m->high = (i32 *)realloc(m->high, cap * sizeof(i32));
        m->cap = cap;
    }
    memcpy(m->var, var, n * sizeof(i32));
    memcpy(m->low, low, n * sizeof(i32));
    memcpy(m->high, high, n * sizeof(i32));
    m->n = n;
    m->node_cap = node_cap < 0 ? NO_CAP : node_cap;
    for (int v = 0; v < m->nvars; v++)
        ut_free(&m->ut[v]);
    while (m->nvars < nvars) {
        /* sizes the ut/v2l/qset arrays; the per-var table is re-inited
         * below with a proper capacity */
        nat_add_var(m);
        ut_free(&m->ut[m->nvars - 1]);
    }
    m->nvars = nvars;
    memcpy(m->v2l, v2l, nvars * sizeof(i32));
    /* count live rows per var, then size each table to its population */
    i64 *counts = (i64 *)calloc(nvars ? nvars : 1, sizeof(i64));
    for (i64 i = 2; i < n; i++)
        if (var[i] >= 0)
            counts[var[i]]++;
    for (int v = 0; v < nvars; v++)
        ut_init(&m->ut[v], (u64)(counts[v] * 2));
    free(counts);
    for (i64 i = 2; i < n; i++)
        if (var[i] >= 0)
            ut_insert(&m->ut[var[i]], low[i], high[i], (i32)i);
    for (int t = 0; t < N_TABS; t++)
        cache_clear(&m->tabs[t]);
}

i64 nat_num_nodes(Mgr *m) { return m->n; }

void nat_read_rows(Mgr *m, i64 start, i64 count, i32 *var, i32 *low,
                   i32 *high) {
    memcpy(var, m->var + start, count * sizeof(i32));
    memcpy(low, m->low + start, count * sizeof(i32));
    memcpy(high, m->high + start, count * sizeof(i32));
}

void nat_invalidate_caches(Mgr *m) {
    for (int t = 0; t < N_TABS; t++)
        cache_clear(&m->tabs[t]);
}

/* stats layout: per table [hits, misses, evictions, entries] — absolute
 * monotone values (entries excepted), read by the Python cache views */
void nat_read_stats(Mgr *m, i64 *out) {
    for (int t = 0; t < N_TABS; t++) {
        out[t * 4 + 0] = m->tabs[t].hits;
        out[t * 4 + 1] = m->tabs[t].misses;
        out[t * 4 + 2] = m->tabs[t].evictions;
        out[t * 4 + 3] = m->tabs[t].count;
    }
}

void nat_reset_stats(Mgr *m) {
    for (int t = 0; t < N_TABS; t++) {
        m->tabs[t].hits = 0;
        m->tabs[t].misses = 0;
        m->tabs[t].evictions = 0;
    }
}

/* ------------------------------------------------------------------ */
/* node construction                                                   */
/* ------------------------------------------------------------------ */

static i64 mk(Mgr *m, i32 var, i32 low, i32 high) {
    if (low == high)
        return low;
    UT *t = &m->ut[var];
    u64 key = ((u64)(u32)low << 32) | (u32)high;
    u64 mask = t->mask;
    u64 j = (((u64)(u32)low * H1) ^ (u32)high) & mask;
    for (;;) {
        u64 s = t->keys[j];
        if (s == key)
            return t->vals[j];
        if (s == 0)
            break;
        j = (j + 1) & mask;
    }
    /* the budget check runs only when a new node is about to be created
     * — the same sequence point as the object/array kernels, which is
     * what makes the abort visit bit-identical */
    if (m->n > m->node_cap)
        return -1;
    if (m->n == m->cap)
        grow_nodes(m);
    i32 id = (i32)m->n++;
    m->var[id] = var;
    m->low[id] = low;
    m->high[id] = high;
    t->keys[j] = key;
    t->vals[j] = id;
    if (++t->size * 3 >= (i64)(mask + 1) * 2)
        ut_grow(t);
    return id;
}

/* ------------------------------------------------------------------ */
/* machine scratch                                                     */
/* ------------------------------------------------------------------ */

static Frame *fpush(Mgr *m) {
    if (m->fp == m->fs_cap) {
        m->fs_cap *= 2;
        m->fs = (Frame *)realloc(m->fs, m->fs_cap * sizeof(Frame));
    }
    return &m->fs[m->fp++];
}

static void rpush(Mgr *m, i32 v) {
    if (m->rp == m->rs_cap) {
        m->rs_cap *= 2;
        m->rs = (i32 *)realloc(m->rs, m->rs_cap * sizeof(i32));
    }
    m->rs[m->rp++] = v;
}

/* ------------------------------------------------------------------ */
/* NOT                                                                 */
/* ------------------------------------------------------------------ */

static i64 do_not(Mgr *m) /* operand pre-pushed as an EXPAND frame */;

static i64 apply_not(Mgr *m, i32 f) {
    if (f <= TRUE_ID)
        return 1 - f;
    Frame *fr = fpush(m);
    fr->tag = FR_EXPAND;
    fr->f = f;
    return do_not(m);
}

static i64 do_not(Mgr *m) {
    i64 f_base = m->fp - 1;
    i64 r_base = m->rp;
    Cache *c = &m->tabs[T_NOT];
    while (m->fp > f_base) {
        Frame fr = m->fs[--m->fp];
        if (fr.tag == FR_EXPAND) {
            i32 f = fr.f;
            if (f <= TRUE_ID) {
                rpush(m, (i32)(1 - f));
                continue;
            }
            u64 slot = ((u64)(u32)f * H1) & c->mask;
            if (c->k1[slot] == (u64)(u32)f) {
                c->hits++;
                rpush(m, c->val[slot]);
                continue;
            }
            c->misses++;
            Frame *cf = fpush(m);
            cf->tag = FR_COMBINE;
            cf->var = m->var[f];
            cf->k1 = (u64)(u32)f;
            cf->slot = slot;
            Frame *hf = fpush(m);
            hf->tag = FR_EXPAND;
            hf->f = m->high[f];
            Frame *lf = fpush(m);
            lf->tag = FR_EXPAND;
            lf->f = m->low[f];
        } else {
            i32 high = m->rs[--m->rp];
            i32 low = m->rs[m->rp - 1];
            i64 r = (low == high) ? low : mk(m, fr.var, low, high);
            if (r < 0)
                goto abort;
            m->rs[m->rp - 1] = (i32)r;
            /* the slot may have been repopulated by the subtree; the
             * store-time key check keeps the eviction count honest */
            if (c->k1[fr.slot] == fr.k1)
                c->val[fr.slot] = (i32)r;
            else
                cache_store(c, fr.slot, fr.k1, 0, (i32)r);
        }
    }
    return m->rs[--m->rp];
abort:
    m->fp = f_base;
    m->rp = r_base;
    return -1;
}

/* ------------------------------------------------------------------ */
/* binary apply: AND / OR / XOR                                        */
/* ------------------------------------------------------------------ */

static i64 apply2(Mgr *m, int op, i32 f0_, i32 g0_) {
    Cache *c = &m->tabs[op == T_AND ? T_AND : (op == T_OR ? T_OR : T_XOR)];
    i64 f_base = m->fp;
    i64 r_base = m->rp;
    Frame *root = fpush(m);
    root->tag = FR_EXPAND;
    root->f = f0_;
    root->g = g0_;
    /* NB: m->var / m->low / m->high are re-read through m every time —
     * mk() may realloc the node arrays mid-loop */
    i32 *v2l = m->v2l;
    while (m->fp > f_base) {
        Frame fr = m->fs[--m->fp];
        if (fr.tag == FR_EXPAND) {
            i32 f = fr.f;
            i32 g = fr.g;
            /* terminal rules — the object kernel's, verbatim */
            if (f == g) {
                rpush(m, op == T_XOR ? FALSE_ID : f);
                continue;
            }
            if (f > g) {
                i32 t = f;
                f = g;
                g = t;
            }
            if (f == FALSE_ID) {
                rpush(m, op == T_AND ? FALSE_ID : g);
                continue;
            }
            if (f == TRUE_ID) {
                if (op == T_AND) {
                    rpush(m, g);
                } else if (op == T_OR) {
                    rpush(m, TRUE_ID);
                } else {
                    /* XOR: ¬g runs now — the same sequence point as the
                     * recursive kernel's self._not(g) call */
                    i64 r = apply_not(m, g);
                    if (r < 0)
                        goto abort;
                    rpush(m, (i32)r);
                }
                continue;
            }
            u64 k1 = ((u64)(u32)f << 32) | (u32)g;
            u64 slot = (((u64)(u32)f * H1) ^ (u32)g) & c->mask;
            if (c->k1[slot] == k1) {
                c->hits++;
                rpush(m, c->val[slot]);
                continue;
            }
            c->misses++;
            i32 lf = v2l[m->var[f]];
            i32 lg = v2l[m->var[g]];
            i32 var, fl, fh, gl, gh;
            if (lf <= lg) {
                var = m->var[f];
                fl = m->low[f];
                fh = m->high[f];
            } else {
                var = m->var[g];
                fl = fh = f;
            }
            if (lg <= lf) {
                gl = m->low[g];
                gh = m->high[g];
            } else {
                gl = gh = g;
            }
            Frame *cf = fpush(m);
            cf->tag = FR_COMBINE;
            cf->var = var;
            cf->k1 = k1;
            cf->slot = slot;
            Frame *hf = fpush(m);
            hf->tag = FR_EXPAND;
            hf->f = fh;
            hf->g = gh;
            Frame *lo = fpush(m);
            lo->tag = FR_EXPAND;
            lo->f = fl;
            lo->g = gl;
        } else {
            i32 high = m->rs[--m->rp];
            i32 low = m->rs[m->rp - 1];
            i64 r = (low == high) ? low : mk(m, fr.var, low, high);
            if (r < 0)
                goto abort;
            m->rs[m->rp - 1] = (i32)r;
            if (c->k1[fr.slot] == fr.k1)
                c->val[fr.slot] = (i32)r;
            else
                cache_store(c, fr.slot, fr.k1, 0, (i32)r);
        }
    }
    return m->rs[--m->rp];
abort:
    m->fp = f_base;
    m->rp = r_base;
    return -1;
}

/* ------------------------------------------------------------------ */
/* EXISTS (levels passed as a sorted array; lid is the Python-interned  */
/* identity of the level tuple, used only for cache keying)            */
/* ------------------------------------------------------------------ */

/* The qset bitmap and max_level are set by the top-level entry points
 * (nat_exists / nat_and_exists / nat_and_forall) and shared by the
 * nested machines, mirroring the closure state of the Python kernels. */

static i64 do_exists(Mgr *m, i32 root, i32 max_level, u64 lid) {
    if (root <= TRUE_ID)
        return root;
    Cache *c = &m->tabs[T_EXISTS];
    i64 f_base = m->fp;
    i64 r_base = m->rp;
    Frame *rf = fpush(m);
    rf->tag = FR_EXPAND;
    rf->f = root;
    i32 *v2l = m->v2l;
    while (m->fp > f_base) {
        Frame fr = m->fs[--m->fp];
        if (fr.tag == FR_EXPAND) {
            i32 f = fr.f;
            if (f <= TRUE_ID) {
                rpush(m, f);
                continue;
            }
            i32 flevel = v2l[m->var[f]];
            if (flevel > max_level) {
                rpush(m, f); /* below every quantified level */
                continue;
            }
            u64 k1 = ((u64)(u32)f << 32) | lid;
            u64 slot = (((u64)(u32)f * H1) ^ lid) & c->mask;
            if (c->k1[slot] == k1) {
                c->hits++;
                rpush(m, c->val[slot]);
                continue;
            }
            c->misses++;
            Frame *af = fpush(m);
            af->tag = FR_AFTER_LOW;
            af->f = f;
            af->var = m->var[f];
            af->g = m->qset[flevel]; /* quantified? */
            af->k1 = k1;
            af->slot = slot;
            Frame *lf = fpush(m);
            lf->tag = FR_EXPAND;
            lf->f = m->low[f];
        } else if (fr.tag == FR_AFTER_LOW) {
            i32 low = m->rs[m->rp - 1];
            if (fr.g) {
                /* ∃x.f = f0 ∨ f1: a TRUE cofactor decides immediately */
                if (low == TRUE_ID) {
                    cache_store(c, fr.slot, fr.k1, 0, TRUE_ID);
                    continue; /* rs top already TRUE */
                }
                Frame *cf = fpush(m);
                cf->tag = FR_COMBINE_OP;
                cf->k1 = fr.k1;
                cf->slot = fr.slot;
                Frame *hf = fpush(m);
                hf->tag = FR_EXPAND;
                hf->f = m->high[fr.f];
            } else {
                Frame *cf = fpush(m);
                cf->tag = FR_COMBINE;
                cf->var = fr.var;
                cf->k1 = fr.k1;
                cf->slot = fr.slot;
                Frame *hf = fpush(m);
                hf->tag = FR_EXPAND;
                hf->f = m->high[fr.f];
            }
        } else if (fr.tag == FR_COMBINE_OP) {
            i32 high = m->rs[--m->rp];
            i32 low = m->rs[m->rp - 1];
            i64 r = apply2(m, T_OR, low, high);
            if (r < 0)
                goto abort;
            m->rs[m->rp - 1] = (i32)r;
            if (c->k1[fr.slot] == fr.k1)
                c->val[fr.slot] = (i32)r;
            else
                cache_store(c, fr.slot, fr.k1, 0, (i32)r);
        } else {
            i32 high = m->rs[--m->rp];
            i32 low = m->rs[m->rp - 1];
            i64 r = (low == high) ? low : mk(m, fr.var, low, high);
            if (r < 0)
                goto abort;
            m->rs[m->rp - 1] = (i32)r;
            if (c->k1[fr.slot] == fr.k1)
                c->val[fr.slot] = (i32)r;
            else
                cache_store(c, fr.slot, fr.k1, 0, (i32)r);
        }
    }
    return m->rs[--m->rp];
abort:
    m->fp = f_base;
    m->rp = r_base;
    return -1;
}

/* ∀ levels . f = ¬∃ levels . ¬f — the object kernel's forall_one */
static i64 forall_one(Mgr *m, i32 f, i32 max_level, u64 lid) {
    i64 nf = apply_not(m, f);
    if (nf < 0)
        return -1;
    i64 e = do_exists(m, (i32)nf, max_level, lid);
    if (e < 0)
        return -1;
    return apply_not(m, (i32)e);
}

/* ------------------------------------------------------------------ */
/* fused AND-EXISTS / AND-FORALL                                       */
/* ------------------------------------------------------------------ */

static i64 do_and_quant(Mgr *m, int is_forall, i32 root_f, i32 root_g,
                        i32 max_level, u64 lid) {
    Cache *c = &m->tabs[is_forall ? T_ANDALL : T_ANDEX];
    int comb_op = is_forall ? T_AND : T_OR;
    i32 short_val = is_forall ? FALSE_ID : TRUE_ID;
    i64 f_base = m->fp;
    i64 r_base = m->rp;
    Frame *rf = fpush(m);
    rf->tag = FR_EXPAND;
    rf->f = root_f;
    rf->g = root_g;
    i32 *v2l = m->v2l;
    while (m->fp > f_base) {
        Frame fr = m->fs[--m->fp];
        if (fr.tag == FR_EXPAND) {
            i32 f = fr.f;
            i32 g = fr.g;
            if (f == FALSE_ID || g == FALSE_ID) {
                rpush(m, FALSE_ID);
                continue;
            }
            if (f == TRUE_ID || g == TRUE_ID || f == g) {
                i32 one = (f == TRUE_ID) ? g : f;
                i64 r = is_forall ? forall_one(m, one, max_level, lid)
                                  : do_exists(m, one, max_level, lid);
                if (r < 0)
                    goto abort;
                rpush(m, (i32)r);
                continue;
            }
            if (f > g) {
                i32 t = f;
                f = g;
                g = t;
            }
            i32 lf = v2l[m->var[f]];
            i32 lg = v2l[m->var[g]];
            i32 top = lf <= lg ? lf : lg;
            if (top > max_level) {
                i64 r = apply2(m, T_AND, f, g);
                if (r < 0)
                    goto abort;
                rpush(m, (i32)r);
                continue;
            }
            u64 k1 = ((u64)(u32)f << 32) | (u32)g;
            u64 slot =
                (((u64)(u32)f * H1) ^ ((u64)(u32)g * H2) ^ lid) & c->mask;
            if (c->k1[slot] == k1 && c->k2[slot] == lid) {
                c->hits++;
                rpush(m, c->val[slot]);
                continue;
            }
            c->misses++;
            i32 var, fl, fh, gl, gh;
            if (lf <= lg) {
                var = m->var[f];
                fl = m->low[f];
                fh = m->high[f];
            } else {
                var = m->var[g];
                fl = fh = f;
            }
            if (lg <= lf) {
                gl = m->low[g];
                gh = m->high[g];
            } else {
                gl = gh = g;
            }
            if (m->qset[top]) {
                Frame *af = fpush(m);
                af->tag = FR_AFTER_LOW;
                af->f = fh;
                af->g = gh;
                af->k1 = k1;
                af->k2 = lid;
                af->slot = slot;
            } else {
                Frame *cf = fpush(m);
                cf->tag = FR_COMBINE;
                cf->var = var;
                cf->k1 = k1;
                cf->k2 = lid;
                cf->slot = slot;
                Frame *hf = fpush(m);
                hf->tag = FR_EXPAND;
                hf->f = fh;
                hf->g = gh;
            }
            Frame *lo = fpush(m);
            lo->tag = FR_EXPAND;
            lo->f = fl;
            lo->g = gl;
        } else if (fr.tag == FR_AFTER_LOW) {
            i32 low = m->rs[m->rp - 1];
            if (low == short_val) {
                /* exists: TRUE decides; forall: FALSE decides */
                cache_store(c, fr.slot, fr.k1, fr.k2, short_val);
                continue;
            }
            Frame *cf = fpush(m);
            cf->tag = FR_COMBINE_OP;
            cf->k1 = fr.k1;
            cf->k2 = fr.k2;
            cf->slot = fr.slot;
            Frame *hf = fpush(m);
            hf->tag = FR_EXPAND;
            hf->f = fr.f;
            hf->g = fr.g;
        } else if (fr.tag == FR_COMBINE_OP) {
            i32 high = m->rs[--m->rp];
            i32 low = m->rs[m->rp - 1];
            i64 r = apply2(m, comb_op, low, high);
            if (r < 0)
                goto abort;
            m->rs[m->rp - 1] = (i32)r;
            if (c->k1[fr.slot] == fr.k1 && c->k2[fr.slot] == fr.k2)
                c->val[fr.slot] = (i32)r;
            else
                cache_store(c, fr.slot, fr.k1, fr.k2, (i32)r);
        } else {
            i32 high = m->rs[--m->rp];
            i32 low = m->rs[m->rp - 1];
            i64 r = (low == high) ? low : mk(m, fr.var, low, high);
            if (r < 0)
                goto abort;
            m->rs[m->rp - 1] = (i32)r;
            if (c->k1[fr.slot] == fr.k1 && c->k2[fr.slot] == fr.k2)
                c->val[fr.slot] = (i32)r;
            else
                cache_store(c, fr.slot, fr.k1, fr.k2, (i32)r);
        }
    }
    return m->rs[--m->rp];
abort:
    m->fp = f_base;
    m->rp = r_base;
    return -1;
}

/* ------------------------------------------------------------------ */
/* entry points                                                        */
/* ------------------------------------------------------------------ */

/* Ops return (num_nodes << 32) | result so the common no-new-nodes case
 * costs one FFI call; a budget abort returns -1 and the wrapper reads
 * nat_num_nodes to mirror the partial rows before raising. */
static i64 pack(Mgr *m, i64 r) {
    if (r < 0)
        return -1;
    return (m->n << 32) | (u32)r;
}

i64 nat_mk(Mgr *m, i32 var, i32 low, i32 high) {
    return pack(m, mk(m, var, low, high));
}

i64 nat_not(Mgr *m, i32 f) {
    cache_maybe_grow(&m->tabs[T_NOT]);
    return pack(m, apply_not(m, f));
}

i64 nat_and(Mgr *m, i32 f, i32 g) {
    cache_maybe_grow(&m->tabs[T_AND]);
    return pack(m, apply2(m, T_AND, f, g));
}

i64 nat_or(Mgr *m, i32 f, i32 g) {
    cache_maybe_grow(&m->tabs[T_OR]);
    return pack(m, apply2(m, T_OR, f, g));
}

i64 nat_xor(Mgr *m, i32 f, i32 g) {
    cache_maybe_grow(&m->tabs[T_XOR]);
    cache_maybe_grow(&m->tabs[T_NOT]); /* XOR can nest NOT */
    return pack(m, apply2(m, T_XOR, f, g));
}

static i32 setup_levels(Mgr *m, const i32 *levels, i32 nlevels) {
    i32 max_level = levels[nlevels - 1];
    for (i32 i = 0; i < nlevels; i++)
        m->qset[levels[i]] = 1;
    return max_level;
}

static void clear_levels(Mgr *m, const i32 *levels, i32 nlevels) {
    for (i32 i = 0; i < nlevels; i++)
        m->qset[levels[i]] = 0;
}

i64 nat_exists(Mgr *m, i32 f, const i32 *levels, i32 nlevels, i64 lid) {
    cache_maybe_grow(&m->tabs[T_EXISTS]);
    cache_maybe_grow(&m->tabs[T_OR]);
    i32 max_level = setup_levels(m, levels, nlevels);
    i64 r = do_exists(m, f, max_level, (u64)lid);
    clear_levels(m, levels, nlevels);
    return pack(m, r);
}

i64 nat_and_exists(Mgr *m, i32 f, i32 g, const i32 *levels, i32 nlevels,
                   i64 lid) {
    cache_maybe_grow(&m->tabs[T_ANDEX]);
    cache_maybe_grow(&m->tabs[T_EXISTS]);
    cache_maybe_grow(&m->tabs[T_AND]);
    cache_maybe_grow(&m->tabs[T_OR]);
    i32 max_level = setup_levels(m, levels, nlevels);
    i64 r = do_and_quant(m, 0, f, g, max_level, (u64)lid);
    clear_levels(m, levels, nlevels);
    return pack(m, r);
}

i64 nat_and_forall(Mgr *m, i32 f, i32 g, const i32 *levels, i32 nlevels,
                   i64 lid) {
    cache_maybe_grow(&m->tabs[T_ANDALL]);
    cache_maybe_grow(&m->tabs[T_EXISTS]);
    cache_maybe_grow(&m->tabs[T_NOT]);
    cache_maybe_grow(&m->tabs[T_AND]);
    cache_maybe_grow(&m->tabs[T_OR]);
    i32 max_level = setup_levels(m, levels, nlevels);
    i64 r = do_and_quant(m, 1, f, g, max_level, (u64)lid);
    clear_levels(m, levels, nlevels);
    return pack(m, r);
}

/* ------------------------------------------------------------------ */
/* restrict (cofactor by a partial assignment)                         */
/* ------------------------------------------------------------------ */

/* Mirrors the object kernel's recursive _restrict exactly: skip
 * assignment entries above f's top level, follow the assigned branch
 * when f tests the assigned variable, else recurse both cofactors.
 * ``pairs`` is [var0, val0, var1, val1, ...] sorted by level; ``pid``
 * is the Python-interned identity of the pairs tuple (the cache key
 * component standing for the whole assignment). */
static i64 do_restrict(Mgr *m, const i32 *pairs, i32 npairs, u64 pid) {
    i64 f_base = m->fp - 1;
    i64 r_base = m->rp;
    Cache *c = &m->tabs[T_RESTRICT];
    while (m->fp > f_base) {
        Frame fr = m->fs[--m->fp];
        if (fr.tag == FR_EXPAND) {
            i32 f = fr.f;
            i32 start = fr.g;
            if (f <= TRUE_ID || start >= npairs) {
                rpush(m, f);
                continue;
            }
            u64 k1 = ((u64)(u32)f << 32) | (u32)start;
            u64 slot =
                (((u64)(u32)f * H1) ^ ((u64)(u32)start * H2) ^ pid) & c->mask;
            if (c->k1[slot] == k1 && c->k2[slot] == pid) {
                c->hits++;
                rpush(m, c->val[slot]);
                continue;
            }
            c->misses++;
            i32 flevel = m->v2l[m->var[f]];
            i32 i = start;
            while (i < npairs && m->v2l[pairs[2 * i]] < flevel)
                i++;
            if (i >= npairs) {
                cache_store(c, slot, k1, pid, f);
                rpush(m, f);
                continue;
            }
            i32 var = pairs[2 * i];
            i32 fvar = m->var[f];
            if (fvar == var) {
                /* tail case: the result of (branch, i+1) is also the
                 * result for this key — pass it through a store frame */
                Frame *cf = fpush(m);
                cf->tag = FR_AFTER_LOW;
                cf->k1 = k1;
                cf->k2 = pid;
                cf->slot = slot;
                Frame *bf = fpush(m);
                bf->tag = FR_EXPAND;
                bf->f = pairs[2 * i + 1] ? m->high[f] : m->low[f];
                bf->g = i + 1;
            } else {
                Frame *cf = fpush(m);
                cf->tag = FR_COMBINE;
                cf->var = fvar;
                cf->k1 = k1;
                cf->k2 = pid;
                cf->slot = slot;
                Frame *hf = fpush(m);
                hf->tag = FR_EXPAND;
                hf->f = m->high[f];
                hf->g = i;
                Frame *lf = fpush(m);
                lf->tag = FR_EXPAND;
                lf->f = m->low[f];
                lf->g = i;
            }
        } else if (fr.tag == FR_AFTER_LOW) {
            i32 r = m->rs[m->rp - 1];
            if (c->k1[fr.slot] == fr.k1 && c->k2[fr.slot] == fr.k2)
                c->val[fr.slot] = r;
            else
                cache_store(c, fr.slot, fr.k1, fr.k2, r);
        } else { /* FR_COMBINE */
            i32 high = m->rs[--m->rp];
            i32 low = m->rs[m->rp - 1];
            i64 r = (low == high) ? low : mk(m, fr.var, low, high);
            if (r < 0)
                goto abort;
            m->rs[m->rp - 1] = (i32)r;
            if (c->k1[fr.slot] == fr.k1 && c->k2[fr.slot] == fr.k2)
                c->val[fr.slot] = (i32)r;
            else
                cache_store(c, fr.slot, fr.k1, fr.k2, (i32)r);
        }
    }
    return m->rs[--m->rp];
abort:
    m->fp = f_base;
    m->rp = r_base;
    return -1;
}

i64 nat_restrict(Mgr *m, i32 f, const i32 *pairs, i32 npairs, i32 start,
                 i64 pid) {
    if (f <= TRUE_ID || start >= npairs)
        return pack(m, f);
    cache_maybe_grow(&m->tabs[T_RESTRICT]);
    Frame *fr = fpush(m);
    fr->tag = FR_EXPAND;
    fr->f = f;
    fr->g = start;
    return pack(m, do_restrict(m, pairs, npairs, (u64)pid));
}

/* a tiny self-check hook so the loader can verify the ABI */
i64 nat_abi_version(void) { return 2; }
