"""Debug/visualization helpers for BDDs (Graphviz dot export, stats)."""

from __future__ import annotations

from repro.bdd.manager import FALSE, TRUE, BddManager, BddNode


def to_dot(node: BddNode, name: str = "bdd") -> str:
    """Render the BDD rooted at ``node`` as a Graphviz dot digraph.

    Solid edges are the 1-branches, dashed edges the 0-branches.
    """
    m = node.manager
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append('  n0 [shape=box,label="0"];')
    lines.append('  n1 [shape=box,label="1"];')
    seen: set[int] = set()
    stack = [node.id]
    while stack:
        f = stack.pop()
        if f <= TRUE or f in seen:
            continue
        seen.add(f)
        label = m.var_name_of(f)
        lines.append(f'  n{f} [shape=circle,label="{label}"];')
        lines.append(f"  n{f} -> n{m._low[f]} [style=dashed];")
        lines.append(f"  n{f} -> n{m._high[f]};")
        stack.append(m._low[f])
        stack.append(m._high[f])
    lines.append(f"  root [shape=point]; root -> n{node.id};")
    lines.append("}")
    return "\n".join(lines)


def manager_stats(manager: BddManager) -> dict[str, object]:
    """A snapshot of manager health for logs and benchmark records."""
    engine = manager.statistics()
    return {
        "num_vars": manager.num_vars,
        "num_nodes": manager.num_nodes,
        "cache_entries": sum(
            table["entries"] for table in engine["caches"].values()
        ),
        "order": manager.current_order(),
        "level_sizes": manager.level_sizes(),
        "engine": engine,
    }
