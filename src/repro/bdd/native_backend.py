"""The native-kernel BDD manager (backend name ``"native"``).

:class:`NativeBddManager` subclasses the array backend and delegates the
hot apply/quantify operations to the C kernel in ``_native/kernel.c``
(built lazily by :mod:`repro.bdd._native.build`).  The C kernel owns the
same packed-int layout the array backend defines and produces
bit-identical node-creation sequences and budget-abort points, so every
consumer — the χ engines, enumeration helpers, :mod:`repro.bdd.minimal`,
the reorderer — keeps working unchanged.

Two authority modes keep the Python and C views coherent:

* **native mode** (``_c_valid``): the C kernel owns node creation.  After
  every native call the newly created rows are mirrored into the Python
  ``_var``/``_low``/``_high`` lists (readers — enumeration, GC marking,
  ``minimal.py`` — never notice a difference), while the Python
  per-variable unique tables go stale (``_py_tables_valid`` False).
* **python mode**: garbage collection, level swaps, and reordering run
  the inherited array-kernel code, which mutates rows in place and
  remaps ids — so they first rebuild the Python unique tables from the
  rows and invalidate the C kernel.  The next native operation bulk
  re-uploads the store (``nat_load``), which also drops the C computed
  caches whose node-id keys may have been remapped.

Statistics stay truthful in both modes: the eight hot computed tables
(seven direct-mapped :class:`_NativeCacheView` objects plus the
dict-style restrict view) transparently add the C kernel's totals, so
``statistics()``, the ``bdd.*`` telemetry collector, and
``reset_statistics()`` need no special cases.
"""

from __future__ import annotations

import ctypes
import logging
import threading
import weakref

import numpy as np

from repro.bdd._native.build import load_kernel
from repro.bdd.array_backend import ArrayBddManager, _DirectCache, _H1
from repro.bdd.manager import (
    DEFAULT_CACHE_BOUND,
    FALSE,
    TRUE,
    _ComputedTable,
    _TERMINAL_VAR,
)
from repro.errors import BddError, ResourceLimitError
from repro.obs.metrics import REGISTRY

log = logging.getLogger("repro.bdd.native")

_I32P = ctypes.POINTER(ctypes.c_int32)

#: fallback reasons already warned about (one line per reason per process)
_WARNED: set[str] = set()


def native_status() -> tuple[bool, str | None]:
    """``(available, fallback_reason)`` of the native kernel."""
    lib, reason = load_kernel()
    return lib is not None, reason


def _note_fallback(reason: str) -> None:
    REGISTRY.counter("bdd.native.fallback").inc()
    if reason not in _WARNED:
        _WARNED.add(reason)
        log.warning("native BDD kernel unavailable (%s); using array kernel", reason)


def create_native_manager(**kwargs):
    """A :class:`NativeBddManager`, or the array fallback when the
    kernel cannot be built/loaded (missing compiler, failed compile)."""
    lib, reason = load_kernel()
    if lib is None:
        _note_fallback(reason or "unknown")
        return ArrayBddManager(**kwargs)
    return NativeBddManager(_lib=lib, **kwargs)


class _KernelHandle:
    """Shared ownership of one C manager: pointer, liveness, stats cache.

    The telemetry collector may read counters from another thread while
    (or after) the owning manager is garbage-collected, so every C access
    goes through this handle: reads return the last snapshot once
    ``close()`` has run, and ``close()`` folds the final counter values
    into that snapshot before freeing the C manager.
    """

    __slots__ = ("lib", "mgr", "alive", "dirty", "_snap", "_buf", "_lock")

    def __init__(self, lib, mgr):
        self.lib = lib
        self.mgr = mgr
        self.alive = True
        self.dirty = True
        self._buf = (ctypes.c_int64 * 32)()
        self._snap = [0] * 32
        self._lock = threading.Lock()

    def read(self) -> list[int]:
        if self.dirty:
            with self._lock:
                if self.alive:
                    self.lib.nat_read_stats(self.mgr, self._buf)
                    self._snap = list(self._buf)
                self.dirty = False
        return self._snap

    def invalidate_caches(self) -> None:
        with self._lock:
            if self.alive:
                self.lib.nat_invalidate_caches(self.mgr)
        self.dirty = True

    def reset_stats(self) -> None:
        with self._lock:
            if self.alive:
                self.lib.nat_reset_stats(self.mgr)
        self.dirty = True

    def close(self) -> None:
        with self._lock:
            if not self.alive:
                return
            self.lib.nat_read_stats(self.mgr, self._buf)
            self._snap = list(self._buf)
            self.alive = False
            self.lib.nat_free(self.mgr)
        self.dirty = False


class _NativeCacheView(_DirectCache):
    """A :class:`_DirectCache` whose counters include the C kernel's.

    The Python slot lists stay functional (the inherited array-kernel
    apply loops use them during python-authority episodes), while the
    ``hits``/``misses``/``evictions``/``entries`` surface adds the C
    table's totals — so ``statistics()`` and the ``bdd.*`` telemetry
    extractor read truthful numbers without knowing about the kernel.
    """

    __slots__ = ("_handle", "_base")

    def __init__(self, name: str, bound: int, handle: _KernelHandle, index: int):
        self._handle = handle
        self._base = index * 4
        super().__init__(name, bound)

    # the base-class __slots__ descriptors are shadowed by these
    # properties; the Python-side share lives in the inherited slots via
    # object.__setattr__-free plain attribute names suffixed below.

    @property
    def hits(self) -> int:  # type: ignore[override]
        return _DirectCache.hits.__get__(self) + self._handle.read()[self._base]

    @hits.setter
    def hits(self, value: int) -> None:
        _DirectCache.hits.__set__(self, value - self._handle.read()[self._base])

    @property
    def misses(self) -> int:  # type: ignore[override]
        return _DirectCache.misses.__get__(self) + self._handle.read()[self._base + 1]

    @misses.setter
    def misses(self, value: int) -> None:
        _DirectCache.misses.__set__(
            self, value - self._handle.read()[self._base + 1]
        )

    @property
    def evictions(self) -> int:  # type: ignore[override]
        return _DirectCache.evictions.__get__(self) + self._handle.read()[
            self._base + 2
        ]

    @evictions.setter
    def evictions(self, value: int) -> None:
        _DirectCache.evictions.__set__(
            self, value - self._handle.read()[self._base + 2]
        )

    @property
    def count(self) -> int:  # type: ignore[override]
        return _DirectCache.count.__get__(self) + self._handle.read()[self._base + 3]

    @count.setter
    def count(self, value: int) -> None:
        _DirectCache.count.__set__(self, value - self._handle.read()[self._base + 3])


class _NativeDictCacheView(_ComputedTable):
    """A :class:`_ComputedTable` whose counters include the C kernel's.

    The bounded dict stays functional (the inherited recursive code uses
    it during python-authority episodes), while ``hits``/``misses``/
    ``evictions`` and the ``entries`` reported by :meth:`stats` add the C
    table's totals — the dict-cache analogue of :class:`_NativeCacheView`.
    """

    __slots__ = ("_handle", "_base")

    def __init__(self, name: str, bound: int, handle: _KernelHandle, index: int):
        self._handle = handle
        self._base = index * 4
        super().__init__(name, bound)

    @property
    def hits(self) -> int:  # type: ignore[override]
        return _ComputedTable.hits.__get__(self) + self._handle.read()[self._base]

    @hits.setter
    def hits(self, value: int) -> None:
        _ComputedTable.hits.__set__(self, value - self._handle.read()[self._base])

    @property
    def misses(self) -> int:  # type: ignore[override]
        return (
            _ComputedTable.misses.__get__(self)
            + self._handle.read()[self._base + 1]
        )

    @misses.setter
    def misses(self, value: int) -> None:
        _ComputedTable.misses.__set__(
            self, value - self._handle.read()[self._base + 1]
        )

    @property
    def evictions(self) -> int:  # type: ignore[override]
        return (
            _ComputedTable.evictions.__get__(self)
            + self._handle.read()[self._base + 2]
        )

    @evictions.setter
    def evictions(self, value: int) -> None:
        _ComputedTable.evictions.__set__(
            self, value - self._handle.read()[self._base + 2]
        )

    def stats(self) -> dict[str, int]:
        out = _ComputedTable.stats(self)
        out["entries"] = len(self.table) + self._handle.read()[self._base + 3]
        return out


class NativeBddManager(ArrayBddManager):
    """The C-kernel BDD manager; see the module docstring."""

    def __init__(
        self,
        auto_reorder: bool = False,
        reorder_threshold: int = 50_000,
        max_nodes: int | None = None,
        cache_bound: int = DEFAULT_CACHE_BOUND,
        _lib=None,
    ):
        if _lib is None:
            _lib, reason = load_kernel()
            if _lib is None:
                raise BddError(f"native BDD kernel unavailable: {reason}")
        super().__init__(auto_reorder, reorder_threshold, max_nodes, cache_bound)
        mgr = _lib.nat_new(-1 if max_nodes is None else max_nodes, cache_bound)
        if not mgr:
            raise BddError("native BDD kernel allocation failed")
        handle = _KernelHandle(_lib, mgr)
        self._kernel = handle
        self._finalizer = weakref.finalize(self, handle.close)
        # hot entry points bound once (the per-op fast path is one
        # attribute load + one FFI call)
        self._c_mgr = mgr
        self._c_mk_ = _lib.nat_mk
        self._c_not = _lib.nat_not
        self._c_and = _lib.nat_and
        self._c_or = _lib.nat_or
        self._c_xor = _lib.nat_xor
        self._c_exists = _lib.nat_exists
        self._c_andex = _lib.nat_and_exists
        self._c_andall = _lib.nat_and_forall
        self._c_restrict = _lib.nat_restrict
        self._c_num_nodes = _lib.nat_num_nodes
        # authority flags: both sides start empty and coherent
        self._c_valid = True
        self._py_tables_valid = True
        # per-levels-tuple ctypes arrays, interned alongside _levels_id
        self._levels_c_arrays: dict[tuple[int, ...], tuple] = {}
        # per-assignment ctypes arrays for restrict, interned by pairs
        # tuple; the nonzero intern id stands for the whole assignment in
        # the C cache key (mirroring the Python key's ``pairs`` component)
        self._pairs_c_arrays: dict[tuple[tuple[int, int], ...], tuple] = {}
        # persistent row-readback buffers (grown on demand): a ctypes
        # slice-to-list is far cheaper than per-call numpy allocation for
        # the common few-new-rows case
        self._pull_cap = 256
        self._pull_bufs = tuple(
            (ctypes.c_int32 * self._pull_cap)() for _ in range(3)
        )
        # swap the hot computed tables for kernel-aware stat views
        self._not_tab = _NativeCacheView("not", cache_bound, handle, 0)
        self._and_tab = _NativeCacheView("and", cache_bound, handle, 1)
        self._or_tab = _NativeCacheView("or", cache_bound, handle, 2)
        self._xor_tab = _NativeCacheView("xor", cache_bound, handle, 3)
        self._exists_tab = _NativeCacheView("exists", cache_bound, handle, 4)
        self._andex_tab = _NativeCacheView("and_exists", cache_bound, handle, 5)
        self._andall_tab = _NativeCacheView("and_forall", cache_bound, handle, 6)
        self._restrict_tab = _NativeDictCacheView("restrict", cache_bound, handle, 7)
        self._tables = (
            self._not_tab,
            self._and_tab,
            self._or_tab,
            self._xor_tab,
            self._ite_tab,
            self._exists_tab,
            self._andex_tab,
            self._andall_tab,
            self._restrict_tab,
            self._compose_tab,
        )

    # ------------------------------------------------------------------
    # authority transitions
    # ------------------------------------------------------------------
    def _upload(self) -> None:
        """Re-establish C authority: bulk-load rows, order, and budget."""
        handle = self._kernel
        n = len(self._var)
        var_np = np.array(self._var, dtype=np.int32)
        low_np = np.array(self._low, dtype=np.int32)
        high_np = np.array(self._high, dtype=np.int32)
        v2l_np = np.array(self._var2level or [0], dtype=np.int32)
        handle.lib.nat_load(
            self._c_mgr,
            n,
            var_np.ctypes.data_as(_I32P),
            low_np.ctypes.data_as(_I32P),
            high_np.ctypes.data_as(_I32P),
            len(self._var2level),
            v2l_np.ctypes.data_as(_I32P),
            -1 if self._node_cap is None else self._node_cap,
        )
        handle.dirty = True
        self._c_valid = True

    def _ensure_py_tables(self) -> None:
        """Rebuild the Python unique tables from the (mirrored) rows."""
        if self._py_tables_valid:
            return
        var_np = np.array(self._var, dtype=np.int64)
        live = np.nonzero(var_np[2:] >= 0)[0] + 2
        var_live = var_np[live]
        low_np = np.array(self._low, dtype=np.int64)[live]
        high_np = np.array(self._high, dtype=np.int64)[live]
        nvars = len(self._unique)
        counts = np.bincount(var_live, minlength=nvars) if live.size else None
        hash_np = (low_np.astype(np.uint64) * np.uint64(_H1)) ^ high_np.astype(
            np.uint64
        )
        packed_np = (low_np << 32) | high_np
        order = np.argsort(var_live, kind="stable")
        start = 0
        for var, ut in enumerate(self._unique):
            count = int(counts[var]) if counts is not None else 0
            ut.reset(count)
            if not count:
                continue
            grp = order[start : start + count]
            start += count
            mask = ut.mask
            keys = ut.keys
            vals = ut.vals
            homes = (hash_np[grp] & np.uint64(mask)).tolist()
            for p, j, nid in zip(
                packed_np[grp].tolist(), homes, live[grp].tolist()
            ):
                while keys[j]:
                    j = (j + 1) & mask
                keys[j] = p
                vals[j] = nid
            ut.size = count
        self._py_tables_valid = True

    def _pull_rows(self, n: int) -> None:
        """Mirror rows ``[len(self._var), n)`` from the C kernel."""
        start = len(self._var)
        count = n - start
        if count > self._pull_cap:
            self._pull_cap = max(count, self._pull_cap * 2)
            self._pull_bufs = tuple(
                (ctypes.c_int32 * self._pull_cap)() for _ in range(3)
            )
        vb, lb, hb = self._pull_bufs
        self._kernel.lib.nat_read_rows(self._c_mgr, start, count, vb, lb, hb)
        self._var.extend(vb[:count])
        self._low.extend(lb[:count])
        self._high.extend(hb[:count])
        self._nodes_created += count
        live = self._nodes_live + count
        self._nodes_live = live
        if live > self._peak_live:
            self._peak_live = live
        self._py_tables_valid = False

    def _finish(self, ret: int) -> int:
        """Decode a packed op result; mirror new rows; raise on abort."""
        kernel = self._kernel
        kernel.dirty = True
        if ret < 0:
            n = self._c_num_nodes(self._c_mgr)
            if n > len(self._var):
                self._pull_rows(n)
            raise ResourceLimitError(
                f"BDD node budget exceeded ({self.max_nodes} nodes)"
            )
        n = ret >> 32
        if n > len(self._var):
            self._pull_rows(n)
        return ret & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str):
        if self._c_valid:
            self._kernel.lib.nat_add_var(self._c_mgr)
        return super().add_var(name)

    # ------------------------------------------------------------------
    # node construction / apply operations
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        if not self._c_valid:
            return ArrayBddManager._mk(self, var, low, high)
        # unlike the apply loops, a _mk can create at most one row and
        # its contents are exactly the arguments — mirror it directly
        # instead of reading it back across the FFI (the structured-key
        # operations inherited from the object kernel call _mk per
        # recursion step, so this path is hot)
        ret = self._c_mk_(self._c_mgr, var, low, high)
        kernel = self._kernel
        kernel.dirty = True
        if ret < 0:
            n = self._c_num_nodes(self._c_mgr)
            if n > len(self._var):
                self._pull_rows(n)
            raise ResourceLimitError(
                f"BDD node budget exceeded ({self.max_nodes} nodes)"
            )
        if (ret >> 32) > len(self._var):
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._nodes_created += 1
            live = self._nodes_live + 1
            self._nodes_live = live
            if live > self._peak_live:
                self._peak_live = live
            self._py_tables_valid = False
        return ret & 0xFFFFFFFF

    def _not(self, f: int) -> int:
        if not self._c_valid:
            self._upload()
        return self._finish(self._c_not(self._c_mgr, f))

    def _and(self, f: int, g: int) -> int:
        if not self._c_valid:
            self._upload()
        return self._finish(self._c_and(self._c_mgr, f, g))

    def _or(self, f: int, g: int) -> int:
        if not self._c_valid:
            self._upload()
        return self._finish(self._c_or(self._c_mgr, f, g))

    def _xor(self, f: int, g: int) -> int:
        if not self._c_valid:
            self._upload()
        return self._finish(self._c_xor(self._c_mgr, f, g))

    def _levels_c(self, levels: tuple[int, ...]):
        entry = self._levels_c_arrays.get(levels)
        if entry is None:
            arr = (ctypes.c_int32 * len(levels))(*levels)
            entry = (arr, self._levels_id(levels))
            self._levels_c_arrays[levels] = entry
        return entry

    def _exists(self, f: int, levels: tuple[int, ...]) -> int:
        if f <= TRUE or not levels:
            return f
        if not self._c_valid:
            self._upload()
        arr, lid = self._levels_c(levels)
        return self._finish(
            self._c_exists(self._c_mgr, f, arr, len(levels), lid)
        )

    def _and_exists(self, f: int, g: int, levels: tuple[int, ...]) -> int:
        if not levels:
            return self._and(f, g)
        if not self._c_valid:
            self._upload()
        arr, lid = self._levels_c(levels)
        return self._finish(
            self._c_andex(self._c_mgr, f, g, arr, len(levels), lid)
        )

    def _and_forall(self, f: int, g: int, levels: tuple[int, ...]) -> int:
        if not levels:
            return self._and(f, g)
        if not self._c_valid:
            self._upload()
        arr, lid = self._levels_c(levels)
        return self._finish(
            self._c_andall(self._c_mgr, f, g, arr, len(levels), lid)
        )

    def _pairs_c(self, pairs: tuple[tuple[int, int], ...]):
        entry = self._pairs_c_arrays.get(pairs)
        if entry is None:
            flat = [x for pair in pairs for x in pair]
            arr = (ctypes.c_int32 * len(flat))(*flat)
            entry = (arr, len(self._pairs_c_arrays) + 1)
            self._pairs_c_arrays[pairs] = entry
        return entry

    def _restrict(
        self, f: int, pairs: tuple[tuple[int, int], ...], start: int
    ) -> int:
        if f <= TRUE or start >= len(pairs):
            return f
        if not self._c_valid:
            self._upload()
        arr, pid = self._pairs_c(pairs)
        return self._finish(
            self._c_restrict(self._c_mgr, f, arr, len(pairs), start, pid)
        )

    # ------------------------------------------------------------------
    # maintenance: these run the inherited array-kernel machinery under
    # python authority, then leave the C kernel to re-upload lazily
    # ------------------------------------------------------------------
    def garbage_collect(self) -> int:
        self._ensure_py_tables()
        self._c_valid = False
        reclaimed = super().garbage_collect()
        self._py_tables_valid = True
        return reclaimed

    def swap_levels(self, level: int) -> None:
        self._ensure_py_tables()
        self._c_valid = False
        super().swap_levels(level)
        self._py_tables_valid = True

    def level_sizes(self) -> list[int]:
        self._ensure_py_tables()
        return super().level_sizes()

    def _invalidate_caches(self) -> None:
        self._kernel.invalidate_caches()
        super()._invalidate_caches()

    def reset_statistics(self) -> None:
        self._kernel.reset_stats()
        super().reset_statistics()


__all__ = [
    "NativeBddManager",
    "create_native_manager",
    "native_status",
]
