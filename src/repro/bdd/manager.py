"""The BDD manager: unique table, apply ops, quantifiers, GC, variable order.

Implementation notes
--------------------

* Nodes are integer ids into three parallel lists ``_var``, ``_low``,
  ``_high``.  Ids 0 and 1 are the FALSE and TRUE terminals (``_var`` = -1).
* There are no complement edges; negation is a dedicated cached recursion.
* AND/OR/XOR/NOT run as dedicated two-operand apply recursions with
  commutatively normalized cache keys; the generic three-operand ITE is
  kept for the residual if-then-else cases and routes its binary
  specializations to the dedicated operators.
* Quantification can be fused with conjunction: ``and_exists`` (the
  relational product), ``and_forall`` and ``forall_implied`` never build
  the intermediate conjunction BDD.
* Every operation has its own size-bounded computed table with hit/miss/
  eviction counters; tables are invalidated as a group (generation bump)
  on garbage collection and on level swaps.  ``statistics()`` reports the
  counters, per-op totals, peak live nodes and reorder activity.
* Variable order is indirect: nodes store a *variable index*; the order is
  the pair of maps ``_var2level`` / ``_level2var``.  In-place adjacent-level
  swaps (see :mod:`repro.bdd.reorder`) only touch nodes of the upper level,
  so node ids — and therefore every BDD held by a client — survive dynamic
  reordering.
* External references are tracked with a refcount updated by the
  :class:`BddNode` wrapper (created on wrap, released on ``__del__``), which
  makes mark-and-sweep garbage collection possible without any client
  bookkeeping.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import BddError
from repro.obs.metrics import REGISTRY, EngineTelemetry

FALSE = 0
TRUE = 1
_TERMINAL_VAR = -1

#: default per-operation computed-table bound (entries); a table that
#: grows past this is dropped wholesale (CUDD-style lossy cache) and the
#: eviction is counted in :meth:`BddManager.statistics`.
DEFAULT_CACHE_BOUND = 1 << 20


class _ComputedTable:
    """One per-operation computed table: a bounded dict plus counters."""

    __slots__ = ("name", "table", "bound", "hits", "misses", "evictions")

    def __init__(self, name: str, bound: int):
        self.name = name
        self.table: dict = {}
        self.bound = bound
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def put(self, key, value) -> None:
        table = self.table
        if len(table) >= self.bound:
            # FIFO eviction: dicts iterate in insertion order, so dropping
            # the first key retires the oldest entry in O(1) — far gentler
            # on the hit rate than clearing the table wholesale.
            del table[next(iter(table))]
            self.evictions += 1
        table[key] = value

    def clear(self) -> None:
        self.table.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self.table),
        }


class BddNode:
    """A client-facing handle to a BDD node.

    Supports the Boolean operators ``& | ^ ~`` plus ``implies`` /
    ``equiv`` / ``ite`` and comparison by function identity (two handles
    compare equal iff they denote the same function in the same manager).
    """

    __slots__ = ("manager", "id", "__weakref__")

    def __init__(self, manager: "BddManager", node_id: int):
        self.manager = manager
        self.id = node_id
        manager._incref(node_id)

    def __del__(self):  # pragma: no cover - exercised indirectly
        # During interpreter shutdown the manager (or its tables) may
        # already be torn down, surfacing as AttributeError/TypeError from
        # the half-collected objects; anything else is a real bug and must
        # propagate.
        try:
            manager = self.manager
        except AttributeError:
            return
        try:
            manager._decref(self.id)
        except (AttributeError, TypeError):
            pass

    # -- operators ------------------------------------------------------
    def _check(self, other: "BddNode") -> None:
        if other.manager is not self.manager:
            raise BddError("operands belong to different BDD managers")

    def __and__(self, other: "BddNode") -> "BddNode":
        self._check(other)
        return self.manager._wrap(self.manager._and(self.id, other.id))

    def __or__(self, other: "BddNode") -> "BddNode":
        self._check(other)
        return self.manager._wrap(self.manager._or(self.id, other.id))

    def __xor__(self, other: "BddNode") -> "BddNode":
        self._check(other)
        return self.manager._wrap(self.manager._xor(self.id, other.id))

    def __invert__(self) -> "BddNode":
        return self.manager._wrap(self.manager._not(self.id))

    def implies(self, other: "BddNode") -> "BddNode":
        self._check(other)
        m = self.manager
        return m._wrap(m._ite(self.id, other.id, TRUE))

    def equiv(self, other: "BddNode") -> "BddNode":
        self._check(other)
        m = self.manager
        return m._wrap(m._not(m._xor(self.id, other.id)))

    def ite(self, then_: "BddNode", else_: "BddNode") -> "BddNode":
        self._check(then_)
        self._check(else_)
        return self.manager._wrap(self.manager._ite(self.id, then_.id, else_.id))

    # -- predicates ------------------------------------------------------
    @property
    def is_false(self) -> bool:
        return self.id == FALSE

    @property
    def is_true(self) -> bool:
        return self.id == TRUE

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BddNode)
            and other.manager is self.manager
            and other.id == self.id
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.id))

    def __bool__(self) -> bool:
        raise BddError(
            "BddNode truth value is ambiguous; use .is_true / .is_false"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.id == FALSE:
            return "<BDD FALSE>"
        if self.id == TRUE:
            return "<BDD TRUE>"
        return f"<BDD node {self.id} var={self.manager.var_name_of(self.id)}>"


def _bdd_engine_counters(state: dict) -> dict[str, float]:
    """Monotone ``bdd.*`` totals from a manager's ``__dict__``.

    Polled lazily by the metrics registry at snapshot time (and once more
    when a manager is garbage collected), so ``_mk`` and the apply
    recursions carry no metrics code at all.  Note these restart if
    ``reset_statistics()`` is called on a live manager; interval accounting
    through :mod:`repro.obs.metrics` should bracket work with
    ``snapshot()``/``diff()`` instead of resetting.
    """
    hits = misses = evictions = 0
    for tab in state["_tables"]:
        hits += tab.hits
        misses += tab.misses
        evictions += tab.evictions
    return {
        "bdd.ops": float(hits + misses),
        "bdd.cache_hits": float(hits),
        "bdd.cache_misses": float(misses),
        "bdd.cache_evictions": float(evictions),
        "bdd.nodes_created": float(state["_nodes_created"]),
        "bdd.gc_runs": float(state["_gc_runs"]),
        "bdd.gc_reclaimed": float(state["_gc_reclaimed"]),
        "bdd.level_swaps": float(state["_level_swaps"]),
        "bdd.reorder_events": float(state["_reorder_events"]),
    }


def _bdd_engine_gauges(state: dict) -> dict[str, float]:
    """Instantaneous values, summed over live managers only."""
    return {
        "bdd.nodes_live": float(state["_nodes_live"]),
        "bdd.peak_live": float(state["_peak_live"]),
    }


_TELEMETRY = EngineTelemetry("bdd", _bdd_engine_counters, _bdd_engine_gauges)
REGISTRY.register_collector("bdd", _TELEMETRY.collect)


class BddManager:
    """A reduced ordered BDD manager with dynamic reordering support."""

    def __init__(
        self,
        auto_reorder: bool = False,
        reorder_threshold: int = 50_000,
        max_nodes: int | None = None,
        cache_bound: int = DEFAULT_CACHE_BOUND,
    ):
        # terminals occupy ids 0 and 1
        self._var: list[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._free: list[int] = []
        # per-variable unique tables: var index -> {(low, high): id}
        self._unique: list[dict[tuple[int, int], int]] = []
        self._var2level: list[int] = []
        self._level2var: list[int] = []
        self._names: list[str] = []
        self._name2var: dict[str, int] = {}
        # per-operation computed tables
        self._not_tab = _ComputedTable("not", cache_bound)
        self._and_tab = _ComputedTable("and", cache_bound)
        self._or_tab = _ComputedTable("or", cache_bound)
        self._xor_tab = _ComputedTable("xor", cache_bound)
        self._ite_tab = _ComputedTable("ite", cache_bound)
        self._exists_tab = _ComputedTable("exists", cache_bound)
        self._andex_tab = _ComputedTable("and_exists", cache_bound)
        self._andall_tab = _ComputedTable("and_forall", cache_bound)
        self._restrict_tab = _ComputedTable("restrict", cache_bound)
        self._compose_tab = _ComputedTable("compose", cache_bound)
        self._tables = (
            self._not_tab,
            self._and_tab,
            self._or_tab,
            self._xor_tab,
            self._ite_tab,
            self._exists_tab,
            self._andex_tab,
            self._andall_tab,
            self._restrict_tab,
            self._compose_tab,
        )
        #: shared scratch cache for helper modules (e.g. the lattice
        #: closures in :mod:`repro.bdd.minimal`); invalidated with the
        #: per-operation tables.
        self._cache: dict = {}
        self._extref: dict[int, int] = {}
        self.auto_reorder = auto_reorder
        self.reorder_threshold = reorder_threshold
        #: raise :class:`~repro.errors.ResourceLimitError` when the node
        #: table exceeds this many entries — the library's analogue of the
        #: paper's "memory out" rows in Table 1.
        self.max_nodes = max_nodes
        self._reordering = False
        # instrumentation
        self._nodes_live = 0  # internal (table-resident) nodes, terminals excluded
        self._peak_live = 0
        self._nodes_created = 0  # lifetime _mk insertions (monotone)
        self._generation = 0
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._level_swaps = 0
        self._reorder_events = 0
        _TELEMETRY.track(self)

    # ------------------------------------------------------------------
    # reference counting / wrapping
    # ------------------------------------------------------------------
    def _incref(self, node_id: int) -> None:
        self._extref[node_id] = self._extref.get(node_id, 0) + 1

    def _decref(self, node_id: int) -> None:
        count = self._extref.get(node_id, 0) - 1
        if count <= 0:
            self._extref.pop(node_id, None)
        else:
            self._extref[node_id] = count

    def _wrap(self, node_id: int) -> BddNode:
        node = BddNode(self, node_id)
        # Safe point for dynamic reordering: no recursive operation is in
        # flight when a result is being wrapped for the client.
        if self.auto_reorder:
            self._maybe_auto_reorder()
        return node

    @property
    def false(self) -> BddNode:
        return self._wrap(FALSE)

    @property
    def true(self) -> BddNode:
        return self._wrap(TRUE)

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> BddNode:
        """Declare a new variable at the bottom of the current order."""
        if name in self._name2var:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._names)
        self._names.append(name)
        self._name2var[name] = var
        self._unique.append({})
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return self._wrap(self._mk(var, FALSE, TRUE))

    def var(self, name: str) -> BddNode:
        """The BDD of an existing variable."""
        try:
            var = self._name2var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None
        return self._wrap(self._mk(var, FALSE, TRUE))

    def nvar(self, name: str) -> BddNode:
        """The BDD of the negation of an existing variable."""
        try:
            var = self._name2var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None
        return self._wrap(self._mk(var, TRUE, FALSE))

    def has_var(self, name: str) -> bool:
        return name in self._name2var

    @property
    def var_names(self) -> list[str]:
        return list(self._names)

    @property
    def num_vars(self) -> int:
        return len(self._names)

    def var_index(self, name: str) -> int:
        try:
            return self._name2var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def level_of(self, name: str) -> int:
        return self._var2level[self.var_index(name)]

    def var_at_level(self, level: int) -> str:
        return self._names[self._level2var[level]]

    def current_order(self) -> list[str]:
        return [self._names[v] for v in self._level2var]

    def var_name_of(self, node_id: int) -> str:
        var = self._var[node_id]
        if var == _TERMINAL_VAR:
            raise BddError("terminal node has no variable")
        return self._names[var]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _level(self, node_id: int) -> int:
        var = self._var[node_id]
        if var == _TERMINAL_VAR:
            return len(self._level2var) + 1  # below everything
        return self._var2level[var]

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        table = self._unique[var]
        key = (low, high)
        node_id = table.get(key)
        if node_id is not None:
            return node_id
        if (
            self.max_nodes is not None
            and len(self._var) - len(self._free) > self.max_nodes
        ):
            from repro.errors import ResourceLimitError

            raise ResourceLimitError(
                f"BDD node budget exceeded ({self.max_nodes} nodes)"
            )
        if self._free:
            node_id = self._free.pop()
            self._var[node_id] = var
            self._low[node_id] = low
            self._high[node_id] = high
        else:
            node_id = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
        table[key] = node_id
        self._nodes_created += 1
        live = self._nodes_live + 1
        self._nodes_live = live
        if live > self._peak_live:
            self._peak_live = live
        return node_id

    @property
    def num_nodes(self) -> int:
        """Number of live (table-resident) internal nodes, plus terminals.

        Maintained incrementally by ``_mk`` / GC / level swaps, so reading
        it is O(1) — it is consulted on every auto-reorder safe point.
        """
        return 2 + self._nodes_live

    def size(self, node: BddNode) -> int:
        """Number of nodes in the DAG rooted at ``node`` (incl. terminals)."""
        seen: set[int] = set()
        stack = [node.id]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if self._var[n] != _TERMINAL_VAR:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return len(seen)

    # ------------------------------------------------------------------
    # core operations (internal, on ids)
    # ------------------------------------------------------------------
    def _not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        tab = self._not_tab
        table = tab.table
        result = table.get(f)
        if result is not None:
            tab.hits += 1
            return result
        tab.misses += 1
        result = self._mk(
            self._var[f], self._not(self._low[f]), self._not(self._high[f])
        )
        if len(table) >= tab.bound:
            del table[next(iter(table))]
            tab.evictions += 1
        table[f] = result
        return result

    def _and(self, f: int, g: int) -> int:
        if f == g:
            return f
        if f > g:  # commutative: normalize operand order for the cache key
            f, g = g, f
        if f == FALSE:
            return FALSE
        if f == TRUE:
            return g
        tab = self._and_tab
        table = tab.table
        key = (f, g)
        result = table.get(key)
        if result is not None:
            tab.hits += 1
            return result
        tab.misses += 1
        var_ = self._var
        v2l = self._var2level
        lf = v2l[var_[f]]
        lg = v2l[var_[g]]
        if lf <= lg:
            var = var_[f]
            f0, f1 = self._low[f], self._high[f]
        else:
            var = var_[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._low[g], self._high[g]
        else:
            g0 = g1 = g
        low = self._and(f0, g0)
        high = self._and(f1, g1)
        result = low if low == high else self._mk(var, low, high)
        if len(table) >= tab.bound:
            del table[next(iter(table))]
            tab.evictions += 1
        table[key] = result
        return result

    def _or(self, f: int, g: int) -> int:
        if f == g:
            return f
        if f > g:
            f, g = g, f
        if f == FALSE:
            return g
        if f == TRUE:
            return TRUE
        tab = self._or_tab
        table = tab.table
        key = (f, g)
        result = table.get(key)
        if result is not None:
            tab.hits += 1
            return result
        tab.misses += 1
        var_ = self._var
        v2l = self._var2level
        lf = v2l[var_[f]]
        lg = v2l[var_[g]]
        if lf <= lg:
            var = var_[f]
            f0, f1 = self._low[f], self._high[f]
        else:
            var = var_[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._low[g], self._high[g]
        else:
            g0 = g1 = g
        low = self._or(f0, g0)
        high = self._or(f1, g1)
        result = low if low == high else self._mk(var, low, high)
        if len(table) >= tab.bound:
            del table[next(iter(table))]
            tab.evictions += 1
        table[key] = result
        return result

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f > g:
            f, g = g, f
        if f == FALSE:
            return g
        if f == TRUE:
            return self._not(g)
        tab = self._xor_tab
        table = tab.table
        key = (f, g)
        result = table.get(key)
        if result is not None:
            tab.hits += 1
            return result
        tab.misses += 1
        var_ = self._var
        v2l = self._var2level
        lf = v2l[var_[f]]
        lg = v2l[var_[g]]
        if lf <= lg:
            var = var_[f]
            f0, f1 = self._low[f], self._high[f]
        else:
            var = var_[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._low[g], self._high[g]
        else:
            g0 = g1 = g
        low = self._xor(f0, g0)
        high = self._xor(f1, g1)
        result = low if low == high else self._mk(var, low, high)
        if len(table) >= tab.bound:
            del table[next(iter(table))]
            tab.evictions += 1
        table[key] = result
        return result

    def _ite(self, f: int, g: int, h: int) -> int:
        # terminal cases
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        # binary specializations route to the dedicated apply operators
        if g == TRUE:
            return f if h == FALSE else self._or(f, h)
        if h == FALSE:
            return self._and(f, g)
        if g == FALSE and h == TRUE:
            return self._not(f)
        tab = self._ite_tab
        key = (f, g, h)
        result = tab.table.get(key)
        if result is not None:
            tab.hits += 1
            return result
        tab.misses += 1
        # split on the top variable
        level = min(self._level(f), self._level(g), self._level(h))
        var = self._level2var[level]

        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        low = self._ite(f0, g0, h0)
        high = self._ite(f1, g1, h1)
        result = low if low == high else self._mk(var, low, high)
        tab.put(key, result)
        return result

    def _cofactors(self, node_id: int, var: int) -> tuple[int, int]:
        if self._var[node_id] == var:
            return self._low[node_id], self._high[node_id]
        return node_id, node_id

    def _maybe_auto_reorder(self) -> None:
        if (
            self.auto_reorder
            and not self._reordering
            and self._nodes_live + 2 > self.reorder_threshold
        ):
            from repro.bdd.reorder import sift

            self._reordering = True
            try:
                sift(self)
            finally:
                self._reordering = False
            # back off so we do not thrash
            self.reorder_threshold = max(self.reorder_threshold, self.num_nodes * 2)

    # ------------------------------------------------------------------
    # public combinational helpers
    # ------------------------------------------------------------------
    def conjoin(self, nodes: Iterable[BddNode]) -> BddNode:
        """The conjunction of ``nodes``, combined as a balanced tree.

        Pairwise reduction rounds keep the intermediate BDDs balanced (a
        linear fold accumulates one lopsided conjunct that every further
        AND must traverse); an intermediate FALSE short-circuits.
        """
        ids = [node.id for node in nodes]
        return self._wrap(self._balanced(ids, self._and, TRUE, FALSE))

    def disjoin(self, nodes: Iterable[BddNode]) -> BddNode:
        """The disjunction of ``nodes``, combined as a balanced tree."""
        ids = [node.id for node in nodes]
        return self._wrap(self._balanced(ids, self._or, FALSE, TRUE))

    def _balanced(self, ids: list[int], op, unit: int, absorbing: int) -> int:
        if not ids:
            return unit
        while len(ids) > 1:
            merged: list[int] = []
            for i in range(0, len(ids) - 1, 2):
                r = op(ids[i], ids[i + 1])
                if r == absorbing:
                    return absorbing
                merged.append(r)
            if len(ids) % 2:
                merged.append(ids[-1])
            ids = merged
        return ids[0]

    # ------------------------------------------------------------------
    # restriction / composition
    # ------------------------------------------------------------------
    def restrict(self, node: BddNode, assignment: Mapping[str, int]) -> BddNode:
        """Cofactor with respect to a partial variable assignment."""
        pairs = sorted(
            ((self.var_index(name), value) for name, value in assignment.items()),
            key=lambda p: self._var2level[p[0]],
        )
        return self._wrap(self._restrict(node.id, tuple(pairs), 0))

    def _restrict(self, f: int, pairs: tuple[tuple[int, int], ...], start: int) -> int:
        if f <= TRUE or start >= len(pairs):
            return f
        tab = self._restrict_tab
        key = (f, pairs, start)
        result = tab.table.get(key)
        if result is not None:
            tab.hits += 1
            return result
        tab.misses += 1
        flevel = self._level(f)
        # skip assignment entries above f's top variable
        i = start
        while i < len(pairs) and self._var2level[pairs[i][0]] < flevel:
            i += 1
        if i >= len(pairs):
            result = f
        else:
            var, value = pairs[i]
            fvar = self._var[f]
            if fvar == var:
                branch = self._high[f] if value else self._low[f]
                result = self._restrict(branch, pairs, i + 1)
            else:
                low = self._restrict(self._low[f], pairs, i)
                high = self._restrict(self._high[f], pairs, i)
                result = self._mk(fvar, low, high)
        tab.put(key, result)
        return result

    def compose(self, node: BddNode, name: str, replacement: BddNode) -> BddNode:
        """Substitute ``replacement`` for variable ``name`` in ``node``."""
        var = self.var_index(name)
        return self._wrap(self._compose(node.id, var, replacement.id))

    def _compose(self, f: int, var: int, g: int) -> int:
        if f <= TRUE:
            return f
        if self._var2level[self._var[f]] > self._var2level[var]:
            return f  # var cannot appear below its own level
        tab = self._compose_tab
        key = (f, var, g)
        result = tab.table.get(key)
        if result is not None:
            tab.hits += 1
            return result
        tab.misses += 1
        if self._var[f] == var:
            result = self._ite(g, self._high[f], self._low[f])
        else:
            low = self._compose(self._low[f], var, g)
            high = self._compose(self._high[f], var, g)
            # children may now have tops above f's var; use ITE on f's var
            v = self._mk(self._var[f], FALSE, TRUE)
            result = self._ite(v, high, low)
        tab.put(key, result)
        return result

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def _levels_of(self, names: Sequence[str]) -> tuple[int, ...]:
        return tuple(
            sorted({self._var2level[self.var_index(n)] for n in names})
        )

    def exists(self, names: Sequence[str], node: BddNode) -> BddNode:
        return self._wrap(self._exists(node.id, self._levels_of(names)))

    def forall(self, names: Sequence[str], node: BddNode) -> BddNode:
        levels = self._levels_of(names)
        return self._wrap(self._not(self._exists(self._not(node.id), levels)))

    def _exists(self, f: int, levels: tuple[int, ...]) -> int:
        """∃ levels . f — ``levels`` is a sorted tuple of quantified levels."""
        if f <= TRUE or not levels:
            return f
        max_level = levels[-1]
        level_set = set(levels)
        var_ = self._var
        v2l = self._var2level
        low_ = self._low
        high_ = self._high
        tab = self._exists_tab
        table = tab.table

        def rec(f: int) -> int:
            if f <= TRUE:
                return f
            flevel = v2l[var_[f]]
            if flevel > max_level:
                return f  # below every quantified level: nothing to do
            key = (f, levels)
            result = table.get(key)
            if result is not None:
                tab.hits += 1
                return result
            tab.misses += 1
            low = rec(low_[f])
            if flevel in level_set:
                # ∃x.f = f0 ∨ f1: a TRUE cofactor decides immediately
                result = TRUE if low == TRUE else self._or(low, rec(high_[f]))
            else:
                high = rec(high_[f])
                result = low if low == high else self._mk(var_[f], low, high)
            tab.put(key, result)
            return result

        return rec(f)

    # -- fused quantifier-apply operators -------------------------------
    def _check_mine(self, f: BddNode, g: BddNode) -> None:
        if f.manager is not self or g.manager is not self:
            raise BddError("operands belong to different BDD managers")

    def and_exists(
        self, names: Sequence[str], f: BddNode, g: BddNode
    ) -> BddNode:
        """The relational product ∃ names . (f ∧ g), without building f ∧ g."""
        self._check_mine(f, g)
        return self._wrap(self._and_exists(f.id, g.id, self._levels_of(names)))

    def and_forall(
        self, names: Sequence[str], f: BddNode, g: BddNode
    ) -> BddNode:
        """∀ names . (f ∧ g), fused — the dual of :meth:`and_exists`."""
        self._check_mine(f, g)
        return self._wrap(self._and_forall(f.id, g.id, self._levels_of(names)))

    def forall_implied(
        self, names: Sequence[str], f: BddNode, g: BddNode
    ) -> BddNode:
        """∀ names . (f → g) = ¬∃ names . (f ∧ ¬g), fused."""
        self._check_mine(f, g)
        levels = self._levels_of(names)
        return self._wrap(
            self._not(self._and_exists(f.id, self._not(g.id), levels))
        )

    def _and_exists(self, f: int, g: int, levels: tuple[int, ...]) -> int:
        if not levels:
            return self._and(f, g)
        max_level = levels[-1]
        level_set = set(levels)
        var_ = self._var
        v2l = self._var2level
        low_ = self._low
        high_ = self._high
        tab = self._andex_tab
        table = tab.table

        def rec(f: int, g: int) -> int:
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return self._exists(g, levels)
            if g == TRUE:
                return self._exists(f, levels)
            if f == g:
                return self._exists(f, levels)
            if f > g:
                f, g = g, f
            lf = v2l[var_[f]]
            lg = v2l[var_[g]]
            top = lf if lf <= lg else lg
            if top > max_level:
                return self._and(f, g)
            key = (f, g, levels)
            result = table.get(key)
            if result is not None:
                tab.hits += 1
                return result
            tab.misses += 1
            if lf <= lg:
                var = var_[f]
                f0, f1 = low_[f], high_[f]
            else:
                var = var_[g]
                f0 = f1 = f
            if lg <= lf:
                g0, g1 = low_[g], high_[g]
            else:
                g0 = g1 = g
            low = rec(f0, g0)
            if top in level_set:
                result = TRUE if low == TRUE else self._or(low, rec(f1, g1))
            else:
                high = rec(f1, g1)
                result = low if low == high else self._mk(var, low, high)
            tab.put(key, result)
            return result

        return rec(f, g)

    def _and_forall(self, f: int, g: int, levels: tuple[int, ...]) -> int:
        if not levels:
            return self._and(f, g)
        max_level = levels[-1]
        level_set = set(levels)
        var_ = self._var
        v2l = self._var2level
        low_ = self._low
        high_ = self._high
        tab = self._andall_tab
        table = tab.table

        def forall_one(f: int) -> int:
            return self._not(self._exists(self._not(f), levels))

        def rec(f: int, g: int) -> int:
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return forall_one(g)
            if g == TRUE:
                return forall_one(f)
            if f == g:
                return forall_one(f)
            if f > g:
                f, g = g, f
            lf = v2l[var_[f]]
            lg = v2l[var_[g]]
            top = lf if lf <= lg else lg
            if top > max_level:
                return self._and(f, g)
            key = (f, g, levels)
            result = table.get(key)
            if result is not None:
                tab.hits += 1
                return result
            tab.misses += 1
            if lf <= lg:
                var = var_[f]
                f0, f1 = low_[f], high_[f]
            else:
                var = var_[g]
                f0 = f1 = f
            if lg <= lf:
                g0, g1 = low_[g], high_[g]
            else:
                g0 = g1 = g
            low = rec(f0, g0)
            if top in level_set:
                # ∀x.h = h0 ∧ h1: a FALSE cofactor decides immediately
                result = FALSE if low == FALSE else self._and(low, rec(f1, g1))
            else:
                high = rec(f1, g1)
                result = low if low == high else self._mk(var, low, high)
            tab.put(key, result)
            return result

        return rec(f, g)

    # ------------------------------------------------------------------
    # satisfiability / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, node: BddNode, assignment: Mapping[str, int]) -> bool:
        f = node.id
        while f > TRUE:
            name = self._names[self._var[f]]
            try:
                value = assignment[name]
            except KeyError:
                raise BddError(f"assignment missing variable {name!r}") from None
            f = self._high[f] if value else self._low[f]
        return f == TRUE

    def pick(self, node: BddNode) -> dict[str, int] | None:
        """One satisfying partial assignment, or None if unsatisfiable."""
        if node.id == FALSE:
            return None
        result: dict[str, int] = {}
        f = node.id
        while f > TRUE:
            name = self._names[self._var[f]]
            if self._low[f] != FALSE:
                result[name] = 0
                f = self._low[f]
            else:
                result[name] = 1
                f = self._high[f]
        return result

    def sat_count(self, node: BddNode, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        if nvars is None:
            nvars = self.num_vars
        cache: dict[int, int] = {}
        nlevels = len(self._level2var)

        def count(f: int) -> int:
            # number of solutions over variables strictly below f's level,
            # normalized to level(f)
            if f == FALSE:
                return 0
            if f == TRUE:
                return 1
            if f in cache:
                return cache[f]
            lf = self._level(f)
            c0 = count(self._low[f]) << (self._gap(lf, self._low[f]))
            c1 = count(self._high[f]) << (self._gap(lf, self._high[f]))
            result = c0 + c1
            cache[f] = result
            return result

        if node.id <= TRUE:
            return node.id * (1 << nvars)
        top_gap = min(self._level(node.id), nlevels)
        total = count(node.id) << top_gap
        # count() assumed one variable per level; rescale to requested nvars
        shift = nvars - len(self._level2var)
        if shift >= 0:
            return total << shift
        # fewer vars requested than declared: legal only when the function
        # is independent of the surplus variables
        if total % (1 << (-shift)):
            raise BddError(
                "sat_count nvars smaller than the function's support"
            )
        return total >> (-shift)

    def _gap(self, parent_level: int, child: int) -> int:
        child_level = min(self._level(child), len(self._level2var))
        return child_level - parent_level - 1

    def sat_iter(
        self, node: BddNode, care_vars: Sequence[str] | None = None
    ) -> Iterator[dict[str, int]]:
        """Enumerate satisfying assignments, complete over ``care_vars``."""
        if care_vars is None:
            care = list(self._names)
        else:
            care = list(care_vars)
        care_set = set(care)

        def walk(f: int, partial: dict[str, int]) -> Iterator[dict[str, int]]:
            if f == FALSE:
                return
            if f == TRUE:
                free = [v for v in care if v not in partial]
                for bits in itertools.product((0, 1), repeat=len(free)):
                    full = dict(partial)
                    full.update(zip(free, bits))
                    yield full
                return
            name = self._names[self._var[f]]
            for value, child in ((0, self._low[f]), (1, self._high[f])):
                new_partial = dict(partial)
                if name in care_set:
                    new_partial[name] = value
                elif child == FALSE:
                    continue
                yield from walk(child, new_partial)

        yield from walk(node.id, {})

    def support(self, node: BddNode) -> set[str]:
        """Names of the variables the function depends on."""
        seen: set[int] = set()
        vars_: set[int] = set()
        stack = [node.id]
        while stack:
            f = stack.pop()
            if f <= TRUE or f in seen:
                continue
            seen.add(f)
            vars_.add(self._var[f])
            stack.append(self._low[f])
            stack.append(self._high[f])
        return {self._names[v] for v in vars_}

    # ------------------------------------------------------------------
    # cube covers
    # ------------------------------------------------------------------
    def cube_iter(self, node: BddNode) -> Iterator[dict[str, int]]:
        """Enumerate the (disjoint) path-cubes of the BDD."""

        def walk(f: int, partial: dict[str, int]) -> Iterator[dict[str, int]]:
            if f == FALSE:
                return
            if f == TRUE:
                yield dict(partial)
                return
            name = self._names[self._var[f]]
            partial[name] = 0
            yield from walk(self._low[f], partial)
            partial[name] = 1
            yield from walk(self._high[f], partial)
            del partial[name]

        yield from walk(node.id, {})

    def from_cube(self, literals: Mapping[str, int]) -> BddNode:
        """The conjunction of the given literals."""
        result = TRUE
        for name, value in sorted(
            literals.items(), key=lambda kv: -self.level_of(kv[0])
        ):
            var = self.var_index(name)
            v = self._mk(var, FALSE, TRUE)
            lit = v if value else self._not(v)
            result = self._and(result, lit)
        return self._wrap(result)

    # ------------------------------------------------------------------
    # computed-table management / observability
    # ------------------------------------------------------------------
    def _invalidate_caches(self) -> None:
        """Drop every computed table (new generation).

        Called on GC and on level swaps: both can change what a cached
        (operands → result) entry means — GC recycles node ids, swaps
        change the level structure the recursions keyed on.
        """
        self._generation += 1
        for tab in self._tables:
            tab.clear()
        self._cache.clear()

    def statistics(self) -> dict[str, object]:
        """Engine counters: per-op totals, cache behavior, node pressure.

        ``ops`` counts the recursion steps that consulted each computed
        table (hits + misses); terminal fast paths are not counted.
        ``caches`` carries per-table hit/miss/eviction/entry counts.
        Node counts include the two terminals.
        """
        ops: dict[str, int] = {}
        caches: dict[str, dict[str, int]] = {}
        total_hits = 0
        total_misses = 0
        for tab in self._tables:
            ops[tab.name] = tab.hits + tab.misses
            caches[tab.name] = tab.stats()
            total_hits += tab.hits
            total_misses += tab.misses
        lookups = total_hits + total_misses
        return {
            "ops": ops,
            "caches": caches,
            "cache_hits": total_hits,
            "cache_misses": total_misses,
            "cache_hit_rate": (total_hits / lookups) if lookups else 0.0,
            "cache_generation": self._generation,
            "nodes_created": self._nodes_created,
            "live_nodes": self._nodes_live + 2,
            "peak_live_nodes": self._peak_live + 2,
            "num_vars": self.num_vars,
            "gc_runs": self._gc_runs,
            "gc_reclaimed": self._gc_reclaimed,
            "level_swaps": self._level_swaps,
            "reorder_events": self._reorder_events,
        }

    def reset_statistics(self) -> None:
        """Zero the op/cache/GC/reorder counters; peak restarts from now."""
        for tab in self._tables:
            tab.reset_counters()
        self._peak_live = self._nodes_live
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._level_swaps = 0
        self._reorder_events = 0

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def garbage_collect(self) -> int:
        """Sweep nodes unreachable from externally referenced roots.

        Returns the number of nodes reclaimed.  All operation caches are
        dropped (generation bump).
        """
        var_ = self._var
        low_ = self._low
        high_ = self._high
        # Byte-per-node mark vector: O(1) membership without hashing, which
        # matters when millions of nodes are traversed per sweep.
        marked = bytearray(len(var_))
        marked[FALSE] = 1
        marked[TRUE] = 1
        stack = [n for n, c in self._extref.items() if c > 0]
        while stack:
            f = stack.pop()
            if marked[f]:
                continue
            marked[f] = 1
            if var_[f] != _TERMINAL_VAR:
                stack.append(low_[f])
                stack.append(high_[f])
        reclaimed = 0
        free = self._free
        for var, table in enumerate(self._unique):
            # Rebuild each unique table in one pass instead of popping dead
            # keys individually (pop-heavy dicts never shrink their storage).
            survivors: dict[tuple[int, int], int] = {}
            for key, nid in table.items():
                if marked[nid]:
                    survivors[key] = nid
                else:
                    var_[nid] = _TERMINAL_VAR
                    low_[nid] = FALSE
                    high_[nid] = FALSE
                    free.append(nid)
                    reclaimed += 1
            self._unique[var] = survivors
        self._nodes_live -= reclaimed
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        self._invalidate_caches()
        return reclaimed

    # ------------------------------------------------------------------
    # reordering plumbing (used by repro.bdd.reorder)
    # ------------------------------------------------------------------
    def swap_levels(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place.

        Node ids are preserved: only nodes labelled with the upper variable
        that reference the lower variable are rewritten.  All operation
        caches are invalidated (generation bump).
        """
        if not 0 <= level < len(self._level2var) - 1:
            raise BddError(f"cannot swap level {level}")
        upper = self._level2var[level]
        lower = self._level2var[level + 1]
        upper_table = self._unique[upper]
        lower_table = self._unique[lower]

        interacting: list[int] = []
        for key, nid in list(upper_table.items()):
            low, high = key
            if self._var[low] == lower or self._var[high] == lower:
                interacting.append(nid)
                del upper_table[key]
        self._nodes_live -= len(interacting)

        # Commit the level exchange before creating new upper-var nodes so
        # that _mk built levels are consistent.
        self._level2var[level], self._level2var[level + 1] = lower, upper
        self._var2level[upper] = level + 1
        self._var2level[lower] = level

        for nid in interacting:
            f0, f1 = self._low[nid], self._high[nid]
            if self._var[f0] == lower:
                f00, f01 = self._low[f0], self._high[f0]
            else:
                f00 = f01 = f0
            if self._var[f1] == lower:
                f10, f11 = self._low[f1], self._high[f1]
            else:
                f10 = f11 = f1
            new_low = self._mk(upper, f00, f10)
            new_high = self._mk(upper, f01, f11)
            self._var[nid] = lower
            self._low[nid] = new_low
            self._high[nid] = new_high
            key = (new_low, new_high)
            if key in lower_table and lower_table[key] != nid:
                raise BddError(
                    "unique-table collision during swap; manager corrupted"
                )
            lower_table[key] = nid
            self._nodes_live += 1
            if self._nodes_live > self._peak_live:
                self._peak_live = self._nodes_live

        self._level_swaps += 1
        self._invalidate_caches()

    def live_node_count(self) -> int:
        """Number of nodes reachable from externally referenced roots.

        Unlike :attr:`num_nodes` this ignores dead table entries, which is
        the metric sifting must minimize (swaps strand dead nodes in the
        unique tables until the next garbage collection).
        """
        marked = bytearray(len(self._var))
        count = 0
        stack = [n for n, c in self._extref.items() if c > 0 and n > TRUE]
        while stack:
            f = stack.pop()
            if f <= TRUE or marked[f]:
                continue
            marked[f] = 1
            count += 1
            stack.append(self._low[f])
            stack.append(self._high[f])
        return count + 2

    def level_sizes(self) -> list[int]:
        """Unique-table size per level (after GC this is the live profile)."""
        return [len(self._unique[self._level2var[lv]]) for lv in range(len(self._level2var))]
