"""The BDD manager: unique table, ITE, quantifiers, GC, variable order.

Implementation notes
--------------------

* Nodes are integer ids into three parallel lists ``_var``, ``_low``,
  ``_high``.  Ids 0 and 1 are the FALSE and TRUE terminals (``_var`` = -1).
* There are no complement edges; negation is an ITE with cached results.
* Variable order is indirect: nodes store a *variable index*; the order is
  the pair of maps ``_var2level`` / ``_level2var``.  In-place adjacent-level
  swaps (see :mod:`repro.bdd.reorder`) only touch nodes of the upper level,
  so node ids — and therefore every BDD held by a client — survive dynamic
  reordering.
* External references are tracked with a refcount updated by the
  :class:`BddNode` wrapper (created on wrap, released on ``__del__``), which
  makes mark-and-sweep garbage collection possible without any client
  bookkeeping.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import BddError

FALSE = 0
TRUE = 1
_TERMINAL_VAR = -1


class BddNode:
    """A client-facing handle to a BDD node.

    Supports the Boolean operators ``& | ^ ~`` plus ``implies`` /
    ``equiv`` / ``ite`` and comparison by function identity (two handles
    compare equal iff they denote the same function in the same manager).
    """

    __slots__ = ("manager", "id", "__weakref__")

    def __init__(self, manager: "BddManager", node_id: int):
        self.manager = manager
        self.id = node_id
        manager._incref(node_id)

    def __del__(self):  # pragma: no cover - exercised indirectly
        try:
            self.manager._decref(self.id)
        except Exception:
            pass

    # -- operators ------------------------------------------------------
    def _check(self, other: "BddNode") -> None:
        if other.manager is not self.manager:
            raise BddError("operands belong to different BDD managers")

    def __and__(self, other: "BddNode") -> "BddNode":
        self._check(other)
        return self.manager._wrap(self.manager._and(self.id, other.id))

    def __or__(self, other: "BddNode") -> "BddNode":
        self._check(other)
        return self.manager._wrap(self.manager._or(self.id, other.id))

    def __xor__(self, other: "BddNode") -> "BddNode":
        self._check(other)
        return self.manager._wrap(self.manager._xor(self.id, other.id))

    def __invert__(self) -> "BddNode":
        return self.manager._wrap(self.manager._not(self.id))

    def implies(self, other: "BddNode") -> "BddNode":
        self._check(other)
        m = self.manager
        return m._wrap(m._ite(self.id, other.id, TRUE))

    def equiv(self, other: "BddNode") -> "BddNode":
        self._check(other)
        m = self.manager
        return m._wrap(m._ite(self.id, other.id, m._not(other.id)))

    def ite(self, then_: "BddNode", else_: "BddNode") -> "BddNode":
        self._check(then_)
        self._check(else_)
        return self.manager._wrap(self.manager._ite(self.id, then_.id, else_.id))

    # -- predicates ------------------------------------------------------
    @property
    def is_false(self) -> bool:
        return self.id == FALSE

    @property
    def is_true(self) -> bool:
        return self.id == TRUE

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BddNode)
            and other.manager is self.manager
            and other.id == self.id
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.id))

    def __bool__(self) -> bool:
        raise BddError(
            "BddNode truth value is ambiguous; use .is_true / .is_false"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.id == FALSE:
            return "<BDD FALSE>"
        if self.id == TRUE:
            return "<BDD TRUE>"
        return f"<BDD node {self.id} var={self.manager.var_name_of(self.id)}>"


class BddManager:
    """A reduced ordered BDD manager with dynamic reordering support."""

    def __init__(
        self,
        auto_reorder: bool = False,
        reorder_threshold: int = 50_000,
        max_nodes: int | None = None,
    ):
        # terminals occupy ids 0 and 1
        self._var: list[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._free: list[int] = []
        # per-variable unique tables: var index -> {(low, high): id}
        self._unique: list[dict[tuple[int, int], int]] = []
        self._var2level: list[int] = []
        self._level2var: list[int] = []
        self._names: list[str] = []
        self._name2var: dict[str, int] = {}
        self._cache: dict[tuple, int] = {}
        self._extref: dict[int, int] = {}
        self.auto_reorder = auto_reorder
        self.reorder_threshold = reorder_threshold
        #: raise :class:`~repro.errors.ResourceLimitError` when the node
        #: table exceeds this many entries — the library's analogue of the
        #: paper's "memory out" rows in Table 1.
        self.max_nodes = max_nodes
        self._reordering = False

    # ------------------------------------------------------------------
    # reference counting / wrapping
    # ------------------------------------------------------------------
    def _incref(self, node_id: int) -> None:
        self._extref[node_id] = self._extref.get(node_id, 0) + 1

    def _decref(self, node_id: int) -> None:
        count = self._extref.get(node_id, 0) - 1
        if count <= 0:
            self._extref.pop(node_id, None)
        else:
            self._extref[node_id] = count

    def _wrap(self, node_id: int) -> BddNode:
        node = BddNode(self, node_id)
        # Safe point for dynamic reordering: no recursive operation is in
        # flight when a result is being wrapped for the client.
        self._maybe_auto_reorder()
        return node

    @property
    def false(self) -> BddNode:
        return self._wrap(FALSE)

    @property
    def true(self) -> BddNode:
        return self._wrap(TRUE)

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> BddNode:
        """Declare a new variable at the bottom of the current order."""
        if name in self._name2var:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._names)
        self._names.append(name)
        self._name2var[name] = var
        self._unique.append({})
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return self._wrap(self._mk(var, FALSE, TRUE))

    def var(self, name: str) -> BddNode:
        """The BDD of an existing variable."""
        try:
            var = self._name2var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None
        return self._wrap(self._mk(var, FALSE, TRUE))

    def nvar(self, name: str) -> BddNode:
        """The BDD of the negation of an existing variable."""
        try:
            var = self._name2var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None
        return self._wrap(self._mk(var, TRUE, FALSE))

    def has_var(self, name: str) -> bool:
        return name in self._name2var

    @property
    def var_names(self) -> list[str]:
        return list(self._names)

    @property
    def num_vars(self) -> int:
        return len(self._names)

    def var_index(self, name: str) -> int:
        try:
            return self._name2var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def level_of(self, name: str) -> int:
        return self._var2level[self.var_index(name)]

    def var_at_level(self, level: int) -> str:
        return self._names[self._level2var[level]]

    def current_order(self) -> list[str]:
        return [self._names[v] for v in self._level2var]

    def var_name_of(self, node_id: int) -> str:
        var = self._var[node_id]
        if var == _TERMINAL_VAR:
            raise BddError("terminal node has no variable")
        return self._names[var]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _level(self, node_id: int) -> int:
        var = self._var[node_id]
        if var == _TERMINAL_VAR:
            return len(self._level2var) + 1  # below everything
        return self._var2level[var]

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        table = self._unique[var]
        key = (low, high)
        node_id = table.get(key)
        if node_id is not None:
            return node_id
        if (
            self.max_nodes is not None
            and len(self._var) - len(self._free) > self.max_nodes
        ):
            from repro.errors import ResourceLimitError

            raise ResourceLimitError(
                f"BDD node budget exceeded ({self.max_nodes} nodes)"
            )
        if self._free:
            node_id = self._free.pop()
            self._var[node_id] = var
            self._low[node_id] = low
            self._high[node_id] = high
        else:
            node_id = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
        table[key] = node_id
        return node_id

    @property
    def num_nodes(self) -> int:
        """Number of live (table-resident) internal nodes, plus terminals."""
        return 2 + sum(len(t) for t in self._unique)

    def size(self, node: BddNode) -> int:
        """Number of nodes in the DAG rooted at ``node`` (incl. terminals)."""
        seen: set[int] = set()
        stack = [node.id]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if self._var[n] != _TERMINAL_VAR:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return len(seen)

    # ------------------------------------------------------------------
    # core operations (internal, on ids)
    # ------------------------------------------------------------------
    def _ite(self, f: int, g: int, h: int) -> int:
        # terminal cases
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = ("ite", f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        # split on the top variable
        level = min(self._level(f), self._level(g), self._level(h))
        var = self._level2var[level]

        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        low = self._ite(f0, g0, h0)
        high = self._ite(f1, g1, h1)
        result = self._mk(var, low, high)
        self._cache[key] = result
        return result

    def _cofactors(self, node_id: int, var: int) -> tuple[int, int]:
        if self._var[node_id] == var:
            return self._low[node_id], self._high[node_id]
        return node_id, node_id

    def _not(self, f: int) -> int:
        return self._ite(f, FALSE, TRUE)

    def _and(self, f: int, g: int) -> int:
        return self._ite(f, g, FALSE)

    def _or(self, f: int, g: int) -> int:
        return self._ite(f, TRUE, g)

    def _xor(self, f: int, g: int) -> int:
        return self._ite(f, self._not(g), g)

    def _maybe_auto_reorder(self) -> None:
        if (
            self.auto_reorder
            and not self._reordering
            and self.num_nodes > self.reorder_threshold
        ):
            from repro.bdd.reorder import sift

            self._reordering = True
            try:
                sift(self)
            finally:
                self._reordering = False
            # back off so we do not thrash
            self.reorder_threshold = max(self.reorder_threshold, self.num_nodes * 2)

    # ------------------------------------------------------------------
    # public combinational helpers
    # ------------------------------------------------------------------
    def conjoin(self, nodes: Iterable[BddNode]) -> BddNode:
        result = TRUE
        for node in nodes:
            result = self._and(result, node.id)
            if result == FALSE:
                break
        return self._wrap(result)

    def disjoin(self, nodes: Iterable[BddNode]) -> BddNode:
        result = FALSE
        for node in nodes:
            result = self._or(result, node.id)
            if result == TRUE:
                break
        return self._wrap(result)

    # ------------------------------------------------------------------
    # restriction / composition
    # ------------------------------------------------------------------
    def restrict(self, node: BddNode, assignment: Mapping[str, int]) -> BddNode:
        """Cofactor with respect to a partial variable assignment."""
        pairs = sorted(
            ((self.var_index(name), value) for name, value in assignment.items()),
            key=lambda p: self._var2level[p[0]],
        )
        return self._wrap(self._restrict(node.id, tuple(pairs), 0))

    def _restrict(self, f: int, pairs: tuple[tuple[int, int], ...], start: int) -> int:
        if f <= TRUE or start >= len(pairs):
            return f
        key = ("restrict", f, pairs, start)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        flevel = self._level(f)
        # skip assignment entries above f's top variable
        i = start
        while i < len(pairs) and self._var2level[pairs[i][0]] < flevel:
            i += 1
        if i >= len(pairs):
            result = f
        else:
            var, value = pairs[i]
            fvar = self._var[f]
            if fvar == var:
                branch = self._high[f] if value else self._low[f]
                result = self._restrict(branch, pairs, i + 1)
            else:
                low = self._restrict(self._low[f], pairs, i)
                high = self._restrict(self._high[f], pairs, i)
                result = self._mk(fvar, low, high)
        self._cache[key] = result
        return result

    def compose(self, node: BddNode, name: str, replacement: BddNode) -> BddNode:
        """Substitute ``replacement`` for variable ``name`` in ``node``."""
        var = self.var_index(name)
        return self._wrap(self._compose(node.id, var, replacement.id))

    def _compose(self, f: int, var: int, g: int) -> int:
        if f <= TRUE:
            return f
        if self._var2level[self._var[f]] > self._var2level[var]:
            return f  # var cannot appear below its own level
        key = ("compose", f, var, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._var[f] == var:
            result = self._ite(g, self._high[f], self._low[f])
        else:
            low = self._compose(self._low[f], var, g)
            high = self._compose(self._high[f], var, g)
            # children may now have tops above f's var; use ITE on f's var
            v = self._mk(self._var[f], FALSE, TRUE)
            result = self._ite(v, high, low)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def exists(self, names: Sequence[str], node: BddNode) -> BddNode:
        levels = frozenset(self._var2level[self.var_index(n)] for n in names)
        return self._wrap(self._exists(node.id, levels))

    def forall(self, names: Sequence[str], node: BddNode) -> BddNode:
        levels = frozenset(self._var2level[self.var_index(n)] for n in names)
        return self._wrap(self._not(self._exists(self._not(node.id), levels)))

    def _exists(self, f: int, levels: frozenset[int]) -> int:
        if f <= TRUE:
            return f
        flevel = self._level(f)
        if all(lv < flevel for lv in levels):
            return f
        key = ("exists", f, levels)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        low = self._exists(self._low[f], levels)
        high = self._exists(self._high[f], levels)
        if flevel in levels:
            result = self._or(low, high)
        else:
            result = self._mk(self._var[f], low, high)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # satisfiability / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, node: BddNode, assignment: Mapping[str, int]) -> bool:
        f = node.id
        while f > TRUE:
            name = self._names[self._var[f]]
            try:
                value = assignment[name]
            except KeyError:
                raise BddError(f"assignment missing variable {name!r}") from None
            f = self._high[f] if value else self._low[f]
        return f == TRUE

    def pick(self, node: BddNode) -> dict[str, int] | None:
        """One satisfying partial assignment, or None if unsatisfiable."""
        if node.id == FALSE:
            return None
        result: dict[str, int] = {}
        f = node.id
        while f > TRUE:
            name = self._names[self._var[f]]
            if self._low[f] != FALSE:
                result[name] = 0
                f = self._low[f]
            else:
                result[name] = 1
                f = self._high[f]
        return result

    def sat_count(self, node: BddNode, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        if nvars is None:
            nvars = self.num_vars
        cache: dict[int, int] = {}
        nlevels = len(self._level2var)

        def count(f: int) -> int:
            # number of solutions over variables strictly below f's level,
            # normalized to level(f)
            if f == FALSE:
                return 0
            if f == TRUE:
                return 1
            if f in cache:
                return cache[f]
            lf = self._level(f)
            c0 = count(self._low[f]) << (self._gap(lf, self._low[f]))
            c1 = count(self._high[f]) << (self._gap(lf, self._high[f]))
            result = c0 + c1
            cache[f] = result
            return result

        if node.id <= TRUE:
            return node.id * (1 << nvars)
        top_gap = min(self._level(node.id), nlevels)
        total = count(node.id) << top_gap
        # count() assumed one variable per level; rescale to requested nvars
        shift = nvars - len(self._level2var)
        if shift >= 0:
            return total << shift
        # fewer vars requested than declared: legal only when the function
        # is independent of the surplus variables
        if total % (1 << (-shift)):
            raise BddError(
                "sat_count nvars smaller than the function's support"
            )
        return total >> (-shift)

    def _gap(self, parent_level: int, child: int) -> int:
        child_level = min(self._level(child), len(self._level2var))
        return child_level - parent_level - 1

    def sat_iter(
        self, node: BddNode, care_vars: Sequence[str] | None = None
    ) -> Iterator[dict[str, int]]:
        """Enumerate satisfying assignments, complete over ``care_vars``."""
        if care_vars is None:
            care = list(self._names)
        else:
            care = list(care_vars)
        care_set = set(care)

        def walk(f: int, partial: dict[str, int]) -> Iterator[dict[str, int]]:
            if f == FALSE:
                return
            if f == TRUE:
                free = [v for v in care if v not in partial]
                for bits in itertools.product((0, 1), repeat=len(free)):
                    full = dict(partial)
                    full.update(zip(free, bits))
                    yield full
                return
            name = self._names[self._var[f]]
            for value, child in ((0, self._low[f]), (1, self._high[f])):
                new_partial = dict(partial)
                if name in care_set:
                    new_partial[name] = value
                elif child == FALSE:
                    continue
                yield from walk(child, new_partial)

        yield from walk(node.id, {})

    def support(self, node: BddNode) -> set[str]:
        """Names of the variables the function depends on."""
        seen: set[int] = set()
        vars_: set[int] = set()
        stack = [node.id]
        while stack:
            f = stack.pop()
            if f <= TRUE or f in seen:
                continue
            seen.add(f)
            vars_.add(self._var[f])
            stack.append(self._low[f])
            stack.append(self._high[f])
        return {self._names[v] for v in vars_}

    # ------------------------------------------------------------------
    # cube covers
    # ------------------------------------------------------------------
    def cube_iter(self, node: BddNode) -> Iterator[dict[str, int]]:
        """Enumerate the (disjoint) path-cubes of the BDD."""

        def walk(f: int, partial: dict[str, int]) -> Iterator[dict[str, int]]:
            if f == FALSE:
                return
            if f == TRUE:
                yield dict(partial)
                return
            name = self._names[self._var[f]]
            partial[name] = 0
            yield from walk(self._low[f], partial)
            partial[name] = 1
            yield from walk(self._high[f], partial)
            del partial[name]

        yield from walk(node.id, {})

    def from_cube(self, literals: Mapping[str, int]) -> BddNode:
        """The conjunction of the given literals."""
        result = TRUE
        for name, value in sorted(
            literals.items(), key=lambda kv: -self.level_of(kv[0])
        ):
            var = self.var_index(name)
            v = self._mk(var, FALSE, TRUE)
            lit = v if value else self._not(v)
            result = self._and(result, lit)
        return self._wrap(result)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def garbage_collect(self) -> int:
        """Sweep nodes unreachable from externally referenced roots.

        Returns the number of nodes reclaimed.  All operation caches are
        dropped.
        """
        reachable: set[int] = {FALSE, TRUE}
        stack = [n for n, c in self._extref.items() if c > 0]
        while stack:
            f = stack.pop()
            if f in reachable:
                continue
            reachable.add(f)
            if self._var[f] != _TERMINAL_VAR:
                stack.append(self._low[f])
                stack.append(self._high[f])
        reclaimed = 0
        for var, table in enumerate(self._unique):
            dead = [key for key, nid in table.items() if nid not in reachable]
            for key in dead:
                nid = table.pop(key)
                self._var[nid] = _TERMINAL_VAR
                self._low[nid] = FALSE
                self._high[nid] = FALSE
                self._free.append(nid)
                reclaimed += 1
        self._cache.clear()
        return reclaimed

    # ------------------------------------------------------------------
    # reordering plumbing (used by repro.bdd.reorder)
    # ------------------------------------------------------------------
    def swap_levels(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place.

        Node ids are preserved: only nodes labelled with the upper variable
        that reference the lower variable are rewritten.  All operation
        caches are invalidated.
        """
        if not 0 <= level < len(self._level2var) - 1:
            raise BddError(f"cannot swap level {level}")
        upper = self._level2var[level]
        lower = self._level2var[level + 1]
        upper_table = self._unique[upper]
        lower_table = self._unique[lower]

        interacting: list[int] = []
        for key, nid in list(upper_table.items()):
            low, high = key
            if self._var[low] == lower or self._var[high] == lower:
                interacting.append(nid)
                del upper_table[key]

        # Commit the level exchange before creating new upper-var nodes so
        # that _mk built levels are consistent.
        self._level2var[level], self._level2var[level + 1] = lower, upper
        self._var2level[upper] = level + 1
        self._var2level[lower] = level

        for nid in interacting:
            f0, f1 = self._low[nid], self._high[nid]
            if self._var[f0] == lower:
                f00, f01 = self._low[f0], self._high[f0]
            else:
                f00 = f01 = f0
            if self._var[f1] == lower:
                f10, f11 = self._low[f1], self._high[f1]
            else:
                f10 = f11 = f1
            new_low = self._mk(upper, f00, f10)
            new_high = self._mk(upper, f01, f11)
            self._var[nid] = lower
            self._low[nid] = new_low
            self._high[nid] = new_high
            key = (new_low, new_high)
            if key in lower_table and lower_table[key] != nid:
                raise BddError(
                    "unique-table collision during swap; manager corrupted"
                )
            lower_table[key] = nid

        self._cache.clear()

    def live_node_count(self) -> int:
        """Number of nodes reachable from externally referenced roots.

        Unlike :attr:`num_nodes` this ignores dead table entries, which is
        the metric sifting must minimize (swaps strand dead nodes in the
        unique tables until the next garbage collection).
        """
        reachable: set[int] = set()
        stack = [n for n, c in self._extref.items() if c > 0 and n > TRUE]
        while stack:
            f = stack.pop()
            if f in reachable or f <= TRUE:
                continue
            reachable.add(f)
            stack.append(self._low[f])
            stack.append(self._high[f])
        return len(reachable) + 2

    def level_sizes(self) -> list[int]:
        """Unique-table size per level (after GC this is the live profile)."""
        return [len(self._unique[self._level2var[lv]]) for lv in range(len(self._level2var))]
