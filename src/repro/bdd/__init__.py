"""A self-contained reduced ordered binary decision diagram (ROBDD) package.

The paper's exact and first-approximate required-time algorithms are BDD
based ("All the Boolean operations in the exact and the first approximate
methods are done using BDD's", Section 6), and the exact algorithm "was run
with dynamic variable reordering being set".  No BDD library is available in
this environment, so this package implements one from scratch:

* :class:`~repro.bdd.manager.BddManager` — unique table, ITE with a compute
  cache, standard Boolean operators, restriction, composition, existential
  and universal quantification, satisfiability helpers.
* :class:`~repro.bdd.array_backend.ArrayBddManager` — the array kernel:
  same surface over flat node arrays, open-addressed tables, iterative
  apply loops, and compacting GC (see docs/BDD_BACKENDS.md).
* :class:`~repro.bdd.native_backend.NativeBddManager` — the native
  kernel: the array kernel's hot loops compiled to C at first use,
  bit-identical node sequences, graceful fallback without a compiler.
* :mod:`~repro.bdd.api` — the backend :class:`~repro.bdd.api.Manager`
  protocol and the :func:`~repro.bdd.api.create_manager` factory that
  selects between the kernels (``REPRO_BDD_BACKEND`` env default).
* :mod:`~repro.bdd.reorder` — Rudell-style sifting dynamic variable
  reordering built on in-place adjacent-level swaps.
* :mod:`~repro.bdd.minimal` — lattice operators over BDD-encoded sets
  (minimal elements, upward/downward closures) used to extract the *latest*
  required times from the exact Boolean relation, and monotone prime
  enumeration used by approximate approach 1.
"""

from repro.bdd.api import (
    BACKENDS,
    Manager,
    backend_of,
    backend_resolution,
    create_manager,
    resolve_backend,
)
from repro.bdd.manager import BddManager, BddNode
from repro.bdd.minimal import (
    downward_closure,
    maximal_elements,
    minimal_elements,
    monotone_primes,
    upward_closure,
)

__all__ = [
    "ArrayBddManager",
    "BACKENDS",
    "BddManager",
    "BddNode",
    "Manager",
    "NativeBddManager",
    "backend_of",
    "backend_resolution",
    "create_manager",
    "resolve_backend",
    "minimal_elements",
    "maximal_elements",
    "upward_closure",
    "downward_closure",
    "monotone_primes",
]


def __getattr__(name: str):
    """Lazily expose the array and native kernels (PEP 562).

    Both import numpy; loading them eagerly would tax every process that
    only ever touches the default object kernel with the numpy import
    cost.  ``create_manager`` performs the same lazy imports internally.
    """
    if name == "ArrayBddManager":
        from repro.bdd.array_backend import ArrayBddManager

        return ArrayBddManager
    if name == "NativeBddManager":
        from repro.bdd.native_backend import NativeBddManager

        return NativeBddManager
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
