"""A self-contained reduced ordered binary decision diagram (ROBDD) package.

The paper's exact and first-approximate required-time algorithms are BDD
based ("All the Boolean operations in the exact and the first approximate
methods are done using BDD's", Section 6), and the exact algorithm "was run
with dynamic variable reordering being set".  No BDD library is available in
this environment, so this package implements one from scratch:

* :class:`~repro.bdd.manager.BddManager` — unique table, ITE with a compute
  cache, standard Boolean operators, restriction, composition, existential
  and universal quantification, satisfiability helpers.
* :mod:`~repro.bdd.reorder` — Rudell-style sifting dynamic variable
  reordering built on in-place adjacent-level swaps.
* :mod:`~repro.bdd.minimal` — lattice operators over BDD-encoded sets
  (minimal elements, upward/downward closures) used to extract the *latest*
  required times from the exact Boolean relation, and monotone prime
  enumeration used by approximate approach 1.
"""

from repro.bdd.manager import BddManager, BddNode
from repro.bdd.minimal import (
    downward_closure,
    maximal_elements,
    minimal_elements,
    monotone_primes,
    upward_closure,
)

__all__ = [
    "BddManager",
    "BddNode",
    "minimal_elements",
    "maximal_elements",
    "upward_closure",
    "downward_closure",
    "monotone_primes",
]
