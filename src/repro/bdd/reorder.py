"""Dynamic variable reordering by sifting (Rudell, ICCAD'93).

The paper's experimental section notes that "the exact algorithm was run
with dynamic variable reordering being set"; this module provides that
capability for our manager.  Each variable is moved through every level via
in-place adjacent swaps (:meth:`BddManager.swap_levels`), the best position
seen is remembered, and the variable is parked there.  Because swaps
preserve node ids, client handles survive reordering untouched.
"""

from __future__ import annotations

from repro.bdd.manager import BddManager


def sift(manager: BddManager, max_growth: float = 2.0) -> int:
    """Sift every variable to its locally best level.

    ``max_growth`` aborts a variable's journey when the table grows beyond
    that factor of its size at the start of the journey (the classical
    sifting damper).  Returns the live node count after reordering.
    """
    manager.garbage_collect()
    nlevels = len(manager._level2var)
    if nlevels < 2:
        return manager.num_nodes

    # Sift variables in decreasing order of their level population: big
    # levels first is the standard heuristic.
    sizes = manager.level_sizes()
    order = sorted(range(nlevels), key=lambda lv: -sizes[lv])
    vars_by_priority = [manager._level2var[lv] for lv in order]

    for var in vars_by_priority:
        _sift_one(manager, var, max_growth)
        # Swaps strand the rewritten nodes' old children in the unique
        # tables; without a sweep every subsequent journey re-processes
        # the corpses and table size doubles per variable (measured:
        # 419 -> 10M dead nodes over 16 journeys on a 150-node function).
        manager.garbage_collect()

    return manager.num_nodes


def _sift_one(manager: BddManager, var: int, max_growth: float) -> None:
    nlevels = len(manager._level2var)
    start_size = manager.live_node_count()
    limit = int(start_size * max_growth) + 16

    best_size = start_size
    best_level = manager._var2level[var]
    level = best_level

    # Phase 1: sift toward the nearer end first (fewer swaps to undo).
    go_down_first = (nlevels - 1 - level) <= level

    def move_down() -> None:
        nonlocal level, best_size, best_level
        while level < nlevels - 1:
            manager.swap_levels(level)
            level += 1
            size = manager.live_node_count()
            if size < best_size:
                best_size = size
                best_level = level
            if size > limit:
                break

    def move_up() -> None:
        nonlocal level, best_size, best_level
        while level > 0:
            manager.swap_levels(level - 1)
            level -= 1
            size = manager.live_node_count()
            if size < best_size:
                best_size = size
                best_level = level
            if size > limit:
                break

    if go_down_first:
        move_down()
        move_up()
    else:
        move_up()
        move_down()

    # Phase 2: park the variable at the best level seen.
    while level < best_level:
        manager.swap_levels(level)
        level += 1
    while level > best_level:
        manager.swap_levels(level - 1)
        level -= 1


def reorder_to(manager: BddManager, order: list[str]) -> None:
    """Force the exact variable order given by ``order`` (a permutation of
    all declared variable names), using adjacent swaps."""
    if sorted(order) != sorted(manager.var_names):
        raise ValueError("order must be a permutation of the declared variables")
    for target_level, name in enumerate(order):
        var = manager.var_index(name)
        level = manager._var2level[var]
        while level > target_level:
            manager.swap_levels(level - 1)
            level -= 1
