"""The multi-backend manager surface: protocol, registry, and factory.

Three interchangeable BDD kernels implement the same :class:`Manager`
surface:

* ``object`` — :class:`repro.bdd.manager.BddManager`, the reference
  kernel: recursive apply operations over per-variable dict unique
  tables and bounded-dict computed tables.
* ``array``  — :class:`repro.bdd.array_backend.ArrayBddManager`, the
  performance kernel: flat parallel node arrays, open-addressed
  unique tables, direct-mapped generation-tagged computed tables, an
  iterative (explicit-stack) apply loop, and mark-and-compact garbage
  collection.  See docs/BDD_BACKENDS.md.
* ``native`` — :class:`repro.bdd.native_backend.NativeBddManager`, the
  array kernel's apply/quantify loops compiled to C
  (``_native/kernel.c``, built lazily with the system compiler).  When
  no compiler is available the factory degrades to the array kernel,
  bumping the ``bdd.native.fallback`` counter — no environment breaks.

All backends are drop-in for every consumer (χ engines, exact,
approx-1, verification): they produce identical BDD semantics, publish
the same ``bdd.*`` telemetry counters, and report the same
``statistics()`` shape.  Backend choice is therefore an *observational*
property of a run except for wall time — which is why it still keys the
persistent result cache (`repro.cache.keys`) defensively (``native`` is
bit-identical to ``array`` and shares its cache-key value).

Selection precedence: an explicit ``backend=`` argument, then the
``REPRO_BDD_BACKEND`` environment variable, then ``object``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import BddError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bdd.manager import BddManager, BddNode

#: the recognized backend names, in documentation order
BACKENDS = ("object", "array", "native")

#: environment variable consulted when no explicit backend is given
BACKEND_ENV = "REPRO_BDD_BACKEND"

#: the default kernel when neither an argument nor the env var selects one
#: (the native C kernel; it degrades to ``array`` without a C toolchain)
DEFAULT_BACKEND = "native"


@runtime_checkable
class Manager(Protocol):
    """The abstract BDD-manager surface both kernels implement.

    This is the contract the engines (χ, exact, approx-1, verification)
    and the lattice helpers program against.  It covers the public
    handle-level API; the id-level internals (``_mk``, ``_and``,
    ``_var``/``_low``/``_high``, ``_cache``) shared by
    :mod:`repro.bdd.minimal` and :mod:`repro.bdd.reorder` are a
    structural convention both concrete classes also honor.
    """

    # -- variables ------------------------------------------------------
    def add_var(self, name: str) -> "BddNode": ...
    def var(self, name: str) -> "BddNode": ...
    def nvar(self, name: str) -> "BddNode": ...
    def has_var(self, name: str) -> bool: ...
    def var_index(self, name: str) -> int: ...
    def level_of(self, name: str) -> int: ...

    # -- constants ------------------------------------------------------
    @property
    def false(self) -> "BddNode": ...
    @property
    def true(self) -> "BddNode": ...

    # -- combinational helpers -----------------------------------------
    def conjoin(self, nodes: Iterable["BddNode"]) -> "BddNode": ...
    def disjoin(self, nodes: Iterable["BddNode"]) -> "BddNode": ...
    def restrict(self, node: "BddNode", assignment: Mapping[str, int]) -> "BddNode": ...
    def compose(self, node: "BddNode", name: str, replacement: "BddNode") -> "BddNode": ...

    # -- quantification -------------------------------------------------
    def exists(self, names: Sequence[str], node: "BddNode") -> "BddNode": ...
    def forall(self, names: Sequence[str], node: "BddNode") -> "BddNode": ...
    def and_exists(self, names: Sequence[str], f: "BddNode", g: "BddNode") -> "BddNode": ...
    def and_forall(self, names: Sequence[str], f: "BddNode", g: "BddNode") -> "BddNode": ...
    def forall_implied(self, names: Sequence[str], f: "BddNode", g: "BddNode") -> "BddNode": ...

    # -- satisfiability / enumeration ----------------------------------
    def evaluate(self, node: "BddNode", assignment: Mapping[str, int]) -> bool: ...
    def pick(self, node: "BddNode") -> dict[str, int] | None: ...
    def sat_count(self, node: "BddNode", nvars: int | None = None) -> int: ...
    def sat_iter(self, node: "BddNode", care_vars: Sequence[str] | None = None) -> Iterator[dict[str, int]]: ...
    def cube_iter(self, node: "BddNode") -> Iterator[dict[str, int]]: ...
    def from_cube(self, literals: Mapping[str, int]) -> "BddNode": ...
    def support(self, node: "BddNode") -> set[str]: ...
    def size(self, node: "BddNode") -> int: ...

    # -- maintenance / observability -----------------------------------
    def garbage_collect(self) -> int: ...
    def swap_levels(self, level: int) -> None: ...
    def live_node_count(self) -> int: ...
    def level_sizes(self) -> list[int]: ...
    def statistics(self) -> dict[str, object]: ...
    def reset_statistics(self) -> None: ...


def resolve_backend(name: str | None = None) -> str:
    """The effective backend name for ``name``.

    ``None`` falls back to ``$REPRO_BDD_BACKEND``, then to ``native``.
    Unknown names raise :class:`~repro.errors.BddError` so a typo'd env
    var fails loudly instead of silently running the wrong kernel.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if name not in BACKENDS:
        raise BddError(
            f"unknown BDD backend {name!r} (choose from {', '.join(BACKENDS)})"
        )
    return name


def create_manager(backend: str | None = None, **kwargs) -> "BddManager":
    """Instantiate a manager of the selected backend.

    ``kwargs`` are the common constructor options (``max_nodes``,
    ``auto_reorder``, ``reorder_threshold``, ``cache_bound``); both
    kernels accept the same set.  The backends are imported lazily so
    importing :mod:`repro.bdd` never pays for the kernel it does not use.
    """
    name = resolve_backend(backend)
    if name == "native":
        from repro.bdd.native_backend import create_native_manager

        return create_native_manager(**kwargs)
    if name == "array":
        from repro.bdd.array_backend import ArrayBddManager

        return ArrayBddManager(**kwargs)
    from repro.bdd.manager import BddManager

    return BddManager(**kwargs)


def backend_of(manager) -> str:
    """The backend name of a live manager instance."""
    from repro.bdd.array_backend import ArrayBddManager
    from repro.bdd.native_backend import NativeBddManager

    if isinstance(manager, NativeBddManager):
        return "native"
    return "array" if isinstance(manager, ArrayBddManager) else "object"


def backend_resolution(requested: str | None = None) -> dict:
    """How a backend request resolves, for run metadata and daemons.

    Returns ``{"requested", "resolved", "effective", "fallback_reason"}``:
    ``resolved`` applies the flag > ``$REPRO_BDD_BACKEND`` > default
    precedence; ``effective`` is the kernel that would actually run —
    it differs from ``resolved`` only when ``native`` cannot build/load
    and degrades to ``array`` (``fallback_reason`` says why).
    """
    resolved = resolve_backend(requested)
    effective = resolved
    fallback_reason = None
    if resolved == "native":
        from repro.bdd.native_backend import native_status

        available, reason = native_status()
        if not available:
            effective = "array"
            fallback_reason = reason
    return {
        "requested": requested,
        "resolved": resolved,
        "effective": effective,
        "fallback_reason": fallback_reason,
    }


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "Manager",
    "backend_of",
    "backend_resolution",
    "create_manager",
    "resolve_backend",
]
