"""Lattice operators over BDD-encoded subsets of the Boolean cube.

The exact algorithm of Section 4.1 represents, for each primary-input
minterm, the set of permissible leaf-χ stability vectors as a BDD.  The
*latest* required times correspond to the **minimal elements** of that set
under the bitwise partial order (0 < 1: fewer 1s = fewer stability
obligations = later required times), cf. the paper's footnote 5: "all the
minimal elements in a given set under the Boolean lattice should be
extracted".

Approximate approach 1 (Section 4.2) needs the **primes of a monotone
increasing function** F(α, β) (Theorem 1): each prime, which contains only
positive literals, is one latest required-time assignment.  For a monotone
function the primes coincide with the minimal satisfying vectors over its
support, so both needs share the machinery below.

Minimal/maximal extraction walks an explicit variable list: a variable that
is skipped along a BDD path is a *cylinder* dimension of the encoded set,
and a cylinder point with that variable at 1 (resp. 0) is never minimal
(resp. maximal) — the closure-based recursion must see the variable to get
this right.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.bdd.manager import FALSE, TRUE, BddManager, BddNode
from repro.errors import BddError


def upward_closure(node: BddNode) -> BddNode:
    """``{y : ∃x ∈ S, x ≤ y}`` for the set S encoded by ``node``.

    Cylinder dimensions stay cylinders, so this recursion may safely skip
    variables absent from the BDD.
    """
    m = node.manager
    return m._wrap(_closure(m, node.id, up=True))


def downward_closure(node: BddNode) -> BddNode:
    """``{y : ∃x ∈ S, y ≤ x}`` for the set S encoded by ``node``."""
    m = node.manager
    return m._wrap(_closure(m, node.id, up=False))


def _closure(m: BddManager, f: int, up: bool) -> int:
    if f <= TRUE:
        return f
    key = ("upclose" if up else "downclose", f)
    cached = m._cache.get(key)
    if cached is not None:
        return cached
    var = m._var[f]
    low = _closure(m, m._low[f], up)
    high = _closure(m, m._high[f], up)
    if up:
        # y with var=1 is above x with var∈{0,1}: high branch absorbs low.
        result = m._mk(var, low, m._or(low, high))
    else:
        result = m._mk(var, m._or(low, high), high)
    m._cache[key] = result
    return result


def minimal_elements(node: BddNode, names: Sequence[str] | None = None) -> BddNode:
    """The minimal elements of the encoded set under the bitwise order.

    ``names`` fixes the dimensions of the lattice (default: the support of
    ``node``).  Variables outside ``names`` must not occur in the function.
    """
    m = node.manager
    if names is None:
        names = sorted(m.support(node))
    else:
        extra = m.support(node) - set(names)
        if extra:
            raise BddError(f"support variables {sorted(extra)} not in lattice dims")
    levels = sorted(m.level_of(n) for n in names)
    cache: dict[tuple[int, int], int] = {}

    def rec(f: int, i: int) -> int:
        if f == FALSE:
            return FALSE
        if i == len(levels):
            return f  # TRUE (support exhausted)
        key = (f, i)
        cached = cache.get(key)
        if cached is not None:
            return cached
        var = m._level2var[levels[i]]
        f0, f1 = m._cofactors(f, var)
        min0 = rec(f0, i + 1)
        # A point with var=1 is minimal iff it is minimal within f1 and its
        # var=0 projection is not above any point of f0.
        blocked = _closure(m, f0, up=True)
        min1 = m._and(rec(f1, i + 1), m._not(blocked))
        result = m._mk(var, min0, min1)
        cache[key] = result
        return result

    return m._wrap(rec(node.id, 0))


def maximal_elements(node: BddNode, names: Sequence[str] | None = None) -> BddNode:
    """The maximal elements of the encoded set under the bitwise order."""
    m = node.manager
    if names is None:
        names = sorted(m.support(node))
    else:
        extra = m.support(node) - set(names)
        if extra:
            raise BddError(f"support variables {sorted(extra)} not in lattice dims")
    levels = sorted(m.level_of(n) for n in names)
    cache: dict[tuple[int, int], int] = {}

    def rec(f: int, i: int) -> int:
        if f == FALSE:
            return FALSE
        if i == len(levels):
            return f
        key = (f, i)
        cached = cache.get(key)
        if cached is not None:
            return cached
        var = m._level2var[levels[i]]
        f0, f1 = m._cofactors(f, var)
        max1 = rec(f1, i + 1)
        blocked = _closure(m, f1, up=False)
        max0 = m._and(rec(f0, i + 1), m._not(blocked))
        result = m._mk(var, max0, max1)
        cache[key] = result
        return result

    return m._wrap(rec(node.id, 0))


def is_monotone_increasing(node: BddNode, names: list[str] | None = None) -> bool:
    """Check f(x) ≤ f(y) whenever x ≤ y (positive unateness in every var).

    Used by the test suite to validate Theorem 1 on constructed F(α, β)
    functions.  ``names`` restricts the check to the given variables
    (default: the support of the function).
    """
    m = node.manager
    if names is None:
        names = sorted(m.support(node))
    for name in names:
        f0 = m.restrict(node, {name: 0})
        f1 = m.restrict(node, {name: 1})
        if not f0.implies(f1).is_true:
            return False
    return True


def monotone_primes(node: BddNode) -> Iterator[frozenset[str]]:
    """Enumerate the primes of a monotone increasing function.

    Each prime of a monotone function consists of positive literals only and
    coincides with a minimal satisfying vector over the function's support;
    we therefore compute the minimal elements and read off, for each, the
    set of variables assigned 1.
    """
    m = node.manager
    if node.id == FALSE:
        return
    support = sorted(m.support(node))
    minimal = minimal_elements(node, support)
    seen: set[frozenset[str]] = set()
    for cube in m.cube_iter(minimal):
        prime = frozenset(n for n, v in cube.items() if v == 1 and n in support)
        if prime not in seen:
            seen.add(prime)
            yield prime
