"""repro — Exact Required Time Analysis via False Path Detection.

A from-scratch Python reproduction of Kukimoto & Brayton (UCB/ERL M97/44,
1997): required times of combinational circuits computed *exactly* by
taking false paths into account, with the paper's two approximate
algorithms, the full substrate stack (BDDs, SAT, two-level logic, Boolean
networks, topological and functional timing analysis), and the Section 5
subcircuit timing-flexibility analyses.

Quick tour
----------

>>> from repro import Network, analyze_required_times
>>> net = Network("fig4")
>>> _ = net.add_input("x1"); _ = net.add_input("x2")
>>> _ = net.add_gate("w", "AND", ["x1", "x2"])
>>> _ = net.add_gate("z", "AND", ["w", "x2"])
>>> net.set_outputs(["z"])
>>> report = analyze_required_times(net, "approx1", output_required=2.0)
>>> report.nontrivial
True
"""

from repro.errors import (
    BddError,
    NetworkError,
    ParseError,
    ReproError,
    ResourceLimitError,
    SatError,
    TimingError,
)
from repro.network import (
    Network,
    Node,
    equivalent,
    global_functions,
    parse_bench,
    parse_bench_file,
    parse_blif,
    parse_blif_file,
    write_bench,
    write_blif,
)
from repro.timing import (
    DelayModel,
    FunctionalTiming,
    TopologicalTiming,
    has_false_paths,
    stable_by,
    true_arrival_times,
    unit_delay,
)
from repro.core import (
    Approx1Analysis,
    Approx2Analysis,
    ArrivalFlexibility,
    ExactAnalysis,
    INF,
    RequiredTimeProfile,
    RequiredTimeReport,
    analyze_required_times,
    arrival_flexibility,
    required_flexibility,
    subcircuit_timing,
    topological_input_required_times,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ParseError",
    "NetworkError",
    "BddError",
    "SatError",
    "TimingError",
    "ResourceLimitError",
    # networks
    "Network",
    "Node",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "equivalent",
    "global_functions",
    # timing
    "DelayModel",
    "unit_delay",
    "TopologicalTiming",
    "FunctionalTiming",
    "stable_by",
    "true_arrival_times",
    "has_false_paths",
    # core
    "INF",
    "RequiredTimeProfile",
    "RequiredTimeReport",
    "analyze_required_times",
    "topological_input_required_times",
    "ExactAnalysis",
    "Approx1Analysis",
    "Approx2Analysis",
    "ArrivalFlexibility",
    "arrival_flexibility",
    "required_flexibility",
    "subcircuit_timing",
]
