"""Zero-dependency observability: tracing spans and a process metrics registry.

See :mod:`repro.obs.trace` for spans and :mod:`repro.obs.metrics` for the
counter/gauge/histogram registry.  ``docs/OBSERVABILITY.md`` documents the
span taxonomy and export formats.
"""

from repro.obs.metrics import (
    Counter,
    EngineTelemetry,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    Snapshot,
)
from repro.obs.trace import (
    Span,
    SpanRecord,
    Trace,
    active_trace,
    is_tracing,
    read_jsonl,
    records_to_chrome,
    render_summary,
    span,
    start_trace,
    stop_trace,
    tracing,
)

__all__ = [
    "Counter",
    "EngineTelemetry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Snapshot",
    "Span",
    "SpanRecord",
    "Trace",
    "active_trace",
    "is_tracing",
    "read_jsonl",
    "records_to_chrome",
    "render_summary",
    "span",
    "start_trace",
    "stop_trace",
    "tracing",
]
