"""Process-wide metrics: named counters, gauges, histograms, and telemetry.

Two kinds of instrument coexist, chosen by where the cost may land:

* **Direct metrics** (:class:`Counter` / :class:`Gauge` / :class:`Histogram`)
  are registered by name in the process-wide :data:`REGISTRY` and updated
  under a lock.  They are meant for coarse events — a fuzz case finished, a
  validation check ran — never for per-BDD-node work.

* **Engine telemetry** (:class:`EngineTelemetry`) aggregates the *plain
  integer attributes* that the hot engines (:class:`repro.bdd.BddManager`,
  :class:`repro.sat.Solver`) already keep for themselves.  The hot paths
  stay untouched; aggregation happens lazily at :meth:`MetricsRegistry
  .snapshot` time by summing over the live engine objects.  When an engine
  object is garbage collected its final counts are folded into a retained
  total first, so interval accounting via ``snapshot()``/``diff()`` never
  loses the work of an engine that was born and died inside the interval.

The common query surface is :meth:`MetricsRegistry.snapshot`, which returns
an immutable :class:`Snapshot`; ``later.diff(earlier)`` yields the non-zero
deltas — the currency of tracing spans, per-fuzz-case accounting, and the
CLI's ``--metrics-json``.
"""

from __future__ import annotations

import collections
import threading
import weakref
from typing import Callable, Mapping


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A named value that can move in both directions."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of an observed distribution (count/sum/min/max).

    Only the monotone components (``count`` and ``sum``) enter snapshots,
    so interval diffs stay meaningful; ``min``/``max`` are available via
    :meth:`values` for end-of-run reporting.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def values(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class Snapshot:
    """An immutable point-in-time view of every registered value."""

    __slots__ = ("values",)

    def __init__(self, values: dict[str, float]):
        self.values = values

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def diff(self, earlier: "Snapshot") -> dict[str, float]:
        """Non-zero per-key deltas since ``earlier`` (this minus that)."""
        out: dict[str, float] = {}
        for key, value in self.values.items():
            delta = value - earlier.values.get(key, 0.0)
            if delta:
                out[key] = delta
        for key, value in earlier.values.items():
            if key not in self.values and value:
                out[key] = -value
        return out

    def as_dict(self) -> dict[str, float]:
        return dict(self.values)


class EngineTelemetry:
    """Process-wide counter aggregation over short-lived engine objects.

    ``extract(state)`` maps an engine object's ``__dict__`` to monotone
    counters; ``extract_gauges`` (optional) maps it to instantaneous values
    that are only meaningful for *live* objects (e.g. live BDD nodes).
    Tracking costs one weakref per object; dead objects' counters are
    retained so totals never go backwards.
    """

    def __init__(
        self,
        prefix: str,
        extract: Callable[[dict], Mapping[str, float]],
        extract_gauges: Callable[[dict], Mapping[str, float]] | None = None,
    ):
        self.prefix = prefix
        self._extract = extract
        self._extract_gauges = extract_gauges
        self._lock = threading.Lock()
        self._live: dict[int, weakref.ref] = {}
        self._retained: dict[str, float] = {}
        # dead-object finals waiting to be folded into _retained.  Weakref
        # callbacks run at arbitrary allocation points — including while
        # this thread already holds _lock — so the callback must never
        # acquire it; deque.append is atomic, and track()/collect() drain
        # the queue under the lock.
        self._pending: collections.deque = collections.deque()
        self._created = 0

    def _drain_pending(self) -> None:
        """Fold queued dead-object finals into ``_retained`` (lock held)."""
        while True:
            try:
                key, final = self._pending.popleft()
            except IndexError:
                break
            self._live.pop(key, None)
            for k, v in final.items():
                if v:
                    self._retained[k] = self._retained.get(k, 0.0) + v

    def track(self, obj: object) -> None:
        """Start aggregating ``obj``'s counters (until it is collected)."""
        # The finalizer closes over the instance __dict__, not the instance:
        # the dict does not keep the object alive, but survives it long
        # enough for the final counter values to be read.
        state = obj.__dict__
        key = id(obj)

        def _finalize(_ref: weakref.ref, state=state, key=key) -> None:
            # lock-free: may run re-entrantly via GC inside a locked section
            self._pending.append((key, self._extract(state)))

        with self._lock:
            self._drain_pending()
            self._created += 1
            self._live[key] = weakref.ref(obj, _finalize)

    def collect(self) -> dict[str, float]:
        """Current totals: retained dead-object counts plus live objects."""
        with self._lock:
            self._drain_pending()
            out = dict(self._retained)
            refs = list(self._live.values())
        out[f"{self.prefix}.tracked"] = float(self._created)
        live = 0
        for ref in refs:
            obj = ref()
            if obj is None:
                continue
            live += 1
            state = obj.__dict__
            for k, v in self._extract(state).items():
                if v:
                    out[k] = out.get(k, 0.0) + v
            if self._extract_gauges is not None:
                for k, v in self._extract_gauges(state).items():
                    out[k] = out.get(k, 0.0) + v
        out[f"{self.prefix}.live"] = float(live)
        return out


class MetricsRegistry:
    """The process-wide named-metric registry.

    ``counter``/``gauge``/``histogram`` are get-or-create;  ``snapshot()``
    materializes every direct metric plus every registered collector into
    one flat name → value mapping.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: dict[str, Callable[[], Mapping[str, float]]] = {}

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def register_collector(
        self, name: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a callable polled at snapshot time (telemetry style)."""
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    def snapshot(self) -> Snapshot:
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors.values())
        values: dict[str, float] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                hv = metric.values()
                values[f"{metric.name}.count"] = hv["count"]
                values[f"{metric.name}.sum"] = hv["sum"]
            else:
                values[metric.name] = metric.value
        for fn in collectors:
            for key, value in fn().items():
                values[key] = values.get(key, 0.0) + value
        return Snapshot(values)

    def reset(self) -> None:
        """Drop every *direct* metric (counters/gauges/histograms).

        Telemetry collectors are process-lifetime totals and are left
        alone: interval accounting over them must use ``snapshot()`` /
        ``diff()``, which is robust to engines dying mid-interval.
        """
        with self._lock:
            self._metrics.clear()


#: The process-wide registry every subsystem publishes into.
REGISTRY = MetricsRegistry()


__all__ = [
    "Counter",
    "EngineTelemetry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Snapshot",
]
