"""Nestable tracing spans with metric deltas and two export formats.

Usage at an instrumentation point::

    from repro.obs.trace import span

    with span("exact.build_relation", circuit=net.name) as sp:
        ...
        sp.set(leaf_vars=len(leaf_vars))

When no trace is active, ``span()`` returns a shared no-op object after a
single global read — the instrumented hot paths pay one function call and
one ``is None`` test.  When a trace *is* active (``start_trace()`` /
``tracing()``), each span records wall time, nesting, the exception type
that unwound it (if any), and — unless ``capture_metrics=False`` — the
:data:`repro.obs.metrics.REGISTRY` delta across its lifetime, which is how
spans carry BDD node/cache deltas and SAT propagation counts without the
engines knowing about tracing at all.

Exports:

* :meth:`Trace.to_jsonl` — one JSON object per span (plus a header line),
  the format the ``repro trace`` subcommand reads back;
* :meth:`Trace.to_chrome` — Chrome ``trace_event`` JSON loadable in
  ``about:tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ObsError
from repro.obs.metrics import REGISTRY

JSONL_VERSION = 1


class Span:
    """One timed region: a node of the trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "start",
        "end",
        "children",
        "metrics",
        "status",
        "thread",
        "_trace",
        "_snap",
    )

    def __init__(self, name: str, attrs: dict, trace: "Trace"):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end: float | None = None
        self.children: list[Span] = []
        self.metrics: dict[str, float] = {}
        self.status = "ok"
        self.thread = threading.get_ident()
        self._trace = trace
        self._snap = None

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach attributes mid-span (chainable; no-op when disabled)."""
        self.attrs.update(attrs)
        return self

    def self_time(self) -> float:
        """Duration not covered by child spans."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        trace = self._trace
        self.end = time.perf_counter() - trace.t0
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        if self._snap is not None:
            self.metrics = REGISTRY.snapshot().diff(self._snap)
            self._snap = None
        stack = trace._stack()
        # Unwind to this span; anything above it on the stack was abandoned
        # without a clean __exit__ (e.g. a discarded generator) — close the
        # leaked spans at our end time so the tree stays well formed.
        while stack:
            top = stack.pop()
            if top is self:
                break
            if top.end is None:
                top.end = self.end
                top.status = "leaked"
        return False


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class Trace:
    """One recording session: a forest of spans (one root set per thread)."""

    def __init__(self, capture_metrics: bool = True):
        self.capture_metrics = capture_metrics
        self.roots: list[Span] = []
        self.t0 = time.perf_counter()
        self.wall_start = time.time()
        self.duration: float | None = None
        self._tls = threading.local()
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _open(self, name: str, attrs: dict) -> Span:
        stack = self._stack()
        sp = Span(name, attrs, self)
        if self.capture_metrics:
            sp._snap = REGISTRY.snapshot()
        sp.start = time.perf_counter() - self.t0
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
        stack.append(sp)
        return sp

    def _finish(self) -> None:
        self.duration = time.perf_counter() - self.t0
        for sp, _depth in self.walk():
            if sp.end is None:
                sp.end = self.duration
                sp.status = "leaked"

    # -- inspection -----------------------------------------------------
    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) over the whole forest."""
        stack = [(sp, 0) for sp in reversed(self.roots)]
        while stack:
            sp, depth = stack.pop()
            yield sp, depth
            for child in reversed(sp.children):
                stack.append((child, depth + 1))

    @property
    def num_spans(self) -> int:
        return sum(1 for _ in self.walk())

    def coverage(self) -> float:
        """Fraction of the traced wall time covered by root spans."""
        if not self.duration:
            return 0.0
        covered = sum(sp.duration for sp in self.roots)
        return min(1.0, covered / self.duration)

    def phase_breakdown(self) -> dict[str, float]:
        """Seconds per top-level span name (the benchmark-row summary)."""
        out: dict[str, float] = {}
        for sp in self.roots:
            for child in sp.children or [sp]:
                out[child.name] = out.get(child.name, 0.0) + child.duration
        return {name: round(secs, 6) for name, secs in out.items()}

    # -- export ---------------------------------------------------------
    def to_jsonl(self) -> str:
        header = {
            "type": "repro-trace",
            "version": JSONL_VERSION,
            "wall_start": self.wall_start,
            "duration": self.duration,
            "capture_metrics": self.capture_metrics,
        }
        lines = [json.dumps(header)]
        ids: dict[int, int] = {}
        next_id = 0
        parents: dict[int, int | None] = {}
        for sp, _depth in self.walk():
            ids[id(sp)] = next_id
            next_id += 1
            for child in sp.children:
                parents[id(child)] = ids[id(sp)]
        for sp, _depth in self.walk():
            lines.append(
                json.dumps(
                    {
                        "id": ids[id(sp)],
                        "parent": parents.get(id(sp)),
                        "name": sp.name,
                        "start": round(sp.start, 9),
                        "dur": round(sp.duration, 9),
                        "thread": sp.thread,
                        "status": sp.status,
                        "attrs": sp.attrs,
                        "metrics": sp.metrics,
                    },
                    default=str,
                )
            )
        return "\n".join(lines) + "\n"

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` format (complete events, µs timebase)."""
        events: list[dict] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "repro"},
            }
        ]
        for sp, _depth in self.walk():
            args = {str(k): v for k, v in sp.attrs.items()}
            for key, value in sp.metrics.items():
                args[key] = value
            if sp.status != "ok":
                args["status"] = sp.status
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": sp.thread,
                    "cat": "repro",
                    "name": sp.name,
                    "ts": round(sp.start * 1e6, 3),
                    "dur": round(sp.duration * 1e6, 3),
                    "args": args,
                }
            )
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def save(self, path: str, format: str = "auto") -> None:
        """Write the trace to ``path`` as ``jsonl`` or ``chrome`` JSON.

        ``auto`` picks by extension: ``.json`` means Chrome trace_event
        (loadable in ``about:tracing``), anything else means JSONL.
        """
        if format == "auto":
            format = "chrome" if path.endswith(".json") else "jsonl"
        if format == "jsonl":
            text = self.to_jsonl()
        elif format == "chrome":
            text = json.dumps(self.to_chrome(), default=str)
        else:
            raise ObsError(f"unknown trace format {format!r}")
        with open(path, "w") as fh:
            fh.write(text)


# ----------------------------------------------------------------------
# module-level API
# ----------------------------------------------------------------------
_ACTIVE: Trace | None = None
_ACTIVE_LOCK = threading.Lock()


def span(name: str, **attrs):
    """Open a span in the active trace, or a shared no-op when disabled."""
    trace = _ACTIVE
    if trace is None:
        return _NOOP
    return trace._open(name, attrs)


def is_tracing() -> bool:
    return _ACTIVE is not None


def active_trace() -> Trace | None:
    return _ACTIVE


def start_trace(capture_metrics: bool = True) -> Trace:
    """Begin recording; raises :class:`ObsError` if already recording."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise ObsError("a trace is already active")
        _ACTIVE = Trace(capture_metrics=capture_metrics)
        return _ACTIVE


def stop_trace() -> Trace:
    """Stop recording and return the finished :class:`Trace`."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is None:
            raise ObsError("no trace is active")
        trace = _ACTIVE
        _ACTIVE = None
    trace._finish()
    return trace


@contextmanager
def tracing(capture_metrics: bool = True) -> Iterator[Trace]:
    """``with tracing() as tr: ...`` — scoped start/stop."""
    trace = start_trace(capture_metrics=capture_metrics)
    try:
        yield trace
    finally:
        if _ACTIVE is trace:
            stop_trace()


# ----------------------------------------------------------------------
# reading traces back (the `repro trace` subcommand)
# ----------------------------------------------------------------------
class SpanRecord:
    """One span re-read from a JSONL trace file."""

    __slots__ = ("name", "start", "dur", "thread", "status", "attrs", "metrics", "children")

    def __init__(self, raw: dict):
        try:
            self.name = raw["name"]
            self.start = float(raw["start"])
            self.dur = float(raw["dur"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ObsError(f"malformed span record: {raw!r}") from exc
        self.thread = raw.get("thread", 0)
        self.status = raw.get("status", "ok")
        self.attrs = raw.get("attrs", {})
        self.metrics = raw.get("metrics", {})
        self.children: list[SpanRecord] = []

    def self_time(self) -> float:
        return max(0.0, self.dur - sum(c.dur for c in self.children))


def read_jsonl(text: str) -> tuple[dict, list[SpanRecord]]:
    """Parse a JSONL trace; returns (header, root spans)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ObsError("trace file is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ObsError(f"trace header is not JSON: {exc}") from None
    if not isinstance(header, dict) or header.get("type") != "repro-trace":
        raise ObsError("not a repro trace file (missing repro-trace header)")
    by_id: dict[int, SpanRecord] = {}
    roots: list[SpanRecord] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"line {lineno}: not JSON: {exc}") from None
        record = SpanRecord(raw)
        by_id[raw.get("id", lineno)] = record
        parent = raw.get("parent")
        if parent is None:
            roots.append(record)
        else:
            owner = by_id.get(parent)
            if owner is None:
                raise ObsError(f"line {lineno}: unknown parent span {parent}")
            owner.children.append(record)
    return header, roots


def render_summary(
    header: dict,
    roots: list[SpanRecord],
    max_depth: int | None = None,
    min_frac: float = 0.0,
) -> str:
    """A human-readable tree: durations, % of total, metric highlights."""
    total = header.get("duration") or sum(r.dur for r in roots) or 1e-12
    lines = [
        f"trace: {sum(1 for _ in _walk_records(roots))} spans, "
        f"{total * 1000:.2f} ms total, "
        f"coverage {min(1.0, sum(r.dur for r in roots) / total):.1%}"
    ]

    def fmt_metrics(record: SpanRecord) -> str:
        if not record.metrics:
            return ""
        keys = sorted(record.metrics, key=lambda k: -abs(record.metrics[k]))[:3]
        parts = ", ".join(f"{k}={record.metrics[k]:g}" for k in keys)
        return f"  [{parts}]"

    def emit(record: SpanRecord, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        frac = record.dur / total
        if frac < min_frac and depth > 0:
            return
        mark = "" if record.status == "ok" else f"  !{record.status}"
        lines.append(
            f"{'  ' * depth}{record.name:<{max(1, 40 - 2 * depth)}} "
            f"{record.dur * 1000:>10.2f} ms  {frac:>6.1%}"
            f"{mark}{fmt_metrics(record)}"
        )
        for child in record.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def _walk_records(roots: list[SpanRecord]) -> Iterator[SpanRecord]:
    stack = list(roots)
    while stack:
        record = stack.pop()
        yield record
        stack.extend(record.children)


def records_to_chrome(header: dict, roots: list[SpanRecord]) -> dict:
    """Convert re-read JSONL spans to the Chrome trace_event format."""
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for record in _walk_records(roots):
        args = dict(record.attrs)
        args.update(record.metrics)
        if record.status != "ok":
            args["status"] = record.status
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": record.thread,
                "cat": "repro",
                "name": record.name,
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.dur * 1e6, 3),
                "args": args,
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


__all__ = [
    "Span",
    "SpanRecord",
    "Trace",
    "active_trace",
    "is_tracing",
    "read_jsonl",
    "records_to_chrome",
    "render_summary",
    "span",
    "start_trace",
    "stop_trace",
    "tracing",
]
