"""A self-contained CNF SAT solver and circuit-to-CNF encoders.

The paper's second approximate algorithm validates candidate required-time
vectors with a *SAT-based* functional timing analyzer (McGeer, Saldanha,
Brayton, Sangiovanni-Vincentelli [9]: "Each comparison is done by creating
a Boolean network which computes the difference between two functions and
using a SAT solver to check whether the output of the network is
satisfiable").  This package supplies that engine:

* :class:`~repro.sat.cnf.Cnf` — clause database with DIMACS I/O,
* :class:`~repro.sat.solver.Solver` — CDCL (conflict-driven clause
  learning) with two-watched-literal propagation, VSIDS-style branching,
  Luby restarts and phase saving,
* :mod:`~repro.sat.encode` — Tseitin encoding of Boolean networks and the
  miter construction for difference checking.
"""

from repro.sat.cnf import Cnf
from repro.sat.solver import Solver, solve
from repro.sat.encode import CircuitEncoder, miter

__all__ = ["Cnf", "Solver", "solve", "CircuitEncoder", "miter"]
