"""CNF clause database with named variables and DIMACS I/O.

Literals follow the DIMACS convention: variable ids are positive integers,
a negative integer denotes the negated variable.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence, TextIO

from repro.errors import SatError


class Cnf:
    """A growable CNF formula."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self._name2var: dict[str, int] = {}
        self._var2name: dict[int, str] = {}

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable, optionally registering a name."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            if name in self._name2var:
                raise SatError(f"variable name {name!r} already in use")
            self._name2var[name] = var
            self._var2name[var] = name
        return var

    def var(self, name: str) -> int:
        try:
            return self._name2var[name]
        except KeyError:
            raise SatError(f"unknown variable name {name!r}") from None

    def has_var(self, name: str) -> bool:
        return name in self._name2var

    def name_of(self, var: int) -> str | None:
        return self._var2name.get(abs(var))

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> None:
        clause = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise SatError("literal 0 is reserved")
            if abs(lit) > self.num_vars:
                raise SatError(f"literal {lit} references an unallocated variable")
            if -lit in seen:
                return  # tautological clause: drop
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_clause_unchecked(self, clause: list[int]) -> None:
        """Append a clause known to be well-formed.

        Skips the duplicate/tautology/bounds screening of
        :meth:`add_clause`; for generators (e.g. the Tseitin encoder) whose
        clauses are duplicate-free by construction.  The list is stored
        as-is, not copied.
        """
        self.clauses.append(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    # ------------------------------------------------------------------
    # DIMACS
    # ------------------------------------------------------------------
    def to_dimacs(self, handle: TextIO | None = None) -> str:
        out = io.StringIO()
        out.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
        for var, name in sorted(self._var2name.items()):
            out.write(f"c var {var} = {name}\n")
        for clause in self.clauses:
            out.write(" ".join(map(str, clause)) + " 0\n")
        text = out.getvalue()
        if handle is not None:
            handle.write(text)
        return text

    @classmethod
    def from_dimacs(cls, text: str) -> "Cnf":
        cnf = cls()
        declared_vars = 0
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise SatError(f"malformed problem line: {line!r}")
                declared_vars = int(parts[2])
                while cnf.num_vars < declared_vars:
                    cnf.new_var()
                continue
            literals = [int(tok) for tok in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            for lit in literals:
                while abs(lit) > cnf.num_vars:
                    cnf.new_var()
            cnf.add_clause(literals)
        return cnf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cnf {self.num_vars} vars, {len(self.clauses)} clauses>"
