"""Tseitin encoding of Boolean networks and the miter construction.

``CircuitEncoder`` maps every network node to a CNF variable and adds
clauses making each node variable equivalent to its SOP local function of
the fanin variables.  ``miter`` builds the classical difference-checking
formula between two networks over the same primary inputs: it is
satisfiable iff the networks differ on some input vector — exactly the
check [9] performs between a χ function and the output's onset/offset.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import SatError
from repro.network.network import Network
from repro.sat.cnf import Cnf


class CircuitEncoder:
    """Encode one or more networks into a shared :class:`Cnf`."""

    def __init__(self, cnf: Cnf | None = None):
        self.cnf = cnf if cnf is not None else Cnf()

    def lit_for(self, name: str) -> int:
        """The CNF variable of a previously encoded signal."""
        return self.cnf.var(name)

    def encode(self, network: Network, prefix: str = "") -> dict[str, int]:
        """Add clauses for every node; returns signal-name -> CNF variable.

        ``prefix`` namespaces internal node variables so that several
        networks can share primary-input variables while keeping their
        internal nodes distinct (primary inputs are *not* prefixed).
        """
        mapping: dict[str, int] = {}
        for pi in network.inputs:
            if self.cnf.has_var(pi):
                mapping[pi] = self.cnf.var(pi)
            else:
                mapping[pi] = self.cnf.new_var(pi)

        for name in network.topological_order():
            node = network.nodes[name]
            if node.is_input:
                continue
            full_name = prefix + name
            if self.cnf.has_var(full_name):
                raise SatError(f"signal {full_name!r} encoded twice")
            out = self.cnf.new_var(full_name)
            mapping[name] = out
            fanin_lits = [mapping[f] for f in node.fanins]
            self._encode_cover(out, node.cover, fanin_lits)
        return mapping

    def _encode_cover(self, out: int, cover, fanin_lits: Sequence[int]) -> None:
        cnf = self.cnf
        if cover.is_empty():
            cnf.add_clause([-out])
            return
        if any(cube.is_tautology() for cube in cover):
            cnf.add_clause([out])
            return

        # Every clause below is duplicate-free by construction (each fanin
        # contributes at most one literal per cube), so skip add_clause's
        # screening passes.
        term_lits: list[int] = []
        for cube in cover:
            lits = []
            for i, lit_var in enumerate(fanin_lits):
                phase = cube.literal(i)
                if phase == 1:
                    lits.append(lit_var)
                elif phase == 0:
                    lits.append(-lit_var)
            if len(lits) == 1:
                term_lits.append(lits[0])
                continue
            aux = cnf.new_var()
            # aux -> each literal
            for lit in lits:
                cnf.add_clause_unchecked([-aux, lit])
            # all literals -> aux
            cnf.add_clause_unchecked([aux] + [-lit for lit in lits])
            term_lits.append(aux)

        # out -> some term
        cnf.add_clause_unchecked([-out] + term_lits)
        # each term -> out
        for t in term_lits:
            cnf.add_clause_unchecked([out, -t])


def miter(
    a: Network,
    b: Network,
    outputs: Sequence[str] | None = None,
) -> tuple[Cnf, dict[str, int]]:
    """CNF satisfiable iff networks ``a`` and ``b`` differ on some output.

    Both networks must have the same primary inputs (shared variables) and
    the compared ``outputs`` (default: ``a.outputs``, which must equal
    ``b.outputs`` as a set).  Returns the CNF and the primary-input
    variable map for model decoding.
    """
    if set(a.inputs) != set(b.inputs):
        raise SatError("miter requires identical primary inputs")
    if outputs is None:
        if set(a.outputs) != set(b.outputs):
            raise SatError("networks expose different outputs; pass `outputs`")
        outputs = list(a.outputs)

    encoder = CircuitEncoder()
    map_a = encoder.encode(a, prefix="A/")
    map_b = encoder.encode(b, prefix="B/")
    cnf = encoder.cnf

    diff_lits = []
    for out in outputs:
        xa, xb = map_a[out], map_b[out]
        d = cnf.new_var()
        # d <-> xa XOR xb
        cnf.add_clause([-d, xa, xb])
        cnf.add_clause([-d, -xa, -xb])
        cnf.add_clause([d, -xa, xb])
        cnf.add_clause([d, xa, -xb])
        diff_lits.append(d)
    cnf.add_clause(diff_lits)

    input_map = {pi: map_a[pi] for pi in a.inputs}
    return cnf, input_map
