"""A CDCL SAT solver.

Features: two-watched-literal unit propagation, first-UIP conflict analysis
with clause learning, VSIDS-style variable activities with exponential
decay, phase saving, Luby-sequence restarts, and optional conflict budgets
(so callers can enforce the paper-style "> 12 hours" resource aborts).

This is a from-scratch implementation with no external dependencies; it is
deliberately classical so its behavior is predictable and testable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ResourceLimitError, SatError
from repro.obs.metrics import REGISTRY, EngineTelemetry
from repro.sat.cnf import Cnf


def _sat_engine_counters(state: dict) -> dict[str, float]:
    """Monotone ``sat.*`` totals from a solver's ``__dict__``; polled
    lazily at metrics-snapshot time so the CDCL loop stays metrics-free."""
    return {
        "sat.propagations": float(state["propagations"]),
        "sat.decisions": float(state["decisions"]),
        "sat.conflicts": float(state["conflicts"]),
        "sat.learnt_clauses": float(len(state["learnts"])),
    }


_TELEMETRY = EngineTelemetry("sat", _sat_engine_counters)
REGISTRY.register_collector("sat", _TELEMETRY.collect)


class Solver:
    """CDCL solver over a :class:`Cnf`."""

    def __init__(self, cnf: Cnf):
        self.nvars = cnf.num_vars
        self.assign: list[int | None] = [None] * (self.nvars + 1)
        self.level: list[int] = [0] * (self.nvars + 1)
        self.reason: list[list[int] | None] = [None] * (self.nvars + 1)
        self.activity: list[float] = [0.0] * (self.nvars + 1)
        self.phase: list[int] = [0] * (self.nvars + 1)  # saved polarity
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.watches: dict[int, list[list[int]]] = {}
        self.clauses: list[list[int]] = []
        self.learnts: list[list[int]] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._unsat = False
        _TELEMETRY.track(self)

        # _add_clause never mutates or stores its argument (it builds a
        # fresh simplified list), so the cnf clauses are shared, not copied
        for clause in cnf.clauses:
            if not self._add_clause(clause):
                self._unsat = True
                break

    # ------------------------------------------------------------------
    # clause management
    # ------------------------------------------------------------------
    def _watch(self, lit: int, clause: list[int]) -> None:
        self.watches.setdefault(lit, []).append(clause)

    def _add_clause(self, clause: list[int]) -> bool:
        """Add an original clause; returns False on immediate conflict."""
        # single pass: dedup, tautology check, and level-0 simplification
        # (drop false literals, detect satisfied clauses)
        assign = self.assign
        seen: set[int] = set()
        simplified: list[int] = []
        for lit in clause:
            if lit in seen:
                continue
            if -lit in seen:
                return True  # tautology
            seen.add(lit)
            v = assign[lit if lit > 0 else -lit]
            if v is None:
                simplified.append(lit)
            elif v == (lit > 0):
                return True
        if not simplified:
            return False
        if len(simplified) == 1:
            return self._enqueue(simplified[0], None)
        self.clauses.append(simplified)
        watches = self.watches
        for lit in (simplified[0], simplified[1]):
            lst = watches.get(lit)
            if lst is None:
                watches[lit] = [simplified]
            else:
                lst.append(simplified)
        return True

    # ------------------------------------------------------------------
    # assignment plumbing
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> bool | None:
        v = self.assign[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        current = self._value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None.

        The innermost loop of the solver: the literal-value test and the
        unit enqueue are inlined (no ``_value``/``_enqueue`` calls) and all
        instance attributes are bound to locals up front.
        """
        assign = self.assign
        watches = self.watches
        trail = self.trail
        level_ = self.level
        reason_ = self.reason
        trail_lim = self.trail_lim
        while self.qhead < len(trail):
            lit = trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            falsified = -lit
            watchers = watches.get(falsified)
            if not watchers:
                continue
            new_watchers: list[list[int]] = []
            conflict: list[int] | None = None
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                if conflict is not None:
                    new_watchers.append(clause)
                    continue
                # normalize: watched literals at positions 0 and 1
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                v = assign[first] if first > 0 else assign[-first]
                if v is not None and (v if first > 0 else not v):
                    new_watchers.append(clause)
                    continue
                # search replacement watch
                found = False
                for k in range(2, len(clause)):
                    ck = clause[k]
                    cv = assign[ck] if ck > 0 else assign[-ck]
                    if cv is None or (cv if ck > 0 else not cv):
                        clause[1], clause[k] = clause[k], clause[1]
                        lst = watches.get(ck)
                        if lst is None:
                            watches[ck] = [clause]
                        else:
                            lst.append(clause)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                new_watchers.append(clause)
                if v is not None:
                    # first is already false under the current assignment
                    conflict = clause
                else:
                    var = first if first > 0 else -first
                    assign[var] = first > 0
                    level_[var] = len(trail_lim)
                    reason_[var] = clause
                    trail.append(first)
            watches[falsified] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        learnt: list[int] = []
        seen = [False] * (self.nvars + 1)
        counter = 0
        lit = 0
        clause: list[int] | None = conflict
        index = len(self.trail)
        current_level = len(self.trail_lim)

        while True:
            assert clause is not None
            for q in clause:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick the next trail literal to resolve on
            while True:
                index -= 1
                if seen[abs(self.trail[index])]:
                    break
            p = self.trail[index]
            var = abs(p)
            clause = self.reason[var]
            seen[var] = False
            counter -= 1
            if counter == 0:
                lit = -p
                break
            lit = p

        learnt.insert(0, lit)
        if len(learnt) == 1:
            return learnt, 0
        # backjump level: second-highest level in the learnt clause
        levels = sorted((self.level[abs(q)] for q in learnt[1:]), reverse=True)
        back = levels[0]
        # move one literal of the backjump level to position 1 for watching
        for i in range(1, len(learnt)):
            if self.level[abs(learnt[i])] == back:
                learnt[1], learnt[i] = learnt[i], learnt[1]
                break
        return learnt, back

    def _bump(self, var: int) -> None:
        self.activity[var] += self._var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.nvars + 1):
                self.activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    # ------------------------------------------------------------------
    # backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        bound = self.trail_lim[level]
        phase = self.phase
        assign = self.assign
        reason = self.reason
        for lit in reversed(self.trail[bound:]):
            if lit > 0:
                phase[lit] = 1
                assign[lit] = None
                reason[lit] = None
            else:
                phase[-lit] = 0
                assign[-lit] = None
                reason[-lit] = None
        del self.trail[bound:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))

    # ------------------------------------------------------------------
    # branching
    # ------------------------------------------------------------------
    def _decide(self) -> int | None:
        assign = self.assign
        activity = self.activity
        best_var = 0
        best_act = -1.0
        for var in range(1, self.nvars + 1):
            if assign[var] is None:
                act = activity[var]
                if act > best_act:
                    best_act = act
                    best_var = var
        if not best_var:
            return None
        return best_var if self.phase[best_var] else -best_var

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: int | None = None,
    ) -> bool:
        """Decide satisfiability.  Raises :class:`ResourceLimitError` when
        the conflict budget is exhausted."""
        if self._unsat:
            return False
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return False

        # assumptions become decision-level-1..k decisions
        for lit in assumptions:
            if abs(lit) > self.nvars:
                raise SatError(f"assumption {lit} out of range")

        restart_base = 64
        luby_index = 1

        while True:
            budget = restart_base * _luby(luby_index)
            result = self._search(assumptions, budget, max_conflicts)
            if result is not None:
                return result
            luby_index += 1
            self._cancel_until(0)

    def _search(
        self,
        assumptions: Sequence[int],
        restart_budget: int,
        max_conflicts: int | None,
    ) -> bool | None:
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if max_conflicts is not None and self.conflicts > max_conflicts:
                    raise ResourceLimitError(
                        f"SAT conflict budget ({max_conflicts}) exhausted"
                    )
                if len(self.trail_lim) == 0:
                    self._unsat = True
                    return False
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(max(back_level, 0))
                if len(learnt) == 1:
                    self._cancel_until(0)
                    if not self._enqueue(learnt[0], None):
                        self._unsat = True
                        return False
                else:
                    self.learnts.append(learnt)
                    self._watch(learnt[0], learnt)
                    self._watch(learnt[1], learnt)
                    self._enqueue(learnt[0], learnt)
                self._decay()
                if conflicts_here >= restart_budget:
                    return None  # restart
                continue

            # re-apply assumptions under the current trail
            applied_all = True
            for lit in assumptions:
                value = self._value(lit)
                if value is True:
                    continue
                if value is False:
                    return False  # assumptions conflict
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                applied_all = False
                break
            if not applied_all:
                continue

            decision = self._decide()
            if decision is None:
                return True
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)

    def model(self) -> dict[int, bool]:
        """The satisfying assignment after a True ``solve()`` result."""
        return {
            var: bool(self.assign[var])
            for var in range(1, self.nvars + 1)
            if self.assign[var] is not None
        }


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed).

    If i = 2^k - 1 the value is 2^(k-1); otherwise recurse on
    i - (2^(k-1) - 1) for the largest k with 2^(k-1) - 1 < i.
    """
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


def solve(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    max_conflicts: int | None = None,
) -> dict[int, bool] | None:
    """One-shot convenience wrapper: a model dict, or None when UNSAT."""
    solver = Solver(cnf)
    if solver.solve(assumptions, max_conflicts=max_conflicts):
        return solver.model()
    return None


def enumerate_models(
    cnf: Cnf,
    over: Sequence[int] | None = None,
    max_models: int = 1_000,
    max_conflicts: int | None = None,
):
    """Yield satisfying assignments, distinct over the ``over`` variables.

    Classic blocking-clause enumeration: after each model, a clause
    negating its projection onto ``over`` (default: all variables) is
    added.  ``max_models`` bounds the enumeration; exceeding it raises
    :class:`~repro.errors.ResourceLimitError`.
    """
    from repro.errors import ResourceLimitError

    projection = list(over) if over is not None else list(
        range(1, cnf.num_vars + 1)
    )
    # work on a private copy so the caller's formula is untouched
    work = Cnf()
    for _ in range(cnf.num_vars):
        work.new_var()
    for clause in cnf.clauses:
        work.add_clause(list(clause))

    count = 0
    while True:
        solver = Solver(work)
        if not solver.solve(max_conflicts=max_conflicts):
            return
        model = solver.model()
        count += 1
        if count > max_models:
            raise ResourceLimitError(
                f"more than {max_models} models; tighten the projection"
            )
        yield {v: model.get(v, False) for v in projection}
        blocking = [
            -v if model.get(v, False) else v for v in projection
        ]
        if not blocking:
            return
        work.add_clause(blocking)
