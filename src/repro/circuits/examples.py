"""The paper's worked examples and small public-domain circuits."""

from __future__ import annotations

from repro.network.network import Network


def figure4() -> Network:
    """The Section 4 worked example.

    Two cascaded AND gates: w = x1·x2, z = w·x2 (so z = x1·x2, and x2 is
    referenced at two different times).  With unit delays and required time
    2 at z, the exact relation is the table of Section 4.1 and the only
    prime of F(α, β) is α₁^{x1} α₁^{x2} α₂^{x2} β₁^{x1} β₁^{x2}.
    """
    net = Network("figure4")
    net.add_input("x1")
    net.add_input("x2")
    net.add_gate("w", "AND", ["x1", "x2"])
    net.add_gate("z", "AND", ["w", "x2"])
    net.set_outputs(["z"])
    return net


def figure6() -> Network:
    """The Section 5.1 worked example (the fanin network N_FI).

    a = x2·x3, u1 = x1·a, u2 = x1 + a; with unit delays and zero arrivals,
    u1 arrives at 1 iff x1 = 0 and u2 arrives at 1 iff x1 = 1, which yields
    the paper's folded arrival table at (u1, u2).
    """
    net = Network("figure6")
    for pi in ["x1", "x2", "x3"]:
        net.add_input(pi)
    net.add_gate("a", "AND", ["x2", "x3"])
    net.add_gate("u1", "AND", ["x1", "a"])
    net.add_gate("u2", "OR", ["x1", "a"])
    net.set_outputs(["u1", "u2"])
    return net


def figure6_extended() -> Network:
    """Figure 6 embedded in a surrounding network with a consuming stage,
    so (u1, u2) form a genuine internal subcircuit boundary."""
    net = figure6()
    net.name = "figure6_extended"
    net.add_gate("y", "OR", ["u1", "u2"])
    net.set_outputs(["y"])
    return net


def c17() -> Network:
    """ISCAS-85 C17 — the only ISCAS circuit small enough to embed
    verbatim (public domain; six NAND gates)."""
    net = Network("c17")
    for pi in ["G1", "G2", "G3", "G6", "G7"]:
        net.add_input(pi)
    net.add_gate("G10", "NAND", ["G1", "G3"])
    net.add_gate("G11", "NAND", ["G3", "G6"])
    net.add_gate("G16", "NAND", ["G2", "G11"])
    net.add_gate("G19", "NAND", ["G11", "G7"])
    net.add_gate("G22", "NAND", ["G10", "G16"])
    net.add_gate("G23", "NAND", ["G16", "G19"])
    net.set_outputs(["G22", "G23"])
    return net


def carry_skip_block(cin_pad: int = 2) -> Network:
    """A single two-bit carry-skip block: the canonical false path.

    The (padded) ripple path cin → c1 → c2 → cout is structurally longest
    but requires p0 = p1 = 1 to propagate — and then the skip mux selects
    cin directly, so the path is false.  ``cin_pad`` buffers make the
    ripple path strictly longer than every true path.
    """
    net = Network("carry_skip_block")
    for pi in ["cin", "p0", "p1", "g0", "g1"]:
        net.add_input(pi)
    prev = "cin"
    for i in range(1, cin_pad + 1):
        net.add_gate(f"cin_d{i}", "BUF", [prev])
        prev = f"cin_d{i}"
    net.add_gate("np0", "NOT", ["p0"])
    net.add_gate("np1", "NOT", ["p1"])
    net.add_gate("a1", "AND", ["p0", prev])
    net.add_gate("b1", "AND", ["np0", "g0"])
    net.add_gate("c1", "OR", ["a1", "b1"])
    net.add_gate("a2", "AND", ["p1", "c1"])
    net.add_gate("b2", "AND", ["np1", "g1"])
    net.add_gate("c2", "OR", ["a2", "b2"])
    net.add_gate("s", "AND", ["p0", "p1"])
    net.add_gate("ns", "NOT", ["s"])
    net.add_gate("u", "AND", ["s", "cin"])
    net.add_gate("v", "AND", ["ns", "c2"])
    net.add_gate("cout", "OR", ["u", "v"])
    net.set_outputs(["cout"])
    return net
