"""Deterministic generators of benchmark circuit families.

Every generator is seeded/parameterized and pure, so the Table 1 / Table 2
substitute suites are exactly reproducible.  The families were chosen for
their timing structure:

* **carry-skip adders** — the canonical false-path circuits (McGeer &
  Brayton [8]): block ripple paths are longest yet unsensitizable;
* **carry-select adders** — duplicated carry chains with select muxes;
* **cascaded mux chains** with alternating select polarity — every path
  through ≥ 2 stages is false;
* **parity (XOR) trees** and **ripple adders** — controls with *no* false
  paths (the analogue of the paper's C499/C880/C1355 "No" rows);
* **array multipliers** — deep reconvergence, the analysis stress test
  (the paper's C6288 analogue);
* **random reconvergent logic** and **clustered random logic** — the
  MCNC i-circuit stand-ins.
"""

from __future__ import annotations

import random

from repro.errors import NetworkError
from repro.network.network import Network
from repro.sop import Cover


def _rng(seed: int | random.Random) -> random.Random:
    """Normalize a seed into a dedicated ``random.Random`` stream.

    Every randomized builder funnels its draws through an instance
    returned here — none touches the module-level ``random`` state — so
    generation is reproducible and composable: a caller (the fuzz
    harness, ``clustered_logic``) may hand the same stream to several
    builders and the combined sequence stays deterministic.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _seed_tag(seed: int | random.Random) -> str:
    """A short printable token for default circuit names."""
    return str(seed) if isinstance(seed, int) else "shared"


def _add_mux(net: Network, name: str, sel: str, when1: str, when0: str) -> str:
    """m = sel·when1 + ¬sel·when0 as a single node (its primes include the
    consensus term when1·when0, which the χ recursion needs to see)."""
    net.add_node(name, [sel, when1, when0], Cover.from_patterns(["11-", "0-1"]))
    return name


def _add_xor3(net: Network, name: str, a: str, b: str, c: str) -> str:
    net.add_node(
        name,
        [a, b, c],
        Cover.from_patterns(["100", "010", "001", "111"]),
    )
    return name


def _add_maj3(net: Network, name: str, a: str, b: str, c: str) -> str:
    net.add_node(name, [a, b, c], Cover.from_patterns(["11-", "1-1", "-11"]))
    return name


# ----------------------------------------------------------------------
# adders
# ----------------------------------------------------------------------


def ripple_adder(bits: int, name: str | None = None) -> Network:
    """A plain ripple-carry adder: outputs s0..s{bits-1}, cout.

    No false paths: the carry chain is fully sensitizable.
    """
    if bits < 1:
        raise NetworkError("ripple_adder needs at least one bit")
    net = Network(name or f"ripple{bits}")
    net.add_input("cin")
    for i in range(bits):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")
    carry = "cin"
    outputs = []
    for i in range(bits):
        _add_xor3(net, f"s{i}", f"a{i}", f"b{i}", carry)
        _add_maj3(net, f"c{i + 1}", f"a{i}", f"b{i}", carry)
        outputs.append(f"s{i}")
        carry = f"c{i + 1}"
    outputs.append(carry)
    net.set_outputs(outputs)
    return net


def carry_skip_adder(
    n_blocks: int, block_bits: int = 3, name: str | None = None
) -> Network:
    """A carry-skip adder: ``n_blocks`` blocks of ``block_bits`` bits.

    Inside each block the carry ripples through per-bit muxes
    c_{i+1} = MUX(p_i, c_i, g_i); at the block boundary a skip mux selects
    the block's carry-in directly when every propagate bit is 1.  The
    block-traversing ripple paths are the classical false paths.
    """
    if n_blocks < 1 or block_bits < 2:
        raise NetworkError("need n_blocks >= 1 and block_bits >= 2")
    net = Network(name or f"cskip{n_blocks}x{block_bits}")
    total = n_blocks * block_bits
    net.add_input("cin")
    for i in range(total):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")

    outputs = []
    block_cin = "cin"
    for blk in range(n_blocks):
        bit0 = blk * block_bits
        carry = block_cin
        props = []
        for j in range(block_bits):
            i = bit0 + j
            net.add_gate(f"p{i}", "XOR", [f"a{i}", f"b{i}"])
            net.add_gate(f"g{i}", "AND", [f"a{i}", f"b{i}"])
            props.append(f"p{i}")
            net.add_gate(f"s{i}", "XOR", [f"p{i}", carry])
            outputs.append(f"s{i}")
            _add_mux(net, f"c{i + 1}", f"p{i}", carry, f"g{i}")
            carry = f"c{i + 1}"
        net.add_gate(f"P{blk}", "AND", props)
        _add_mux(net, f"skip{blk}", f"P{blk}", block_cin, carry)
        block_cin = f"skip{blk}"
    outputs.append(block_cin)
    net.set_outputs(outputs)
    return net


def carry_select_adder(
    n_blocks: int, block_bits: int = 2, name: str | None = None
) -> Network:
    """A carry-select adder: each block computes both carry assumptions and
    muxes on the real block carry-in."""
    if n_blocks < 1 or block_bits < 1:
        raise NetworkError("need n_blocks >= 1 and block_bits >= 1")
    net = Network(name or f"csel{n_blocks}x{block_bits}")
    total = n_blocks * block_bits
    net.add_input("cin")
    for i in range(total):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")

    outputs = []
    block_cin = "cin"
    for blk in range(n_blocks):
        bit0 = blk * block_bits
        # propagate/generate per bit
        for j in range(block_bits):
            i = bit0 + j
            net.add_gate(f"p{i}", "XOR", [f"a{i}", f"b{i}"])
            net.add_gate(f"g{i}", "AND", [f"a{i}", f"b{i}"])
        # two speculative chains: carry-in 0 and 1
        chains: dict[int, list[str]] = {}
        for assume in (0, 1):
            carries = []
            # first bit: c = g + p·assume
            if assume == 0:
                net.add_gate(f"B{blk}c1v0", "BUF", [f"g{bit0}"])
            else:
                net.add_gate(f"B{blk}c1v1", "OR", [f"g{bit0}", f"p{bit0}"])
            carries.append(f"B{blk}c1v{assume}")
            for j in range(1, block_bits):
                i = bit0 + j
                prev = carries[-1]
                _add_mux(net, f"B{blk}c{j + 1}v{assume}", f"p{i}", prev, f"g{i}")
                carries.append(f"B{blk}c{j + 1}v{assume}")
            chains[assume] = carries
        # sums: first bit uses the assumed carry-in directly
        for j in range(block_bits):
            i = bit0 + j
            if j == 0:
                # s = p XOR assumed-carry: v0 chain sees carry 0, v1 sees 1
                net.add_gate(f"s{i}v0", "BUF", [f"p{i}"])
                net.add_gate(f"s{i}v1", "NOT", [f"p{i}"])
            else:
                net.add_gate(f"s{i}v0", "XOR", [f"p{i}", chains[0][j - 1]])
                net.add_gate(f"s{i}v1", "XOR", [f"p{i}", chains[1][j - 1]])
            _add_mux(net, f"s{i}", block_cin, f"s{i}v1", f"s{i}v0")
            outputs.append(f"s{i}")
        _add_mux(
            net,
            f"bc{blk}",
            block_cin,
            chains[1][-1],
            chains[0][-1],
        )
        block_cin = f"bc{blk}"
    outputs.append(block_cin)
    net.set_outputs(outputs)
    return net


def array_multiplier(bits: int, name: str | None = None) -> Network:
    """An unsigned array multiplier (the C6288 analogue): outputs
    m0..m{2*bits-1}."""
    if bits < 2:
        raise NetworkError("array_multiplier needs at least 2 bits")
    net = Network(name or f"mult{bits}x{bits}")
    for i in range(bits):
        net.add_input(f"a{i}")
    for j in range(bits):
        net.add_input(f"b{j}")
    # partial products
    for i in range(bits):
        for j in range(bits):
            net.add_gate(f"pp{i}_{j}", "AND", [f"a{i}", f"b{j}"])

    # row-by-row carry-save reduction with ripple rows
    # row 0 is pp{*}_0; subsequent rows add pp{*}_j shifted by j
    acc = [f"pp{i}_0" for i in range(bits)]  # acc[k] = weight k+0 ... etc.
    outputs = [acc[0]]
    acc = acc[1:]
    for j in range(1, bits):
        row = [f"pp{i}_{j}" for i in range(bits)]
        new_acc = []
        carry: str | None = None
        for k in range(bits):
            x = acc[k] if k < len(acc) else None
            y = row[k]
            if x is None and carry is None:
                new_acc.append(y)
            elif x is None:
                net.add_gate(f"r{j}s{k}", "XOR", [y, carry])
                net.add_gate(f"r{j}c{k}", "AND", [y, carry])
                new_acc.append(f"r{j}s{k}")
                carry = f"r{j}c{k}"
            elif carry is None:
                net.add_gate(f"r{j}s{k}", "XOR", [x, y])
                net.add_gate(f"r{j}c{k}", "AND", [x, y])
                new_acc.append(f"r{j}s{k}")
                carry = f"r{j}c{k}"
            else:
                _add_xor3(net, f"r{j}s{k}", x, y, carry)
                _add_maj3(net, f"r{j}c{k}", x, y, carry)
                new_acc.append(f"r{j}s{k}")
                carry = f"r{j}c{k}"
        if carry is not None:
            new_acc.append(carry)
        outputs.append(new_acc[0])
        acc = new_acc[1:]
    outputs.extend(acc)
    net.set_outputs(outputs)
    return net


# ----------------------------------------------------------------------
# structural families
# ----------------------------------------------------------------------


def parity_tree(n_inputs: int, name: str | None = None) -> Network:
    """A balanced XOR tree — every path is true (a 'No' control)."""
    if n_inputs < 2:
        raise NetworkError("parity_tree needs at least 2 inputs")
    net = Network(name or f"parity{n_inputs}")
    layer = []
    for i in range(n_inputs):
        net.add_input(f"x{i}")
        layer.append(f"x{i}")
    level = 0
    while len(layer) > 1:
        nxt = []
        for k in range(0, len(layer) - 1, 2):
            gname = f"t{level}_{k // 2}"
            net.add_gate(gname, "XOR", [layer[k], layer[k + 1]])
            nxt.append(gname)
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        level += 1
    net.set_outputs([layer[0]])
    return net


def cascaded_mux_chain(stages: int, name: str | None = None) -> Network:
    """A chain of muxes sharing one select with alternating polarity.

    Stage i selects the chain when s = (i even), so any path through two
    consecutive stages needs contradictory select values: every chain path
    of length ≥ 2 is false.
    """
    if stages < 2:
        raise NetworkError("cascaded_mux_chain needs at least 2 stages")
    net = Network(name or f"muxchain{stages}")
    net.add_input("s")
    net.add_input("d")
    chain = "d"
    for i in range(stages):
        net.add_input(f"e{i}")
        if i % 2 == 0:
            _add_mux(net, f"m{i}", "s", chain, f"e{i}")
        else:
            _add_mux(net, f"m{i}", "s", f"e{i}", chain)
        chain = f"m{i}"
    net.set_outputs([chain])
    return net


def random_reconvergent(
    n_inputs: int,
    n_gates: int,
    seed: int | random.Random,
    n_outputs: int | None = None,
    name: str | None = None,
) -> Network:
    """Seeded random logic with locality-biased fanin selection (which
    produces the reconvergence the paper's analysis cost depends on).

    ``seed`` is an integer or an already-seeded ``random.Random`` stream
    (so a caller can share one stream across several builders).
    """
    if n_inputs < 2 or n_gates < 1:
        raise NetworkError("need at least 2 inputs and 1 gate")
    tag = _seed_tag(seed)
    rng = _rng(seed)
    net = Network(name or f"rand{n_inputs}x{n_gates}s{tag}")
    signals = []
    for i in range(n_inputs):
        net.add_input(f"x{i}")
        signals.append(f"x{i}")

    kinds = ["AND", "OR", "NAND", "NOR", "XOR", "AND", "OR"]
    for g in range(n_gates):
        kind = rng.choice(kinds)
        k = rng.choice([2, 2, 2, 3])
        # bias toward recently created signals for reconvergence
        pool_size = min(len(signals), 12)
        pool = signals[-pool_size:] + rng.sample(
            signals, min(len(signals), 4)
        )
        distinct = list(dict.fromkeys(pool))
        k = min(k, len(distinct))
        fanins = rng.sample(distinct, k)
        gname = f"n{g}"
        net.add_gate(gname, kind, fanins)
        signals.append(gname)

    fanouts = net.fanouts()
    sinks = [s for s in signals if not fanouts[s] and s.startswith("n")]
    if n_outputs is None:
        outputs = sinks or [signals[-1]]
    else:
        extra = [s for s in reversed(signals) if s.startswith("n") and s not in sinks]
        outputs = (sinks + extra)[:n_outputs]
        if not outputs:
            outputs = [signals[-1]]
    net.set_outputs(outputs)
    return net


def clustered_logic(
    n_clusters: int,
    inputs_per_cluster: int,
    gates_per_cluster: int,
    seed: int | random.Random,
    name: str | None = None,
) -> Network:
    """Independent random clusters — many primary inputs with bounded BDD
    cost (the i1/i3-style circuits on which the exact method is feasible)."""
    tag = _seed_tag(seed)
    rng = _rng(seed)
    net = Network(
        name or f"clusters{n_clusters}x{inputs_per_cluster}s{tag}"
    )
    outputs = []
    for c in range(n_clusters):
        sub = random_reconvergent(
            inputs_per_cluster,
            gates_per_cluster,
            seed=rng.randrange(1 << 30),
            n_outputs=None,
        )
        renaming = {}
        for pi in sub.inputs:
            new = f"c{c}_{pi}"
            renaming[pi] = new
            net.add_input(new)
        for node_name in sub.topological_order():
            node = sub.nodes[node_name]
            if node.is_input:
                continue
            new = f"c{c}_{node_name}"
            renaming[node_name] = new
            net.add_node(
                new, [renaming[f] for f in node.fanins], node.cover.copy()
            )
        outputs.extend(renaming[o] for o in sub.outputs)
    net.set_outputs(outputs)
    return net


def priority_encoder(n_inputs: int, name: str | None = None) -> Network:
    """A priority encoder: out_i = req_i AND no higher-priority request.

    The inhibit chain gives each output a different depth; all paths are
    true (a control for required-time analysis with staggered topological
    requirements).
    """
    if n_inputs < 2:
        raise NetworkError("priority_encoder needs at least 2 inputs")
    net = Network(name or f"prio{n_inputs}")
    for i in range(n_inputs):
        net.add_input(f"r{i}")
    net.add_gate("grant0", "BUF", ["r0"])
    net.add_gate("inh0", "BUF", ["r0"])
    for i in range(1, n_inputs):
        net.add_gate(f"ninh{i - 1}", "NOT", [f"inh{i - 1}"])
        net.add_gate(f"grant{i}", "AND", [f"r{i}", f"ninh{i - 1}"])
        if i < n_inputs - 1:
            net.add_gate(f"inh{i}", "OR", [f"inh{i - 1}", f"r{i}"])
    net.set_outputs([f"grant{i}" for i in range(n_inputs)])
    return net


def alu_slice(name: str | None = None) -> Network:
    """A 1-bit ALU slice: op-selected AND/OR/XOR/ADD with carry in/out.

    The op-select muxes over the carry path create mild false-path
    structure between the logic ops (which ignore the carry) and the adder
    row — a compact mixed workload.
    """
    net = Network(name or "alu_slice")
    for pi in ["a", "b", "cin", "s0", "s1"]:
        net.add_input(pi)
    net.add_gate("and_r", "AND", ["a", "b"])
    net.add_gate("or_r", "OR", ["a", "b"])
    net.add_gate("xor_r", "XOR", ["a", "b"])
    _add_xor3(net, "sum_r", "a", "b", "cin")
    _add_maj3(net, "cout", "a", "b", "cin")
    # result = mux4(s1 s0): 00 and, 01 or, 10 xor, 11 sum
    _add_mux(net, "lo", "s0", "or_r", "and_r")
    _add_mux(net, "hi", "s0", "sum_r", "xor_r")
    _add_mux(net, "res", "s1", "hi", "lo")
    net.set_outputs(["res", "cout"])
    return net


def alu(bits: int, name: str | None = None) -> Network:
    """A ``bits``-wide ripple ALU built from :func:`alu_slice` replicas.

    The carry chain is only live when the op-select picks ADD; every
    carry-ripple path through a non-ADD result mux is false — a deeper,
    op-gated false-path workload than the carry-skip adders.
    """
    if bits < 1:
        raise NetworkError("alu needs at least 1 bit")
    net = Network(name or f"alu{bits}")
    for pi in ["cin", "s0", "s1"]:
        net.add_input(pi)
    for i in range(bits):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")
    carry = "cin"
    outputs = []
    for i in range(bits):
        net.add_gate(f"and{i}", "AND", [f"a{i}", f"b{i}"])
        net.add_gate(f"or{i}", "OR", [f"a{i}", f"b{i}"])
        net.add_gate(f"xor{i}", "XOR", [f"a{i}", f"b{i}"])
        _add_xor3(net, f"sum{i}", f"a{i}", f"b{i}", carry)
        _add_maj3(net, f"c{i + 1}", f"a{i}", f"b{i}", carry)
        _add_mux(net, f"lo{i}", "s0", f"or{i}", f"and{i}")
        _add_mux(net, f"hi{i}", "s0", f"sum{i}", f"xor{i}")
        _add_mux(net, f"res{i}", "s1", f"hi{i}", f"lo{i}")
        outputs.append(f"res{i}")
        carry = f"c{i + 1}"
    outputs.append(carry)
    net.set_outputs(outputs)
    return net


def mac_unit(bits: int, block_bits: int = 3, name: str | None = None) -> Network:
    """A multiply-accumulate unit: p = a x b, then p + c via a carry-skip
    final adder.

    Real array multipliers (the C6288 class) pair the carry-save array with
    a fast final adder; using a carry-skip stage makes the block-crossing
    carry paths of the accumulation false — the multiplier-shaped workload
    whose required-time analysis is non-trivial yet very slow to exhaust.
    """
    mult = array_multiplier(bits)
    net = Network(name or f"mac{bits}")
    for pi in mult.inputs:
        net.add_input(pi)
    width = 2 * bits
    for i in range(width):
        net.add_input(f"c{i}")
    net.add_input("acc_cin")
    # embed the multiplier
    for node_name in mult.topological_order():
        node = mult.nodes[node_name]
        if node.is_input:
            continue
        net.add_node(node_name, list(node.fanins), node.cover.copy())
    product = list(mult.outputs)

    # carry-skip accumulation of product + c
    outputs = []
    block_cin = "acc_cin"
    n_blocks = (width + block_bits - 1) // block_bits
    bit = 0
    for blk in range(n_blocks):
        carry = block_cin
        props = []
        for _ in range(block_bits):
            if bit >= width:
                break
            net.add_gate(f"fp{bit}", "XOR", [product[bit], f"c{bit}"])
            net.add_gate(f"fg{bit}", "AND", [product[bit], f"c{bit}"])
            props.append(f"fp{bit}")
            net.add_gate(f"fs{bit}", "XOR", [f"fp{bit}", carry])
            outputs.append(f"fs{bit}")
            _add_mux(net, f"fc{bit + 1}", f"fp{bit}", carry, f"fg{bit}")
            carry = f"fc{bit + 1}"
            bit += 1
        if not props:
            break
        net.add_gate(f"fP{blk}", "AND", props)
        _add_mux(net, f"fskip{blk}", f"fP{blk}", block_cin, carry)
        block_cin = f"fskip{blk}"
    outputs.append(block_cin)
    net.set_outputs(outputs)
    return net
