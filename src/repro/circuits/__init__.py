"""Benchmark circuits.

The original MCNC i1–i10 and ISCAS-85 C432–C7552 netlists are not
redistributable and this environment has no network access, so the
experimental suites are rebuilt from two ingredients (documented in
DESIGN.md §4):

* :mod:`~repro.circuits.examples` — exact encodings of the paper's worked
  examples (Figures 4 and 6) and of public-domain ISCAS-85 C17;
* :mod:`~repro.circuits.generators` — deterministic, seeded generators of
  the circuit families whose false-path structure drives the paper's
  results: carry-skip and carry-select adders (the canonical false-path
  circuits), cascaded-mux chains, array multipliers, parity/XOR trees
  (false-path-free controls), ripple adders, and random reconvergent
  logic;
* :mod:`~repro.circuits.mcnc_like` / :mod:`~repro.circuits.iscas_like` —
  the Table 1 / Table 2 substitute suites assembled from those generators
  with PI/PO scales mirroring the originals.
"""

from repro.circuits.examples import (
    c17,
    carry_skip_block,
    figure4,
    figure6,
    figure6_extended,
)
from repro.circuits.generators import (
    carry_select_adder,
    carry_skip_adder,
    cascaded_mux_chain,
    clustered_logic,
    parity_tree,
    random_reconvergent,
    ripple_adder,
    array_multiplier,
)
from repro.circuits.mcnc_like import mcnc_suite
from repro.circuits.iscas_like import iscas_suite

__all__ = [
    "figure4",
    "figure6",
    "figure6_extended",
    "c17",
    "carry_skip_block",
    "carry_skip_adder",
    "carry_select_adder",
    "cascaded_mux_chain",
    "clustered_logic",
    "parity_tree",
    "random_reconvergent",
    "ripple_adder",
    "array_multiplier",
    "mcnc_suite",
    "iscas_suite",
]

from repro.circuits.generators import alu, alu_slice, mac_unit, priority_encoder  # noqa: E402

__all__ += ["alu", "alu_slice", "mac_unit", "priority_encoder"]
