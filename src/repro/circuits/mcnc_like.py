"""The Table 1 substitute suite: m1 … m10, standing in for MCNC i1 … i10.

The original i-circuits are not redistributable; each mᵢ is generated
deterministically to mirror the corresponding iᵢ's primary-input /
primary-output scale (Table 1 of the paper) and to exercise the behavior
the paper reports for it:

=======  =====  =====  =============================================
circuit  #PI    #PO    structure / expected behaviour
=======  =====  =====  =============================================
m1        25     16    shallow clusters + a Figure-4 gadget: exact
                       completes and is non-trivial; approx-2 finds
                       nothing (value-dependent looseness only)
m2       201      1    wide reconvergent cone: exact memory-outs,
                       approx-1 completes
m3       132    ~60    many small clusters: exact completes slowly
m4       192      6    clusters, deeper: exact infeasible
m5       133     66    wide shallow random logic
m6       138     67    wide shallow random logic
m7       199     67    wide shallow random logic
m8        33    ~37    carry-skip rich: both approximations non-trivial
m9        88     44    Figure-4 gadgets: approx-1 non-trivial,
                       approx-2 trivial (value-independent search)
m10      257    224    large mixed: approx-1 memory-outs, approx-2
                       long-running but productive
=======  =====  =====  =============================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.circuits.examples import figure4
from repro.circuits.generators import (
    carry_skip_adder,
    cascaded_mux_chain,
    clustered_logic,
    random_reconvergent,
)
from repro.network.network import Network


@dataclass
class CircuitSpec:
    """One suite entry with its paper-analogue metadata."""

    name: str
    paper_name: str
    network: Network
    notes: str = ""
    #: suggested per-method resource budgets for the benchmark harness
    budgets: dict[str, object] = field(default_factory=dict)


def merge_networks(parts: list[Network], name: str) -> Network:
    """Disjoint union of networks with namespaced signals."""
    net = Network(name)
    outputs: list[str] = []
    for idx, part in enumerate(parts):
        prefix = f"u{idx}_"
        renaming = {}
        for pi in part.inputs:
            renaming[pi] = prefix + pi
            net.add_input(prefix + pi)
        for node_name in part.topological_order():
            node = part.nodes[node_name]
            if node.is_input:
                continue
            renaming[node_name] = prefix + node_name
            net.add_node(
                prefix + node_name,
                [renaming[f] for f in node.fanins],
                node.cover.copy(),
            )
        outputs.extend(renaming[o] for o in part.outputs)
    net.set_outputs(outputs)
    return net


def _fig4_gadgets(count: int) -> list[Network]:
    return [figure4() for _ in range(count)]


def _wide_cone(n_inputs: int, seed: int, name: str) -> Network:
    """A single-output reconvergent cone over many inputs, built from
    cascaded layers that reuse signals at different depths (the Figure-4
    time-multiplicity pattern, scaled up)."""
    rng = random.Random(seed)
    net = Network(name)
    signals = []
    for i in range(n_inputs):
        net.add_input(f"x{i}")
        signals.append(f"x{i}")
    layer = signals
    level = 0
    while len(layer) > 1:
        nxt = []
        for k in range(0, len(layer) - 1, 2):
            kind = rng.choice(["AND", "OR", "AND", "OR", "XOR"])
            gname = f"L{level}_{k // 2}"
            fanins = [layer[k], layer[k + 1]]
            # every few gates, re-inject an earlier signal to create the
            # multi-time reconvergence the paper's analysis keys on
            if k % 6 == 0 and level > 0:
                fanins.append(rng.choice(signals))
            net.add_gate(gname, kind, fanins)
            nxt.append(gname)
            signals.append(gname)
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        level += 1
    net.set_outputs([layer[0]])
    return net


def mcnc_suite() -> list[CircuitSpec]:
    """Build all ten Table-1 substitute circuits (deterministic)."""
    specs: list[CircuitSpec] = []

    m1 = merge_networks(
        [clustered_logic(4, 5, 7, seed=11)] + _fig4_gadgets(2),
        "m1",
    )
    specs.append(
        CircuitSpec(
            "m1",
            "i1",
            m1,
            notes="shallow clusters + Figure-4 gadgets (exact feasible)",
        )
    )

    specs.append(
        CircuitSpec(
            "m2",
            "i2",
            _wide_cone(201, seed=22, name="m2"),
            notes="wide single-output cone (exact memory-outs)",
            budgets={"exact_max_nodes": 200_000},
        )
    )

    specs.append(
        CircuitSpec(
            "m3",
            "i3",
            clustered_logic(22, 6, 10, seed=33, name="m3"),
            notes="independent clusters (exact slow but feasible)",
            budgets={"exact_max_nodes": 400_000},
        )
    )

    specs.append(
        CircuitSpec(
            "m4",
            "i4",
            clustered_logic(6, 32, 40, seed=44, name="m4"),
            notes="deeper clusters (exact not attempted, as in the paper)",
        )
    )

    for idx, (pis, pos, seed) in enumerate(
        [(133, 66, 55), (138, 67, 66), (199, 67, 77)], start=5
    ):
        clusters = pos
        per = max(2, pis // clusters)
        specs.append(
            CircuitSpec(
                f"m{idx}",
                f"i{idx}",
                clustered_logic(clusters, per, 4, seed=seed, name=f"m{idx}"),
                notes="wide shallow random logic",
            )
        )

    m8 = merge_networks(
        [carry_skip_adder(2, 3), random_reconvergent(20, 40, seed=88, n_outputs=30)],
        "m8",
    )
    specs.append(
        CircuitSpec(
            "m8",
            "i8",
            m8,
            notes="carry-skip rich: both approximations non-trivial",
        )
    )

    m9 = merge_networks(_fig4_gadgets(44), "m9")  # 88 PI, like i9
    specs.append(
        CircuitSpec(
            "m9",
            "i9",
            m9,
            notes="Figure-4 gadgets: approx-1 non-trivial, approx-2 trivial",
        )
    )

    m10 = merge_networks(
        [
            carry_skip_adder(6, 3),
            cascaded_mux_chain(8),
            clustered_logic(30, 6, 6, seed=1010),
        ],
        "m10",
    )
    specs.append(
        CircuitSpec(
            "m10",
            "i10",
            m10,
            notes="large mixed: approx-1 memory-outs, approx-2 long-running",
            budgets={"approx1_max_nodes": 150_000},
        )
    )

    return specs
