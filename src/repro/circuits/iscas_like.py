"""The Table 2 substitute suite: s432 … s7552, standing in for ISCAS-85.

Each entry mirrors the corresponding C-circuit's role in the paper's
Table 2 (approximate algorithm 2 only):

=======  ===================================  ==========================
circuit  structure                            expected Table-2 behaviour
=======  ===================================  ==========================
s432     mux chains + reconvergent random     Yes (non-trivial r)
s499     parity tree                          No (all paths true)
s880     ripple adder + random tree           No
s1355    parity tree (xor-expanded flavour)   No
s1908    carry-select adder + random          Yes
s2670    wide carry-skip adder                Yes
s3540    multiplier + carry-skip mix          Yes, r_max very slow
s5315    carry-skip + clusters                Yes
s6288    array multiplier                     Yes, r_max very slow
s7552    large mixed                          Yes
=======  ===================================  ==========================

Sizes are scaled so a pure-Python analysis completes in benchmark time;
the *relative* size ordering of the original suite is preserved, which is
what the reproduced trends depend on.
"""

from __future__ import annotations

from repro.circuits.generators import (
    array_multiplier,
    carry_select_adder,
    carry_skip_adder,
    cascaded_mux_chain,
    clustered_logic,
    parity_tree,
    random_reconvergent,
    ripple_adder,
)
from repro.circuits.mcnc_like import CircuitSpec, merge_networks


def iscas_suite() -> list[CircuitSpec]:
    """Build all ten Table-2 substitute circuits (deterministic)."""
    specs: list[CircuitSpec] = []

    s432 = merge_networks(
        [cascaded_mux_chain(6), random_reconvergent(24, 60, seed=432)],
        "s432",
    )
    specs.append(CircuitSpec("s432", "C432", s432, notes="mux chains: Yes"))

    specs.append(
        CircuitSpec(
            "s499",
            "C499",
            parity_tree(41, name="s499"),
            notes="parity: all paths true, No",
        )
    )

    s880 = merge_networks(
        [ripple_adder(12), parity_tree(16)],
        "s880",
    )
    specs.append(CircuitSpec("s880", "C880", s880, notes="ripple+parity: No"))

    specs.append(
        CircuitSpec(
            "s1355",
            "C1355",
            parity_tree(41, name="s1355"),
            notes="expanded parity: No",
        )
    )

    s1908 = merge_networks(
        [carry_select_adder(3, 2), random_reconvergent(16, 40, seed=1908)],
        "s1908",
    )
    specs.append(CircuitSpec("s1908", "C1908", s1908, notes="carry-select: Yes"))

    specs.append(
        CircuitSpec(
            "s2670",
            "C2670",
            carry_skip_adder(6, 3, name="s2670"),
            notes="wide carry-skip: Yes",
        )
    )

    s3540 = merge_networks(
        [array_multiplier(4), carry_skip_adder(4, 3)],
        "s3540",
    )
    specs.append(
        CircuitSpec(
            "s3540",
            "C3540",
            s3540,
            notes="multiplier+skip mix: Yes, slow r_max",
            budgets={"approx2_time_budget": 60.0},
        )
    )

    s5315 = merge_networks(
        [carry_skip_adder(5, 3), clustered_logic(12, 8, 8, seed=5315)],
        "s5315",
    )
    specs.append(CircuitSpec("s5315", "C5315", s5315, notes="skip+clusters: Yes"))

    from repro.circuits.generators import mac_unit

    specs.append(
        CircuitSpec(
            "s6288",
            "C6288",
            mac_unit(4, name="s6288"),
            notes="multiply-accumulate (array + skip final adder): Yes, slow r_max",
            budgets={"approx2_time_budget": 60.0},
        )
    )

    s7552 = merge_networks(
        [
            carry_skip_adder(6, 3),
            carry_select_adder(4, 2),
            clustered_logic(16, 8, 8, seed=7552),
        ],
        "s7552",
    )
    specs.append(CircuitSpec("s7552", "C7552", s7552, notes="large mixed: Yes"))

    return specs
