"""Two-level (sum-of-products) logic manipulation.

This package provides the cube/cover algebra that the rest of the library is
built on:

* :class:`~repro.sop.cube.Cube` — a product term over a fixed-width local
  variable space, stored as a pair of bit masks.
* :class:`~repro.sop.cover.Cover` — a list of cubes with the classical
  espresso-style operations (cofactor, tautology, complement, containment).
* :mod:`~repro.sop.primes` — prime-implicant generation via iterated
  consensus (Blake canonical form) and Quine–McCluskey, used by the
  χ-function recursion of McGeer et al. which is defined over the primes of
  each node function and of its complement.
"""

from repro.sop.cube import Cube
from repro.sop.cover import Cover
from repro.sop.primes import blake_primes, primes_of_function, quine_mccluskey_primes
from repro.sop.espresso import expand, irredundant, minimize, minimize_network

__all__ = [
    "Cube",
    "Cover",
    "blake_primes",
    "primes_of_function",
    "quine_mccluskey_primes",
    "expand",
    "irredundant",
    "minimize",
    "minimize_network",
]
