"""Cubes (product terms) over a fixed-width local variable space.

A cube over ``width`` variables is stored as two bit masks:

* ``pos`` — bit *i* set means the positive literal ``x_i`` appears,
* ``neg`` — bit *i* set means the negative literal ``~x_i`` appears.

A variable whose bit is set in neither mask is a don't-care in the cube.  A
variable whose bit is set in *both* masks makes the cube empty (the constant
zero function); such cubes are never constructed by the public API.

Cubes are immutable and hashable so they can live in sets and dict keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Cube:
    """An immutable product term over ``width`` local variables."""

    width: int
    pos: int
    neg: int

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        if self.pos & ~mask or self.neg & ~mask:
            raise ValueError(f"literal mask out of range for width {self.width}")
        if self.pos & self.neg:
            raise ValueError("cube has a variable in both phases (empty cube)")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def tautology(cls, width: int) -> "Cube":
        """The universal cube (no literals): the constant-one function."""
        return cls(width, 0, 0)

    @classmethod
    def from_pattern(cls, pattern: str) -> "Cube":
        """Build a cube from a BLIF-style pattern string such as ``"01-"``.

        Character *i* of the pattern constrains variable *i*:
        ``'1'`` positive literal, ``'0'`` negative literal, ``'-'`` don't-care.
        """
        pos = neg = 0
        for i, ch in enumerate(pattern):
            if ch == "1":
                pos |= 1 << i
            elif ch == "0":
                neg |= 1 << i
            elif ch != "-":
                raise ValueError(f"bad pattern character {ch!r} in {pattern!r}")
        return cls(len(pattern), pos, neg)

    @classmethod
    def from_literals(cls, width: int, literals: dict[int, int]) -> "Cube":
        """Build a cube from ``{var_index: phase}`` with phase 0 or 1."""
        pos = neg = 0
        for var, phase in literals.items():
            if not 0 <= var < width:
                raise ValueError(f"variable {var} out of range for width {width}")
            if phase == 1:
                pos |= 1 << var
            elif phase == 0:
                neg |= 1 << var
            else:
                raise ValueError(f"phase must be 0 or 1, got {phase}")
        return cls(width, pos, neg)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def literal(self, var: int) -> int | None:
        """Phase of ``var`` in this cube: 1, 0, or None for don't-care."""
        bit = 1 << var
        if self.pos & bit:
            return 1
        if self.neg & bit:
            return 0
        return None

    @property
    def num_literals(self) -> int:
        return bin(self.pos | self.neg).count("1")

    def variables(self) -> Iterator[int]:
        """Indices of the variables that appear (in either phase)."""
        both = self.pos | self.neg
        i = 0
        while both:
            if both & 1:
                yield i
            both >>= 1
            i += 1

    def is_tautology(self) -> bool:
        return self.pos == 0 and self.neg == 0

    def evaluate(self, assignment: int) -> bool:
        """Evaluate under a full assignment given as a bit vector.

        Bit *i* of ``assignment`` is the value of variable *i*.
        """
        if self.pos & ~assignment:
            return False
        if self.neg & assignment:
            return False
        return True

    def contains(self, other: "Cube") -> bool:
        """True iff this cube covers ``other`` (``other ⊆ self`` as sets)."""
        return (self.pos & ~other.pos) == 0 and (self.neg & ~other.neg) == 0

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one minterm."""
        return (self.pos & other.neg) == 0 and (self.neg & other.pos) == 0

    def intersection(self, other: "Cube") -> "Cube | None":
        """The cube of common minterms, or None if disjoint."""
        if not self.intersects(other):
            return None
        return Cube(self.width, self.pos | other.pos, self.neg | other.neg)

    def distance(self, other: "Cube") -> int:
        """Number of variables in which the cubes have opposite literals."""
        return bin((self.pos & other.neg) | (self.neg & other.pos)).count("1")

    def consensus(self, other: "Cube") -> "Cube | None":
        """Consensus (resolvent) of two cubes, defined when distance == 1."""
        clash = (self.pos & other.neg) | (self.neg & other.pos)
        if bin(clash).count("1") != 1:
            return None
        pos = (self.pos | other.pos) & ~clash
        neg = (self.neg | other.neg) & ~clash
        if pos & neg:
            return None
        return Cube(self.width, pos, neg)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def cofactor(self, var: int, phase: int) -> "Cube | None":
        """Shannon cofactor with respect to ``var = phase``.

        Returns None when the cube vanishes under the assignment.
        """
        bit = 1 << var
        if phase == 1:
            if self.neg & bit:
                return None
            return Cube(self.width, self.pos & ~bit, self.neg)
        if self.pos & bit:
            return None
        return Cube(self.width, self.pos, self.neg & ~bit)

    def drop(self, var: int) -> "Cube":
        """Remove any literal of ``var`` (cube expansion)."""
        bit = 1 << var
        return Cube(self.width, self.pos & ~bit, self.neg & ~bit)

    def minterms(self) -> Iterator[int]:
        """Enumerate the minterms (as assignment bit vectors) of the cube."""
        free = [i for i in range(self.width) if not ((self.pos | self.neg) >> i) & 1]
        base = self.pos
        for k in range(1 << len(free)):
            value = base
            for j, var in enumerate(free):
                if (k >> j) & 1:
                    value |= 1 << var
            yield value

    def to_pattern(self) -> str:
        """Render as a BLIF-style pattern string."""
        chars = []
        for i in range(self.width):
            bit = 1 << i
            if self.pos & bit:
                chars.append("1")
            elif self.neg & bit:
                chars.append("0")
            else:
                chars.append("-")
        return "".join(chars)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_pattern()
