"""A compact two-level minimizer (espresso-style EXPAND / IRREDUNDANT).

Not part of the paper's algorithms, but the natural companion of a
required-time library: once the analysis has produced a looser timing
budget, the resynthesis step the paper motivates needs a logic minimizer.
This implementation follows the classical loop in simplified form:

* **EXPAND** — grow each cube literal-by-literal while it stays inside the
  on-set (checked with the cofactor-tautology containment test), then drop
  cubes covered by the expanded one;
* **IRREDUNDANT** — greedily remove cubes covered by the union of the
  others;
* iterate until a pass makes no progress.

The result is a prime and irredundant cover of the same function (both
properties are asserted by the test suite against the Blake canonical
form and a brute-force oracle).
"""

from __future__ import annotations

from repro.sop.cover import Cover
from repro.sop.cube import Cube


def expand(cover: Cover) -> Cover:
    """Make every cube prime by greedy literal removal."""
    current = list(cover.single_cube_containment().cubes)
    expanded: list[Cube] = []
    for i, cube in enumerate(current):
        grown = cube
        changed = True
        while changed:
            changed = False
            for var in list(grown.variables()):
                candidate = grown.drop(var)
                if cover.covers_cube(candidate):
                    grown = candidate
                    changed = True
        expanded.append(grown)
    return Cover(cover.width, expanded).single_cube_containment()


def irredundant(cover: Cover) -> Cover:
    """Remove cubes covered by the union of the remaining cubes."""
    cubes = list(cover.cubes)
    # try to discard the largest cubes last (they are likelier essential)
    order = sorted(range(len(cubes)), key=lambda i: -cubes[i].num_literals)
    kept = set(range(len(cubes)))
    for i in order:
        if len(kept) == 1:
            break
        rest = Cover(cover.width, [cubes[j] for j in kept if j != i])
        if rest.covers_cube(cubes[i]):
            kept.discard(i)
    return Cover(cover.width, [cubes[i] for i in sorted(kept)])


def minimize(cover: Cover, max_passes: int = 8) -> Cover:
    """The EXPAND / IRREDUNDANT loop, to a fixpoint."""
    if cover.is_empty():
        return Cover.zero(cover.width)
    current = cover
    for _ in range(max_passes):
        before = {c.to_pattern() for c in current.cubes}
        current = irredundant(expand(current))
        after = {c.to_pattern() for c in current.cubes}
        if after == before:
            break
    return current


def minimize_network(network, max_passes: int = 8) -> int:
    """Minimize every node cover of a network in place.

    Returns the total number of cubes removed.  Functionality is preserved
    node-by-node (and therefore globally); prime caches are invalidated.
    """
    removed = 0
    for node in network.nodes.values():
        if node.is_input:
            continue
        before = len(node.cover)
        node.cover = minimize(node.cover, max_passes)
        node._primes_cache = None
        removed += before - len(node.cover)
    return removed
