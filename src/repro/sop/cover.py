"""Covers (sums of cubes) with the classical espresso-style operations.

A :class:`Cover` represents a completely specified single-output Boolean
function over a fixed local variable space as a list of cubes.  The
operations implemented here are the ones the χ-function machinery and the
BLIF front end need:

* evaluation, cofactoring, single-cube containment,
* recursive tautology checking with unate reduction,
* recursive complementation (De Morgan on the Shannon expansion),
* irredundancy by single-cube containment.

Covers are deliberately small objects: node functions in the networks we
analyze have a handful of fanins, so the exponential corner cases of these
recursions never bite in practice.  The algorithms are nevertheless the
textbook-correct general ones.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.sop.cube import Cube


class Cover:
    """A sum of cubes over ``width`` local variables."""

    __slots__ = ("width", "cubes")

    def __init__(self, width: int, cubes: Iterable[Cube] = ()):
        self.width = width
        self.cubes: list[Cube] = []
        for cube in cubes:
            if cube.width != width:
                raise ValueError(
                    f"cube width {cube.width} does not match cover width {width}"
                )
            self.cubes.append(cube)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, width: int) -> "Cover":
        return cls(width, [])

    @classmethod
    def one(cls, width: int) -> "Cover":
        return cls(width, [Cube.tautology(width)])

    @classmethod
    def from_patterns(cls, patterns: Sequence[str]) -> "Cover":
        """Build from BLIF-style pattern strings (all the same length)."""
        if not patterns:
            raise ValueError("from_patterns needs at least one pattern; use zero()")
        width = len(patterns[0])
        return cls(width, [Cube.from_pattern(p) for p in patterns])

    @classmethod
    def from_minterms(cls, width: int, minterms: Iterable[int]) -> "Cover":
        cubes = []
        for m in minterms:
            pos = m & ((1 << width) - 1)
            neg = ~m & ((1 << width) - 1)
            cubes.append(Cube(width, pos, neg))
        return cls(width, cubes)

    def copy(self) -> "Cover":
        return Cover(self.width, list(self.cubes))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def is_empty(self) -> bool:
        return not self.cubes

    def evaluate(self, assignment: int) -> bool:
        return any(cube.evaluate(assignment) for cube in self.cubes)

    def minterms(self) -> set[int]:
        """The on-set as a set of assignment bit vectors (exponential!)."""
        result: set[int] = set()
        for cube in self.cubes:
            result.update(cube.minterms())
        return result

    def support(self) -> set[int]:
        """Variables appearing in at least one cube."""
        vars_: set[int] = set()
        for cube in self.cubes:
            vars_.update(cube.variables())
        return vars_

    # ------------------------------------------------------------------
    # cofactor / containment
    # ------------------------------------------------------------------
    def cofactor(self, var: int, phase: int) -> "Cover":
        cubes = []
        for cube in self.cubes:
            cf = cube.cofactor(var, phase)
            if cf is not None:
                cubes.append(cf)
        return Cover(self.width, cubes)

    def cube_cofactor(self, cube: Cube) -> "Cover":
        """Cofactor with respect to every literal of ``cube``."""
        result = self
        for var in cube.variables():
            result = result.cofactor(var, cube.literal(var))
        return result

    def single_cube_containment(self) -> "Cover":
        """Remove cubes covered by another single cube of the cover."""
        kept: list[Cube] = []
        # Sort by decreasing literal count so large cubes are kept first.
        for cube in sorted(self.cubes, key=lambda c: c.num_literals):
            if not any(other.contains(cube) for other in kept):
                kept.append(cube)
        return Cover(self.width, kept)

    # ------------------------------------------------------------------
    # tautology
    # ------------------------------------------------------------------
    def is_tautology(self) -> bool:
        """Recursive unate-reduction tautology check."""
        return _tautology(self)

    # ------------------------------------------------------------------
    # complement
    # ------------------------------------------------------------------
    def complement(self) -> "Cover":
        """Complement via recursive Shannon expansion.

        The recursion bottoms out on covers that are empty, tautological, or
        consist of a single cube (whose complement is the De Morgan expansion
        into one cube per literal).
        """
        return _complement(self).single_cube_containment()

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def union(self, other: "Cover") -> "Cover":
        if other.width != self.width:
            raise ValueError("cover widths differ")
        return Cover(self.width, self.cubes + other.cubes)

    def intersection(self, other: "Cover") -> "Cover":
        if other.width != self.width:
            raise ValueError("cover widths differ")
        cubes = []
        for a in self.cubes:
            for b in other.cubes:
                c = a.intersection(b)
                if c is not None:
                    cubes.append(c)
        return Cover(self.width, cubes).single_cube_containment()

    def covers_cube(self, cube: Cube) -> bool:
        """True iff ``cube ⊆ this cover`` (cofactor-tautology test)."""
        return self.cube_cofactor(cube).is_tautology()

    def equivalent(self, other: "Cover") -> bool:
        """Semantic equality of the two covers."""
        return all(other.covers_cube(c) for c in self.cubes) and all(
            self.covers_cube(c) for c in other.cubes
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if not self.cubes:
            return "<zero>"
        return " + ".join(c.to_pattern() for c in self.cubes)


# ----------------------------------------------------------------------
# recursive helpers
# ----------------------------------------------------------------------

def _select_binate_var(cover: Cover) -> int | None:
    """Most-binate variable, or None if the cover is unate in every variable."""
    best_var = None
    best_score = -1
    counts: dict[int, list[int]] = {}
    for cube in cover.cubes:
        for var in cube.variables():
            entry = counts.setdefault(var, [0, 0])
            entry[cube.literal(var)] += 1
    for var, (zeros, ones) in counts.items():
        if zeros and ones:
            score = min(zeros, ones)
            if score > best_score:
                best_score = score
                best_var = var
    return best_var


def _most_frequent_var(cover: Cover) -> int | None:
    counts: dict[int, int] = {}
    for cube in cover.cubes:
        for var in cube.variables():
            counts[var] = counts.get(var, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)


def _tautology(cover: Cover) -> bool:
    if any(cube.is_tautology() for cube in cover.cubes):
        return True
    if not cover.cubes:
        return False
    # Unate reduction: a cover unate in some variable is a tautology iff the
    # sub-cover of cubes independent of that variable is a tautology.
    var = _select_binate_var(cover)
    if var is None:
        # Fully unate cover: tautology iff it contains the universal cube,
        # already checked above... unless a variable appears in one phase
        # only, in which case cofactoring against that phase removes it.
        var = _most_frequent_var(cover)
        if var is None:
            return False  # non-empty cover of non-tautology impossible here
        # All cubes have the same phase for var (or don't care).  The
        # cofactor against the *opposite* phase drops every cube mentioning
        # var, which is the binding constraint.
        phases = {c.literal(var) for c in cover.cubes} - {None}
        phase = phases.pop()
        reduced = cover.cofactor(var, 1 - phase)
        return _tautology(reduced)
    return _tautology(cover.cofactor(var, 0)) and _tautology(cover.cofactor(var, 1))


def _complement(cover: Cover) -> Cover:
    width = cover.width
    if not cover.cubes:
        return Cover.one(width)
    if any(cube.is_tautology() for cube in cover.cubes):
        return Cover.zero(width)
    if len(cover.cubes) == 1:
        return _complement_cube(cover.cubes[0])
    var = _select_binate_var(cover)
    if var is None:
        var = _most_frequent_var(cover)
    assert var is not None
    neg_part = _complement(cover.cofactor(var, 0))
    pos_part = _complement(cover.cofactor(var, 1))
    cubes: list[Cube] = []
    for cube in neg_part.cubes:
        cf = cube.cofactor(var, 0)
        if cf is not None:
            cubes.append(Cube(width, cf.pos, cf.neg | (1 << var)))
    for cube in pos_part.cubes:
        cf = cube.cofactor(var, 1)
        if cf is not None:
            cubes.append(Cube(width, cf.pos | (1 << var), cf.neg))
    return Cover(width, cubes)


def _complement_cube(cube: Cube) -> Cover:
    """De Morgan: the complement of a cube is one cube per literal."""
    cubes = []
    for var in cube.variables():
        bit = 1 << var
        if cube.pos & bit:
            cubes.append(Cube(cube.width, 0, bit))
        else:
            cubes.append(Cube(cube.width, bit, 0))
    return Cover(cube.width, cubes)
