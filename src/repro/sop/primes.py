"""Prime implicant generation.

Two independent algorithms are provided:

* :func:`blake_primes` — iterated consensus with absorption.  Starting from
  any cover of *f*, repeatedly adding consensus cubes and removing absorbed
  cubes converges to the Blake canonical form, which is exactly the set of
  all prime implicants of *f* (Brown, *Boolean Reasoning*, 1990 — reference
  [3] of the paper).
* :func:`quine_mccluskey_primes` — classical tabular merging from the
  minterm list, practical for small variable counts and used in the test
  suite to cross-check the consensus implementation.

The χ-function recursion of McGeer et al. (Section 2.3 of the paper) is
defined over the primes of each node function and of its complement, so
these routines sit on the critical path of every analysis in the library.
"""

from __future__ import annotations

from typing import Iterable

from repro.sop.cover import Cover
from repro.sop.cube import Cube


def blake_primes(cover: Cover) -> Cover:
    """All prime implicants of the function represented by ``cover``.

    Implements iterated consensus with absorption.  The result is the Blake
    canonical form: a cover consisting of exactly the primes of *f*.
    """
    cubes: list[Cube] = []
    # Seed with the absorbed input cover.
    for cube in cover.single_cube_containment():
        cubes.append(cube)

    changed = True
    while changed:
        changed = False
        generated: list[Cube] = []
        n = len(cubes)
        for i in range(n):
            for j in range(i + 1, n):
                cons = cubes[i].consensus(cubes[j])
                if cons is None:
                    continue
                if any(c.contains(cons) for c in cubes):
                    continue
                if any(c.contains(cons) for c in generated):
                    continue
                generated.append(cons)
        if generated:
            changed = True
            cubes.extend(generated)
            # absorption pass
            absorbed = Cover(cover.width, cubes).single_cube_containment()
            cubes = list(absorbed.cubes)
    return Cover(cover.width, cubes)


def quine_mccluskey_primes(width: int, minterms: Iterable[int]) -> Cover:
    """Prime implicants via the Quine–McCluskey tabular method.

    ``minterms`` are assignment bit vectors over ``width`` variables.
    Intended for small ``width`` (the test oracle); :func:`blake_primes` is
    the production routine.
    """
    # An implicant is (cared_mask, value): variables outside cared_mask are
    # don't-cares; value gives the cared bits.
    current: set[tuple[int, int]] = set()
    full = (1 << width) - 1
    for m in set(minterms):
        current.add((full, m & full))
    primes: set[tuple[int, int]] = set()
    while current:
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        current_list = sorted(current)
        for i, (care_a, val_a) in enumerate(current_list):
            for care_b, val_b in current_list[i + 1:]:
                if care_a != care_b:
                    continue
                diff = val_a ^ val_b
                if diff and (diff & (diff - 1)) == 0:  # single-bit difference
                    merged.add((care_a & ~diff, val_a & ~diff))
                    used.add((care_a, val_a))
                    used.add((care_b, val_b))
        for imp in current:
            if imp not in used:
                primes.add(imp)
        current = merged
    cubes = []
    for care, val in primes:
        pos = val & care
        neg = ~val & care & full
        cubes.append(Cube(width, pos, neg))
    return Cover(width, cubes)


def primes_of_function(cover: Cover) -> tuple[Cover, Cover]:
    """Primes of *f* and of its complement, from a cover of *f*.

    Returns ``(onset_primes, offset_primes)`` — the two ingredient covers of
    the χ recursion (the paper's :math:`P_n^1` and :math:`P_n^0`).
    """
    onset_primes = blake_primes(cover)
    offset_primes = blake_primes(cover.complement())
    return onset_primes, offset_primes
