"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

* ``stats``    — parse a netlist and print its size/depth profile.
* ``delay``    — topological vs exact (false-path aware) output arrival
  times; lists the outputs whose longest paths are false.
* ``required`` — required times at the primary inputs by any of the
  paper's methods (``topological`` / ``exact`` / ``approx1`` /
  ``approx2``).
* ``slack``    — true vs topological slack of internal nodes (Section 3's
  subproblem).
* ``paths``    — enumerate the longest paths and classify each one.
* ``report``   — the consolidated timing datasheet (delay + false paths +
  required-time analysis in one page).
* ``fuzz``     — differential fuzzing: generate random netlists, run all
  four required-time engines against each other and the ternary oracle,
  shrink any failure and save it to a regression corpus.
* ``eco``      — apply a JSON edit trace to a netlist through an
  incremental :class:`~repro.eco.NetworkSession`: per edit, only the
  dirty output cones re-analyze, and ``--verify`` checks the result
  against a full recompute (docs/ECO.md).
* ``trace``    — pretty-print / summarize a trace file produced by
  ``required --trace`` (or convert it to Chrome ``about:tracing`` JSON).
* ``cache``    — inspect and maintain the persistent result cache
  (``stats`` / ``clear`` / ``gc``); see docs/CACHING.md.
* ``serve``    — run the analysis daemon: warm circuit registry,
  request coalescing, bounded admission with backpressure, ECO session
  endpoints, and ``/metrics`` + ``/trace`` surfaces (docs/SERVING.md).

Netlists are read from BLIF (``.blif``) or ISCAS bench (``.bench``)
files, chosen by extension.  All analyses default to the paper's setup:
unit delays, arrival 0 at every input.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.required_time import analyze_required_times, format_time
from repro.core.trueslack import true_slacks
from repro.errors import ReproError
from repro.network import parse_bench_file, parse_blif_file
from repro.network.network import Network
from repro.timing import FunctionalTiming, TopologicalTiming
from repro.timing.paths import classify_path, longest_paths


def load_network(path: str) -> Network:
    if path.endswith(".bench"):
        return parse_bench_file(path)
    return parse_blif_file(path)


def cmd_stats(args: argparse.Namespace) -> int:
    net = load_network(args.netlist)
    print(f"name:    {net.name}")
    print(f"inputs:  {net.num_inputs}")
    print(f"outputs: {net.num_outputs}")
    print(f"gates:   {net.num_gates}")
    print(f"depth:   {net.depth()}")
    return 0


def cmd_delay(args: argparse.Namespace) -> int:
    net = load_network(args.netlist)
    if args.output is not None and args.output not in net.outputs:
        from repro.errors import NetworkError

        raise NetworkError(
            f"unknown output {args.output!r} "
            f"(outputs: {', '.join(net.outputs)})"
        )
    outputs = [args.output] if args.output is not None else net.outputs
    ft = FunctionalTiming(net, engine=args.engine)
    topo = ft.topological_arrivals()
    print(f"{'output':<20} {'topological':>12} {'exact':>12}  note")
    false_count = 0
    for out in outputs:
        true = ft.true_arrival(out)
        note = ""
        if true < topo[out]:
            note = "longest path false"
            false_count += 1
        print(f"{out:<20} {topo[out]:>12g} {true:>12g}  {note}")
    print(
        f"\n{false_count} of {len(outputs)} outputs have a false longest path"
    )
    return 0


def _validate_backend(backend: str | None) -> int:
    """Resolve a ``--backend`` value, printing the canonical unknown-name
    error (the same :class:`~repro.errors.BddError` message every entry
    point raises).  Returns 2 on failure, 0 when valid/absent."""
    if backend is None:
        return 0
    from repro.bdd.api import resolve_backend
    from repro.errors import BddError

    try:
        resolve_backend(backend)
    except BddError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_required(args: argparse.Namespace) -> int:
    if args.budget is not None and args.method != "approx2":
        print(
            f"error: --budget only applies to --method approx2 "
            f"(got --method {args.method})",
            file=sys.stderr,
        )
        return 2
    if args.max_nodes is not None and args.method not in ("exact", "approx1"):
        print(
            f"error: --max-nodes only applies to --method exact/approx1 "
            f"(got --method {args.method})",
            file=sys.stderr,
        )
        return 2
    if args.reorder and args.method not in ("exact", "approx1"):
        print(
            f"error: --reorder only applies to --method exact/approx1 "
            f"(got --method {args.method})",
            file=sys.stderr,
        )
        return 2
    if args.backend is not None and args.method not in ("exact", "approx1"):
        print(
            f"error: --backend only applies to --method exact/approx1 "
            f"(got --method {args.method})",
            file=sys.stderr,
        )
        return 2
    if _validate_backend(args.backend):
        return 2
    if args.jobs < 0:
        print(f"error: --jobs must be >= 0 (got {args.jobs})", file=sys.stderr)
        return 2
    delays = None
    if args.delay_spec is not None:
        from repro.timing import IntervalDelayModel, delay_model_from_spec

        with open(args.delay_spec) as fh:
            delays = delay_model_from_spec(json.load(fh))
        if args.delay_model == "scalar" and isinstance(delays, IntervalDelayModel):
            print(
                f"error: --delay-spec {args.delay_spec} is an interval spec "
                "but --delay-model scalar was requested",
                file=sys.stderr,
            )
            return 2
    from repro.cache import default_cache_dir

    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    options = {}
    if args.method == "approx2":
        options["engine"] = args.engine
        if args.budget is not None:
            options["time_budget"] = args.budget
    if args.method in ("exact", "approx1") and args.max_nodes is not None:
        options["max_nodes"] = args.max_nodes
    if args.reorder:
        options["reorder"] = True
    if args.backend is not None:
        options["backend"] = args.backend
    if args.delay_model is not None:
        options["delay_model"] = args.delay_model
    if args.jobs not in (1,):
        return _cmd_required_sharded(args, options, cache_dir, delays)
    if cache_dir is not None:
        return _cmd_required_cached(args, options, cache_dir, delays)

    trace = None
    if args.trace is not None:
        from repro.obs import start_trace

        start_trace()
    try:
        from repro.obs import span

        with span("cli.required", netlist=args.netlist, method=args.method):
            net = load_network(args.netlist)
            report = analyze_required_times(
                net, args.method, delays=delays,
                output_required=args.required, **options
            )
    finally:
        if args.trace is not None:
            from repro.obs import stop_trace

            trace = stop_trace()
            trace.save(args.trace)
            print(
                f"trace: {trace.num_spans} spans, "
                f"coverage {trace.coverage():.1%}, written to {args.trace}",
                file=sys.stderr,
            )
    if args.json:
        print(json.dumps(report.table_row()))
        return 0
    print(f"method:      {report.method}")
    print(f"circuit:     {report.circuit}")
    print(f"non-trivial: {'yes' if report.nontrivial else 'no'}")
    print(f"cpu time:    {report.elapsed:.3f}s")
    if report.time_to_first_nontrivial is not None:
        print(f"first r != r_bot after {report.time_to_first_nontrivial:.3f}s")
    if report.aborted:
        print(f"ABORTED: {report.abort_reason}")
    detail = report.detail
    if args.method == "approx2" and detail is not None and not report.aborted:
        print("\nloosest validated required times:")
        best = detail.best
        for key in sorted(best, key=str):
            gain = best[key] - detail.r_bottom[key]
            marker = f"  (+{gain:g})" if gain > 0 else ""
            print(f"  {key}: {format_time(best[key])}{marker}")
    if args.method == "approx1" and detail is not None:
        for i, profile in enumerate(detail.profiles):
            print(f"\nprime {i + 1}:")
            for x, (r0, r1) in sorted(profile.as_dict().items()):
                print(
                    f"  {x}: by {format_time(r1)} when 1, "
                    f"by {format_time(r0)} when 0"
                )
    return 0


def _cmd_required_cached(
    args: argparse.Namespace, options: dict, cache_dir: str, delays=None
) -> int:
    """``required`` through the persistent result cache (serial path).

    A hit replays the stored canonical result without running any
    engine; a miss computes and stores it.  The machine-readable row of
    a warm run is bit-identical to the cold run it reuses (including the
    recorded cold CPU time) — only the ``cache`` field differs.
    """
    from repro.cache import ResultCache, cached_analyze_required_times
    from repro.obs import span

    trace = None
    if args.trace is not None:
        from repro.obs import start_trace

        start_trace()
    try:
        with span(
            "cli.required", netlist=args.netlist, method=args.method, cache=True
        ):
            net = load_network(args.netlist)
            cache = ResultCache(cache_dir)
            result, hit = cached_analyze_required_times(
                net, args.method, cache, delays=delays,
                output_required=args.required, options=options,
            )
    finally:
        if args.trace is not None:
            from repro.obs import stop_trace

            trace = stop_trace()
            trace.save(args.trace)
            print(
                f"trace: {trace.num_spans} spans, "
                f"coverage {trace.coverage():.1%}, written to {args.trace}",
                file=sys.stderr,
            )
    if args.json:
        row = result.table_row()
        row["cache"] = "hit" if hit else "miss"
        print(json.dumps(row))
        return 0
    print(f"method:      {result.method}")
    print(f"circuit:     {result.circuit}")
    print(f"cache:       {'hit' if hit else 'miss'} ({cache_dir})")
    print(f"non-trivial: {'yes' if result.nontrivial else 'no'}")
    print(f"cpu time:    {result.elapsed:.3f}s" + (" (cached)" if hit else ""))
    if result.time_to_first_nontrivial is not None:
        print(f"first r != r_bot after {result.time_to_first_nontrivial:.3f}s")
    if result.aborted:
        print(f"ABORTED: {result.abort_reason}")
    detail = result.render_detail()
    if detail:
        print(detail)
    return 0


def _cmd_required_sharded(
    args: argparse.Namespace, options: dict, cache_dir: str | None = None,
    delays=None,
) -> int:
    """``required --jobs N``: one task per output cone, min-merged.

    Each primary output's transitive-fanin cone is an independent
    required-time problem (the per-output decomposition functional timing
    engines exploit); the requirement an input must satisfy is the
    earliest any cone demands.  The merge is exact for ``topological``
    and sound-but-possibly-tighter for the approximate methods (a cone
    cannot see looseness that only exists network-wide); the serial
    whole-network analysis stays the default at ``--jobs 1``.
    """
    from repro.core.required_time import topological_input_required_times
    from repro.parallel import (
        merge_required_outcomes,
        run_batch,
        shard_required_time,
    )

    trace_to = None
    if args.trace is not None:
        from repro.obs import start_trace

        start_trace()
    try:
        from repro.obs import span

        with span(
            "cli.required",
            netlist=args.netlist,
            method=args.method,
            jobs=args.jobs,
        ):
            net = load_network(args.netlist)
            task_options = dict(options)
            if cache_dir is not None:
                # workers consult/populate the shared disk tier per cone
                task_options["cache_dir"] = cache_dir
            tasks = shard_required_time(
                net, args.method, output_required=args.required,
                delays=delays, options=task_options,
            )
            batch = run_batch(tasks, jobs=args.jobs)
            outcomes = [o.value for o in batch.outcomes if o.ok]
            merged = merge_required_outcomes(outcomes)
    finally:
        if args.trace is not None:
            from repro.obs import stop_trace

            trace_to = stop_trace()
            trace_to.save(args.trace)
            print(
                f"trace: {trace_to.num_spans} spans, "
                f"coverage {trace_to.coverage():.1%}, written to {args.trace}",
                file=sys.stderr,
            )
    errors = batch.errors
    if args.json:
        print(
            json.dumps(
                {
                    "circuit": net.name,
                    "method": args.method,
                    "jobs": batch.jobs,
                    "nontrivial": merged["nontrivial_any_cone"],
                    "nontrivial_merged": merged["nontrivial_merged"],
                    "input_times": {
                        x: format_time(t)
                        for x, t in sorted(merged["input_times"].items())
                    },
                    "aborted_cones": merged["aborted_cones"],
                    "task_errors": [o.task_id for o in errors],
                    "run": batch.report(),
                }
            )
        )
        return 0 if not errors else 1
    print(f"method:      {args.method} (sharded per output, jobs={batch.jobs})")
    print(f"circuit:     {net.name}")
    print(f"cones:       {len(batch.outcomes)} ({len(errors)} failed)")
    print(f"non-trivial: {'yes' if merged['nontrivial_any_cone'] else 'no'}")
    print(f"wall time:   {batch.wall:.3f}s")
    if merged["aborted_cones"]:
        print(f"aborted:     {', '.join(merged['aborted_cones'])}")
    print("\nmerged required times at the primary inputs (min over cones):")
    baseline = merged["baseline"]
    for x in sorted(merged["input_times"]):
        t = merged["input_times"][x]
        gain = t - baseline.get(x, t)
        marker = f"  (+{gain:g} vs topological)" if gain > 0 else ""
        print(f"  {x}: {format_time(t)}{marker}")
    for outcome in errors:
        print(f"task {outcome.task_id} FAILED: {outcome.error}", file=sys.stderr)
    for event in batch.events:
        if event.kind in ("timeout", "worker-death", "retry"):
            print(
                f"pool event: {event.kind} {event.task_id} ({event.detail})",
                file=sys.stderr,
            )
    return 0 if not errors else 1


def cmd_slack(args: argparse.Namespace) -> int:
    net = load_network(args.netlist)
    required = args.required
    if required is None:
        required = TopologicalTiming.analyze(net, output_required=0.0).topological_delay()
    reports = true_slacks(net, output_required=required, engine=args.engine)
    print(f"required time at outputs: {required:g}")
    print(f"{'node':<20} {'topo slack':>12} {'true slack':>12} {'recovered':>12}")
    for name in sorted(reports):
        rep = reports[name]
        print(
            f"{name:<20} {rep.topo_slack:>12g} "
            f"{format_time(rep.true_slack):>12} "
            f"{format_time(rep.slack_recovered):>12}"
        )
    return 0


def cmd_paths(args: argparse.Namespace) -> int:
    net = load_network(args.netlist)
    paths = longest_paths(net, max_paths=args.max_paths)
    print(f"{len(paths)} longest path(s), delay {paths[0].delay:g}:" if paths else "no paths")
    for path in paths[: args.limit]:
        verdict = classify_path(net, path, engine=args.engine)
        print(f"  [{verdict:>12}] {' -> '.join(path.nodes)}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.timing.report import timing_report

    net = load_network(args.netlist)
    report = timing_report(
        net,
        output_required=args.required,
        method=args.method,
        engine=args.engine,
        time_budget=args.budget,
    )
    print(report.render(), end="")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import PROFILES, FuzzRunner, load_corpus, replay_entry

    if args.replay is not None:
        entries = load_corpus(args.replay)
        if not entries:
            print(f"no corpus entries under {args.replay}")
            return 0
        failures = 0
        for entry in entries:
            result = replay_entry(entry)
            status = "ok" if result.ok else "FAIL " + ",".join(result.failed_checks)
            print(f"{entry.case.case_id:<44} {status}")
            if not result.ok:
                failures += 1
        print(f"\n{len(entries)} corpus entries, {failures} still failing")
        return 1 if failures else 0

    if args.profile not in PROFILES:
        print(
            f"error: unknown profile {args.profile!r} "
            f"(choose from {', '.join(sorted(PROFILES))})",
            file=sys.stderr,
        )
        return 2
    runner = FuzzRunner(
        seed=args.seed,
        budget=args.budget,
        profile=args.profile,
        time_budget=args.time_budget,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        stop_on_failure=args.stop_on_failure,
        jobs=args.jobs,
        family=args.family,
        log=None if args.json else lambda v: print(v.render()),
    )
    report = runner.run()
    if args.metrics_json is not None:
        payload = json.dumps(
            {
                "seed": report.seed,
                "profile": report.profile,
                "cases": report.num_cases,
                "failures": report.num_failures,
                "metrics": report.metrics,
            },
            indent=2,
            sort_keys=True,
        )
        if args.metrics_json == "-":
            print(payload)
        else:
            with open(args.metrics_json, "w") as fh:
                fh.write(payload + "\n")
            print(f"metrics written to {args.metrics_json}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(f"\n{report.summary()}")
    return 0 if report.ok else 1


def cmd_eco(args: argparse.Namespace) -> int:
    from repro.cache import ResultCache, default_cache_dir
    from repro.eco import NetworkSession, edits_from_json

    if args.jobs < 0:
        print(f"error: --jobs must be >= 0 (got {args.jobs})", file=sys.stderr)
        return 2
    if args.backend is not None and args.method not in ("exact", "approx1"):
        print(
            f"error: --backend only applies to --method exact/approx1 "
            f"(got --method {args.method})",
            file=sys.stderr,
        )
        return 2
    if _validate_backend(args.backend):
        return 2
    net = load_network(args.netlist)
    with open(args.trace) as fh:
        edits = edits_from_json(json.load(fh))
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    options = {}
    if args.method == "approx2":
        options["engine"] = args.engine
    if args.backend is not None:
        options["backend"] = args.backend
    if args.delay_model is not None:
        options["delay_model"] = args.delay_model
    session = NetworkSession(
        net,
        method=args.method,
        output_required=args.required,
        options=options,
        cache=ResultCache(cache_dir),
        jobs=args.jobs,
    )
    reports = []
    divergences = 0
    for i, edit in enumerate(edits):
        result = session.apply_edit(edit)
        report = result.report()
        report["index"] = i
        if args.verify:
            problems = session.verify_against_full_recompute()
            report["parity"] = "ok" if not problems else "DIVERGED"
            divergences += len(problems)
            for problem in problems:
                print(f"error: edit #{i}: {problem}", file=sys.stderr)
        reports.append(report)
        if not args.json:
            line = (
                f"[{i:3d}] {edit.kind:<17} dirty={len(report['recomputed'])}"
                f" cached={len(report['cache_hits'])}"
                f" clean={len(report['clean'])}"
            )
            if report["added"] or report["removed"]:
                line += (
                    f" outputs+{len(report['added'])}-{len(report['removed'])}"
                )
            if args.verify:
                line += f"  parity={report['parity']}"
            print(line)
    payload = {
        "circuit": session.network.name,
        "method": args.method,
        "edits": reports,
        "rows": session.rows(),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"\n{len(edits)} edits applied; final rows:")
        for name, row in sorted(session.rows().items()):
            print(
                f"  {name}: nontrivial={row['nontrivial']} "
                f"status={row['status']}"
            )
    return 1 if divergences else 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import DiskStore, default_cache_dir

    cache_dir = args.cache_dir or default_cache_dir()
    if not cache_dir:
        print(
            "error: no cache directory "
            "(pass --cache-dir or set REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    store = DiskStore(cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, sort_keys=True))
            return 0
        print(f"cache dir: {stats['dir']} (schema v{stats['schema']})")
        print(f"entries:   {stats['entries']}")
        print(f"bytes:     {stats['bytes']}")
        if stats["oldest_age_seconds"] is not None:
            print(f"oldest:    {stats['oldest_age_seconds']:.0f}s ago")
            print(f"newest:    {stats['newest_age_seconds']:.0f}s ago")
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {cache_dir}")
        return 0
    if args.cache_command == "gc":
        max_age = None
        if args.max_age_days is not None:
            max_age = args.max_age_days * 86400.0
        outcome = store.gc(max_bytes=args.max_bytes, max_age_seconds=max_age)
        if args.json:
            print(json.dumps(outcome, sort_keys=True))
            return 0
        print(
            f"removed {outcome['removed']} entries, "
            f"{outcome['kept_bytes']} bytes kept in {cache_dir}"
        )
        return 0
    raise AssertionError(f"unknown cache command {args.cache_command!r}")


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_jsonl, records_to_chrome, render_summary

    with open(args.tracefile) as fh:
        header, roots = read_jsonl(fh.read())
    if args.chrome is not None:
        with open(args.chrome, "w") as fh:
            json.dump(records_to_chrome(header, roots), fh)
        print(f"chrome trace written to {args.chrome} (open in about:tracing)")
        return 0
    print(render_summary(header, roots, max_depth=args.depth, min_frac=args.min_frac))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon in the foreground until SIGINT/SIGTERM.

    Prints ``serving on http://<host>:<port>`` once bound (port 0 picks
    a free port), so wrappers can scrape the address; see docs/SERVING.md
    for the endpoint reference.
    """
    from repro.cache import default_cache_dir
    from repro.serve import ReproServer, ServerConfig

    if args.jobs < 0:
        print(f"error: --jobs must be >= 0 (got {args.jobs})", file=sys.stderr)
        return 2
    if _validate_backend(args.backend):
        return 2
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=cache_dir,
        max_queue=args.max_queue,
        max_circuits=args.max_circuits,
        max_sessions=args.max_sessions,
        session_idle_seconds=args.session_idle,
        task_timeout=args.task_timeout,
        debug_handlers=args.debug_handlers,
        backend=args.backend,
        delay_model=args.delay_model,
    )
    server = ReproServer(config)
    for path in args.preload:
        entry = server.registry.register(load_network(path))
        print(f"preloaded {path} as {entry.digest}", file=sys.stderr)

    def on_ready(srv) -> None:
        print(f"serving on http://{srv.host}:{srv.port}", flush=True)

    server.serve_forever(on_ready)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exact required time analysis via false path detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="netlist size profile")
    p.add_argument("netlist")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("delay", help="topological vs exact arrival times")
    p.add_argument("netlist")
    p.add_argument("--engine", choices=["bdd", "sat"], default="bdd")
    p.add_argument("--output", default=None,
                   help="restrict the analysis to one primary output")
    p.set_defaults(func=cmd_delay)

    p = sub.add_parser("required", help="required times at the primary inputs")
    p.add_argument("netlist")
    p.add_argument(
        "--method",
        choices=["topological", "exact", "approx1", "approx2"],
        default="approx2",
    )
    p.add_argument("--required", type=float, default=0.0,
                   help="required time at every primary output (default 0)")
    p.add_argument("--engine", choices=["bdd", "sat"], default="sat")
    p.add_argument("--delay-model", choices=["scalar", "interval"],
                   default=None,
                   help="delay semantics: scalar max delays (the paper's "
                        "model, default) or min/max rise/fall intervals; "
                        "interval runs report [lo, hi] requirement bounds "
                        "(docs/DELAY_MODELS.md)")
    p.add_argument("--delay-spec", default=None, metavar="FILE",
                   help="JSON delay specification (DelayModel.to_spec "
                        "format; a \"model\": \"interval\" spec selects "
                        "the interval model; default: unit delays)")
    p.add_argument("--budget", type=float, default=None,
                   help="time budget in seconds (approx2)")
    p.add_argument("--max-nodes", type=int, default=None,
                   help="BDD node budget (exact/approx1)")
    p.add_argument("--json", action="store_true", help="machine-readable row")
    p.add_argument("--trace", default=None, metavar="OUT",
                   help="record a span trace of the run; .json writes Chrome "
                        "trace_event format, anything else JSONL")
    p.add_argument("--reorder", action="store_true",
                   help="dynamic variable reordering by sifting "
                        "(exact/approx1, the paper's §6 setup)")
    p.add_argument(
        "--backend", default=None, metavar="NAME",
        help="BDD kernel for --method exact/approx1: object, array, or "
             "native (default: $REPRO_BDD_BACKEND, then 'native'; "
             "'native' falls back to 'array' when no C compiler exists)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the analysis per output cone onto N worker "
                        "processes (0 = one per core; default 1 = serial "
                        "whole-network analysis)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent result cache directory (default: "
                        "$REPRO_CACHE_DIR if set, else caching is off); "
                        "warm results are bit-identical to cold ones")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache even if REPRO_CACHE_DIR "
                        "is set")
    p.set_defaults(func=cmd_required)

    p = sub.add_parser("slack", help="true vs topological slack per node")
    p.add_argument("netlist")
    p.add_argument("--required", type=float, default=None,
                   help="required time at outputs (default: topological delay)")
    p.add_argument("--engine", choices=["bdd", "sat"], default="bdd")
    p.set_defaults(func=cmd_slack)

    p = sub.add_parser("report", help="consolidated timing datasheet")
    p.add_argument("netlist")
    p.add_argument("--required", type=float, default=0.0)
    p.add_argument(
        "--method",
        choices=["none", "topological", "exact", "approx1", "approx2"],
        default="approx2",
    )
    p.add_argument("--engine", choices=["bdd", "sat"], default="bdd")
    p.add_argument("--budget", type=float, default=30.0)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("fuzz", help="differential fuzzing of the engines")
    p.add_argument("--seed", default="0",
                   help="base seed of the deterministic case sequence")
    p.add_argument("--budget", type=int, default=25,
                   help="number of cases to generate (default 25)")
    p.add_argument("--profile", default="default",
                   help="generation profile (default/tiny/arith/deep)")
    p.add_argument("--time-budget", type=float, default=None,
                   help="wall-clock cap in seconds (stops early)")
    p.add_argument("--corpus", default=None,
                   help="directory to save shrunk repros into")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip delta-debugging of failures")
    p.add_argument("--stop-on-failure", action="store_true",
                   help="stop at the first failing case")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="run cases on N worker processes (0 = one per "
                        "core; default 1 = serial; circuit family only)")
    p.add_argument("--family", choices=["circuit", "eco", "interval"],
                   default="circuit",
                   help="what each case is: a static netlist run through "
                        "the differential checks, an edit trace replayed "
                        "incrementally against a full-recompute parity "
                        "oracle, or an interval-delay case checked for "
                        "point-interval/scalar parity and widening "
                        "monotonicity (default circuit)")
    p.add_argument("--replay", default=None, metavar="DIR",
                   help="replay a saved corpus instead of fuzzing")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument("--metrics-json", default=None, metavar="OUT",
                   help="write run-level metric deltas (BDD/SAT/engine "
                        "counters) as JSON; '-' prints to stdout")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("eco", help="apply a JSON edit trace incrementally")
    p.add_argument("netlist")
    p.add_argument("trace", help="JSON edit trace ({\"edits\": [...]}, see "
                                 "docs/ECO.md; eco fuzz traces work as-is)")
    p.add_argument(
        "--method",
        choices=["topological", "exact", "approx1", "approx2"],
        default="topological",
    )
    p.add_argument("--required", type=float, default=0.0,
                   help="required time at every primary output (default 0)")
    p.add_argument("--engine", choices=["bdd", "sat"], default="sat",
                   help="validation engine for --method approx2")
    p.add_argument("--delay-model", choices=["scalar", "interval"],
                   default=None,
                   help="delay semantics for the per-edit re-analysis "
                        "(docs/DELAY_MODELS.md)")
    p.add_argument("--backend", default=None, metavar="NAME",
                   help="BDD kernel for --method exact/approx1: object, "
                        "array, or native (default: $REPRO_BDD_BACKEND, "
                        "then 'native')")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="recompute dirty cones on N worker processes "
                        "(0 = one per core; default 1 = in-process)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent result cache directory (default: "
                        "$REPRO_CACHE_DIR if set, else memory-only)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore REPRO_CACHE_DIR and keep results in memory")
    p.add_argument("--verify", action="store_true",
                   help="after every edit, check the incremental rows "
                        "against a full recompute (exit 1 on divergence)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable per-edit reports and final rows")
    p.set_defaults(func=cmd_eco)

    p = sub.add_parser("trace", help="summarize a recorded span trace")
    p.add_argument("tracefile", help="JSONL trace from 'required --trace'")
    p.add_argument("--chrome", default=None, metavar="OUT",
                   help="convert to Chrome trace_event JSON instead")
    p.add_argument("--depth", type=int, default=None,
                   help="maximum tree depth to print")
    p.add_argument("--min-frac", type=float, default=0.0,
                   help="hide spans below this fraction of total time")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("cache", help="inspect / maintain the result cache")
    csub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry count, bytes, and age of the disk tier"),
        ("clear", "remove every cached entry"),
        ("gc", "expire old entries / shrink to a byte budget"),
    ):
        cp = csub.add_parser(name, help=help_text)
        cp.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: $REPRO_CACHE_DIR)")
        if name in ("stats", "gc"):
            cp.add_argument("--json", action="store_true",
                            help="machine-readable output")
        if name == "gc":
            cp.add_argument("--max-bytes", type=int, default=None,
                            help="evict oldest entries beyond this size")
            cp.add_argument("--max-age-days", type=float, default=None,
                            help="expire entries older than this many days")
        cp.set_defaults(func=cmd_cache)

    p = sub.add_parser("paths", help="classify the longest paths")
    p.add_argument("netlist")
    p.add_argument("--engine", choices=["bdd", "sat"], default="bdd")
    p.add_argument("--max-paths", type=int, default=10_000)
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=cmd_paths)

    p = sub.add_parser("serve", help="run the analysis daemon")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback only)")
    p.add_argument("--port", type=int, default=8787,
                   help="bind port (0 = pick a free port)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker-pool size; 0 runs analyses in-process "
                        "without the fault envelope")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared disk tier of the result cache "
                        "(default: $REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="memory-only result cache (ignore $REPRO_CACHE_DIR)")
    p.add_argument("--max-queue", type=int, default=32, metavar="N",
                   help="admission queue bound; overflow is a 429 + Retry-After")
    p.add_argument("--max-circuits", type=int, default=64, metavar="N",
                   help="warm circuit registry capacity (LRU)")
    p.add_argument("--max-sessions", type=int, default=32, metavar="N",
                   help="live ECO session capacity")
    p.add_argument("--session-idle", type=float, default=3600.0, metavar="SEC",
                   help="evict sessions idle longer than this")
    p.add_argument("--task-timeout", type=float, default=None, metavar="SEC",
                   help="per-attempt wall budget before kill-and-requeue")
    p.add_argument("--backend", default=None, metavar="NAME",
                   help="default BDD kernel for analyses (object, array, "
                        "or native); a request's own 'backend' option "
                        "still wins")
    p.add_argument("--delay-model", choices=["scalar", "interval"],
                   default=None,
                   help="default delay semantics for analyses; a "
                        "request's own 'delay_model' option still wins "
                        "(docs/DELAY_MODELS.md)")
    p.add_argument("--debug-handlers", action="store_true",
                   help="expose /debug/task and /debug/shutdown "
                        "(fault-injection tests and benchmarks)")
    p.add_argument("--preload", nargs="*", default=[], metavar="NETLIST",
                   help="netlist files to parse into the warm registry at boot")
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
