"""Analysis-as-a-service: the long-lived daemon behind ``repro serve``.

One resident process fronts the whole engine stack so a request pays
none of the per-invocation costs the CLI does: circuits stay parsed in a
digest-keyed warm registry, results sit in the two-tier content-addressed
cache, concurrent identical requests coalesce into one computation, a
bounded admission queue turns overload into an explicit ``429`` +
``Retry-After``, and execution runs through the worker-pool fault
envelope (kill-replace-requeue, never a hang).  ECO sessions
(:class:`repro.eco.NetworkSession`) are exposed as stateful HTTP
resources with idle eviction.  See docs/SERVING.md for the endpoint
reference and contracts, and ``benchmarks/bench_serve.py`` for the
seeded load harness that gates latency, throughput, coalescing, and
parity into ``BENCH_serve.json``.
"""

from repro.serve.app import DEBUG_TASK_KINDS, METHODS, ReproServer, ServerConfig
from repro.serve.coalesce import Coalescer
from repro.serve.protocol import Request, read_request, response_bytes
from repro.serve.registry import CircuitRegistry, RegisteredCircuit
from repro.serve.sessions import SessionEntry, SessionStore

__all__ = [
    "Coalescer",
    "CircuitRegistry",
    "DEBUG_TASK_KINDS",
    "METHODS",
    "RegisteredCircuit",
    "ReproServer",
    "Request",
    "ServerConfig",
    "SessionEntry",
    "SessionStore",
    "read_request",
    "response_bytes",
]
