"""Server-side :class:`~repro.eco.NetworkSession` lifecycle management.

Each HTTP session wraps one ``NetworkSession`` (PR 7's incremental ECO
engine): create it from a registered circuit, stream edits at it, and
re-query rows at keystroke latency because only dirty cones recompute.
The store enforces a capacity bound and idle eviction so abandoned
sessions cannot pin memory forever; an evicted or unknown id is a
structured 404 (``session-not-found``), never a silent recreate.

All mutating calls are routed through the server's single dispatcher
thread (see :mod:`repro.serve.app`), which gives the ECO atomicity
contract — an invalid edit leaves the session observably unchanged —
for free over HTTP: there is no interleaving to defend against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..eco import NetworkSession
from ..errors import ServeError


@dataclass
class SessionEntry:
    """One live session plus its bookkeeping."""

    session_id: str
    session: NetworkSession
    circuit_digest: str
    created: float
    last_used: float
    edits_accepted: int = 0
    edits_rejected: int = 0
    meta: dict = field(default_factory=dict)

    def describe(self) -> dict:
        """JSON summary used by ``GET /sessions`` and ``GET /sessions/<id>``."""
        return {
            "id": self.session_id,
            "circuit": self.circuit_digest,
            "method": self.session.method,
            "edits_applied": self.session.edits_applied,
            "edits_rejected": self.edits_rejected,
            "failed": self.session.failed,
            "idle_seconds": round(time.monotonic() - self.last_used, 3),
        }


class SessionStore:
    """Bounded map of live sessions with idle eviction.

    Eviction is sweep-on-access: every public operation first drops
    entries idle longer than ``idle_seconds``.  That keeps the store
    timer-free (no background thread to leak) while guaranteeing a
    stale id can never be observed past its deadline.
    """

    def __init__(self, max_sessions: int = 32, idle_seconds: float = 3600.0):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self.idle_seconds = idle_seconds
        self._entries: dict[str, SessionEntry] = {}
        self._next_id = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def sweep(self, now: float | None = None) -> int:
        """Evict idle sessions; returns how many were dropped."""
        now = time.monotonic() if now is None else now
        stale = [
            sid
            for sid, entry in self._entries.items()
            if now - entry.last_used > self.idle_seconds
        ]
        for sid in stale:
            del self._entries[sid]
            self.evicted += 1
        return len(stale)

    def create(
        self, session: NetworkSession, circuit_digest: str, meta: dict | None = None
    ) -> SessionEntry:
        """Admit a new session; 429 :class:`ServeError` at capacity."""
        self.sweep()
        if len(self._entries) >= self.max_sessions:
            raise ServeError(
                f"session capacity {self.max_sessions} reached",
                status=429,
                code="too-many-sessions",
                retry_after=self.idle_seconds,
            )
        self._next_id += 1
        sid = f"s-{self._next_id}"
        now = time.monotonic()
        entry = SessionEntry(
            session_id=sid,
            session=session,
            circuit_digest=circuit_digest,
            created=now,
            last_used=now,
            meta=dict(meta or {}),
        )
        self._entries[sid] = entry
        return entry

    def get(self, session_id: str) -> SessionEntry:
        """Look up a live session, refreshing its idle clock.

        Unknown *and* idle-evicted ids both raise the same structured
        404 — a client cannot distinguish "never existed" from "expired",
        and must not try to (docs/SERVING.md).
        """
        self.sweep()
        entry = self._entries.get(session_id)
        if entry is None:
            raise ServeError(
                f"no live session {session_id!r} (unknown or idle-evicted)",
                status=404,
                code="session-not-found",
            )
        entry.last_used = time.monotonic()
        return entry

    def delete(self, session_id: str) -> SessionEntry:
        """Remove a session explicitly; 404 when absent."""
        entry = self.get(session_id)
        del self._entries[session_id]
        return entry

    def describe_all(self) -> list[dict]:
        """JSON summaries of every live session (after a sweep)."""
        self.sweep()
        return [entry.describe() for entry in self._entries.values()]
