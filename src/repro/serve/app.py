"""The analysis daemon: asyncio front end over the existing engine stack.

``repro serve`` keeps everything the CLI pays for on every invocation —
process start, netlist parse, BDD warmup — resident in one long-lived
process (ROADMAP item 1).  The moving parts, each defined in a sibling
module:

* a warm :class:`~repro.serve.registry.CircuitRegistry` of parsed
  networks keyed by content digest;
* a two-tier :class:`~repro.cache.ResultCache` front (memory +
  optional shared disk dir) consulted before any computation;
* a :class:`~repro.serve.coalesce.Coalescer` so concurrent identical
  requests (same :func:`~repro.cache.required_key` digest) share one
  computation;
* a **bounded admission queue** feeding a single dispatcher thread —
  saturation is an explicit ``429`` + ``Retry-After``, never unbounded
  fan-in;
* the dispatcher executes analyses through the
  :class:`~repro.parallel.WorkerPool` fault envelope
  (kill-replace-requeue; a dead worker is a retry or a structured
  ``500``, never a hang), or in-process when ``jobs=0``;
* a :class:`~repro.serve.sessions.SessionStore` exposing
  :class:`~repro.eco.NetworkSession` (create / edit / re-query /
  verify) with idle eviction;
* ``/metrics`` + ``/trace`` surfaces straight off :mod:`repro.obs`.

Endpoints, payload shapes, and the backpressure contract are documented
in docs/SERVING.md; tests/integration/test_serve*.py exercise every
behavior over a real socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

from ..cache import (
    SEMANTIC_OPTIONS,
    CachedRequiredResult,
    ResultCache,
    jsonify,
    required_key,
)
from ..eco import NetworkSession
from ..errors import EcoError, ReproError, ServeError
from ..obs import REGISTRY
from ..parallel import CircuitRef, Task, WorkerPool, required_time_task, run_batch
from ..parallel.tasks import estimate_cost
from .coalesce import Coalescer
from .protocol import (
    DEFAULT_MAX_BODY_BYTES,
    Request,
    error_payload,
    read_request,
    response_bytes,
)
from .registry import CircuitRegistry, RegisteredCircuit
from .sessions import SessionStore

#: analysis methods a ``/required`` request may name (mirrors the CLI).
METHODS = ("topological", "exact", "approx1", "approx2")

#: worker-pool test handlers reachable through ``POST /debug/task`` when
#: the server runs with ``debug_handlers=True`` — the fault-injection
#: tests drive the *serving* path with these, not library internals.
DEBUG_TASK_KINDS = ("_test_probe", "_test_sleep", "_test_kill", "_test_fail")

#: how many completed requests the ``/trace`` ring remembers.
TRACE_RING_SIZE = 256

_STOP = object()


@dataclass
class ServerConfig:
    """Everything tunable about one daemon instance.

    ``jobs >= 1`` runs analyses on a :class:`WorkerPool` of that many
    fork workers (the fault envelope); ``jobs = 0`` runs them in-process
    on the dispatcher thread (no isolation — rejected for
    ``_test_kill``).  ``cache_dir=None`` keeps the result cache
    memory-only.
    """

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 1
    cache_dir: str | None = None
    memory_entries: int = 256
    max_queue: int = 32
    max_circuits: int = 64
    max_sessions: int = 32
    session_idle_seconds: float = 3600.0
    task_timeout: float | None = None
    debug_handlers: bool = False
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    drain_timeout: float = 10.0
    #: default BDD kernel for requests that do not name one themselves
    #: (request option > this flag > ``$REPRO_BDD_BACKEND`` > default);
    #: unknown names raise :class:`~repro.errors.BddError` at startup.
    backend: str | None = None
    #: default delay semantics ("scalar" or "interval") for requests that
    #: do not name one; a request's own ``delay_model`` option wins
    #: (docs/DELAY_MODELS.md).
    delay_model: str | None = None


class _Job:
    """One queued unit of dispatcher work, resolved back onto the loop."""

    __slots__ = ("label", "fn", "future", "loop")

    def __init__(self, label: str, fn: Callable[[], dict], future, loop):
        self.label = label
        self.fn = fn
        self.future = future
        self.loop = loop

    def resolve(self, result) -> None:
        """Deliver a result to the awaiting coroutine (loop-safe)."""
        self.loop.call_soon_threadsafe(self._set, result, None)

    def reject(self, exc: BaseException) -> None:
        """Deliver a failure to the awaiting coroutine (loop-safe)."""
        self.loop.call_soon_threadsafe(self._set, None, exc)

    def _set(self, result, exc) -> None:
        """Resolve the future on the loop thread (set once, guarded)."""
        if self.future.cancelled():
            return
        if exc is not None:
            self.future.set_exception(exc)
        else:
            self.future.set_result(result)


class ReproServer:
    """One daemon instance: asyncio front end + dispatcher back end.

    Run it in-thread for tests (:meth:`start` / :meth:`stop`, or as a
    context manager) or foreground for the CLI (:meth:`serve_forever`).
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        if self.config.backend is not None:
            from ..bdd.api import resolve_backend

            resolve_backend(self.config.backend)  # typos fail at startup
        self.registry = CircuitRegistry(self.config.max_circuits)
        self.sessions = SessionStore(
            self.config.max_sessions, self.config.session_idle_seconds
        )
        self.cache = ResultCache(
            self.config.cache_dir, memory_entries=self.config.memory_entries
        )
        self._cache_lock = threading.Lock()
        self._coalescer = Coalescer()
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.max_queue)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._pool: WorkerPool | None = None
        self._ewma_wall = 0.0
        self._trace_ring: deque = deque(maxlen=TRACE_RING_SIZE)
        self._active = 0
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._debug_seq = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._t0 = time.monotonic()
        self.host = self.config.host
        self.port = self.config.port

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _main(self, on_ready: Callable[["ReproServer"], None] | None = None):
        """Bind, accept, and park until :meth:`_shutdown` fires."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._client_connected, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._dispatcher.start()
        self._started.set()
        if on_ready is not None:
            on_ready(self)
        await self._stop_event.wait()

    def start(self, timeout: float = 10.0) -> "ReproServer":
        """Run the daemon on a background thread; returns once bound.

        The OS-assigned port is available as ``self.port`` afterwards.
        """
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServeError("server failed to start in time", status=500, code="startup")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _thread_main(self) -> None:
        """Body of the background thread: run the loop to completion."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
        finally:
            self._started.set()

    def serve_forever(self, on_ready: Callable[["ReproServer"], None] | None = None):
        """Run in the calling thread until SIGINT/SIGTERM (the CLI path)."""
        import signal

        async def _run():
            await asyncio.sleep(0)  # ensure a running loop before handlers
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(self._shutdown())
                    )
            await self._main(on_ready)

        asyncio.run(_run())

    async def _shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then stop.

        In-flight requests (including queued dispatcher work) complete
        and their responses are written; only after the active count
        reaches zero — or ``drain_timeout`` expires — does the loop stop.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while self._active > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        await loop.run_in_executor(None, self._stop_dispatcher)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._stop_event is not None:
            self._stop_event.set()

    def _stop_dispatcher(self) -> None:
        """Stop the dispatcher thread (sentinel + join; idempotent)."""
        if self._dispatcher.is_alive():
            self._queue.put(_STOP)
            self._dispatcher.join()

    def stop(self, timeout: float | None = None) -> None:
        """Thread-safe graceful shutdown (blocks until drained)."""
        if self._loop is None or self._stop_event is None:
            return
        budget = timeout if timeout is not None else self.config.drain_timeout + 10.0
        with contextlib.suppress(RuntimeError):
            future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
            future.result(budget)
        if self._thread is not None:
            self._thread.join(5.0)

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # admission + dispatch
    # ------------------------------------------------------------------
    def _enqueue(self, label: str, fn: Callable[[], dict]) -> asyncio.Future:
        """Admit one job or raise the structured 429 (backpressure).

        ``Retry-After`` is estimated from the queue depth times an EWMA
        of recent job wall time — an honest hint, not a promise.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        job = _Job(label, fn, future, loop)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            REGISTRY.counter("serve.rejected").inc()
            depth = self._queue.qsize()
            per_job = max(self._ewma_wall, 0.05)
            raise ServeError(
                f"admission queue full ({depth} jobs queued); retry later",
                status=429,
                code="queue-full",
                retry_after=max(1.0, depth * per_job),
            ) from None
        REGISTRY.gauge("serve.queue_depth").set(float(self._queue.qsize()))
        return future

    async def _submit(self, label: str, fn: Callable[[], dict]) -> dict:
        """Admit + await one dispatcher job."""
        return await self._enqueue(label, fn)

    def _dispatch_loop(self) -> None:
        """The single dispatcher thread: jobs run strictly one at a time.

        Serialization is a feature, not a limitation — it is what makes
        session edits atomic over HTTP and lets the session store run
        lock-free.  Parallelism lives *inside* a job (the worker pool).
        """
        try:
            while True:
                job = self._queue.get()
                if job is _STOP:
                    break
                REGISTRY.gauge("serve.queue_depth").set(float(self._queue.qsize()))
                t0 = time.perf_counter()
                try:
                    result = job.fn()
                except BaseException as exc:
                    job.reject(exc)
                else:
                    job.resolve(result)
                wall = time.perf_counter() - t0
                self._ewma_wall = (
                    wall if self._ewma_wall == 0.0
                    else 0.3 * wall + 0.7 * self._ewma_wall
                )
        finally:
            if self._pool is not None:
                self._pool.close()

    def _run_tasks(self, tasks: list[Task]):
        """Execute tasks under the configured envelope (dispatcher only).

        ``jobs >= 1`` lazily creates the persistent :class:`WorkerPool`
        (fault envelope: kill-replace-requeue); ``jobs = 0`` runs
        in-process.
        """
        if self.config.jobs >= 1:
            if self._pool is None:
                self._pool = WorkerPool(self.config.jobs)
            return run_batch(tasks, pool=self._pool).outcomes
        return run_batch(tasks, jobs=1).outcomes

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _client_connected(self, reader, writer) -> None:
        """Per-connection task wrapper: track for shutdown, always close."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_connection(self, reader, writer) -> None:
        """The keep-alive request loop with uniform error envelopes."""
        while True:
            try:
                request = await read_request(reader, self.config.max_body_bytes)
            except ServeError as exc:
                status, payload, headers = error_payload(exc)
                writer.write(
                    response_bytes(status, payload, headers=headers, keep_alive=False)
                )
                await writer.drain()
                return
            if request is None:
                return
            if self._draining:
                writer.write(
                    response_bytes(
                        503,
                        {"error": "draining", "message": "server is shutting down"},
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return
            self._active += 1
            t0 = time.perf_counter()
            try:
                status, payload, headers = await self._route(request)
            except ServeError as exc:
                status, payload, headers = error_payload(exc)
            except ReproError as exc:
                status = 400
                payload = {"error": type(exc).__name__, "message": str(exc)}
                headers = {}
            except Exception as exc:
                status = 500
                payload = {
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }
                headers = {}
            finally:
                self._active -= 1
            wall = time.perf_counter() - t0
            REGISTRY.counter("serve.requests").inc()
            self._trace_ring.append(
                {
                    "t": round(time.monotonic() - self._t0, 6),
                    "method": request.method,
                    "path": request.path,
                    "status": status,
                    "wall_ms": round(wall * 1000.0, 3),
                    "cache": payload.get("cache") if isinstance(payload, dict) else None,
                }
            )
            keep = (
                request.headers.get("connection", "keep-alive").lower() != "close"
                and not self._draining
            )
            writer.write(
                response_bytes(status, payload, headers=headers, keep_alive=keep)
            )
            await writer.drain()
            if not keep:
                return

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, req: Request) -> tuple[int, dict, dict]:
        """Dispatch one request; returns ``(status, payload, headers)``."""
        parts = req.parts
        if not parts:
            raise ServeError("no such endpoint: /", status=404, code="unknown-endpoint")
        head = parts[0]
        if head == "healthz" and req.method == "GET":
            return 200, {
                "ok": True,
                "uptime": round(time.monotonic() - self._t0, 3),
                "bdd_backend": self._backend_resolution(),
            }, {}
        if head == "metrics" and req.method == "GET":
            return 200, self._metrics_payload(), {}
        if head == "trace" and req.method == "GET":
            limit = int(req.query.get("limit", str(TRACE_RING_SIZE)))
            records = list(self._trace_ring)
            return 200, {"requests": records[-max(limit, 0):]}, {}
        if head == "circuits":
            return await self._route_circuits(req, parts)
        if head == "required" and req.method == "POST":
            return await self._handle_required(req)
        if head == "sessions":
            return await self._route_sessions(req, parts)
        if head == "debug":
            return await self._route_debug(req, parts)
        raise ServeError(
            f"no such endpoint: {req.method} {req.path}",
            status=404,
            code="unknown-endpoint",
        )

    async def _route_circuits(self, req: Request, parts: list[str]):
        """``/circuits``: list, register (idempotent), or inspect one."""
        if len(parts) == 1 and req.method == "GET":
            return 200, {"circuits": self.registry.describe_all()}, {}
        if len(parts) == 1 and req.method == "POST":
            entry = self.registry.register_source(req.json())
            return 200, {"circuit": entry.describe()}, {}
        if len(parts) == 2 and req.method == "GET":
            return 200, {"circuit": self.registry.get(parts[1]).describe()}, {}
        raise ServeError(
            f"no such endpoint: {req.method} {req.path}",
            status=404,
            code="unknown-endpoint",
        )

    # ------------------------------------------------------------------
    # /required
    # ------------------------------------------------------------------
    def _resolve_circuit(self, spec) -> RegisteredCircuit:
        """A circuit reference: a registered digest, or an inline spec."""
        if isinstance(spec, str):
            return self.registry.get(spec)
        if isinstance(spec, dict):
            return self.registry.register_source(spec)
        raise ServeError(
            "'circuit' must be a digest string or a circuit spec object",
            status=400,
            code="bad-circuit",
        )

    def _parse_required_params(self, body: dict):
        """Validate method / delays / required / options from a request."""
        method = body.get("method", "topological")
        if method not in METHODS:
            raise ServeError(
                f"unknown method {method!r} (choose from {list(METHODS)})",
                status=400,
                code="bad-method",
            )
        output_required = body.get("output_required", 0.0)
        if isinstance(output_required, dict):
            output_required = {str(k): float(v) for k, v in output_required.items()}
        elif isinstance(output_required, (int, float)) and not isinstance(
            output_required, bool
        ):
            output_required = float(output_required)
        else:
            raise ServeError(
                "'output_required' must be a number or an output->number map",
                status=400,
                code="bad-required",
            )
        delays = None
        if body.get("delays") is not None:
            from ..timing.delay import delay_model_from_spec

            try:
                delays = delay_model_from_spec(body["delays"])
            except (ReproError, TypeError, ValueError, KeyError) as exc:
                raise ServeError(
                    f"bad delay spec: {exc}", status=400, code="bad-delays"
                ) from exc
        options = dict(body.get("options") or {})
        unknown = sorted(set(options) - set(SEMANTIC_OPTIONS))
        if unknown:
            raise ServeError(
                f"unknown options {unknown} (semantic options: "
                f"{sorted(SEMANTIC_OPTIONS)})",
                status=400,
                code="bad-options",
            )
        if options.get("backend") is None and self.config.backend is not None:
            options["backend"] = self.config.backend
        if options.get("delay_model") is None and self.config.delay_model is not None:
            options["delay_model"] = self.config.delay_model
        if options.get("delay_model") not in (None, "scalar", "interval"):
            raise ServeError(
                f"unknown delay model {options['delay_model']!r} "
                "(choose from ['scalar', 'interval'])",
                status=400,
                code="bad-options",
            )
        if options.get("backend") is not None:
            from ..bdd.api import resolve_backend
            from ..errors import BddError

            try:
                resolve_backend(options["backend"])
            except BddError as exc:
                raise ServeError(str(exc), status=400, code="bad-options") from exc
        return method, delays, output_required, options

    async def _handle_required(self, req: Request) -> tuple[int, dict, dict]:
        """``POST /required``: cache probe, then coalesced computation."""
        body = req.json()
        entry = self._resolve_circuit(body.get("circuit"))
        method, delays, output_required, options = self._parse_required_params(body)
        key = required_key(entry.network, method, delays, output_required, options)

        with self._cache_lock:
            cached = self.cache.get(key)
        if cached is not None:
            REGISTRY.counter("serve.cache_hits").inc()
            result = CachedRequiredResult.from_payload(cached)
            result.circuit = entry.network.name
            return 200, self._required_payload(entry, key, result, cache="hit"), {}

        async def compute() -> dict:
            return await self._submit(
                f"required:{entry.network.name}:{method}",
                lambda: self._compute_required(
                    entry, method, delays, output_required, options, key
                ),
            )

        payload, joined = await self._coalescer.run(key.digest, compute)
        if joined:
            payload = {**payload, "cache": "coalesced"}
        return 200, payload, {}

    def _compute_required(
        self, entry, method, delays, output_required, options, key
    ) -> dict:
        """The leader's computation (dispatcher thread): run + store."""
        task = required_time_task(
            CircuitRef.inline(entry.network, key=entry.digest),
            method,
            output_required=output_required,
            delays=delays,
            options=options,
            cost=estimate_cost(entry.network, method, options),
            timeout=self.config.task_timeout,
            task_id=f"serve/{entry.digest[:12]}/{key.digest[:12]}",
        )
        outcome = self._run_tasks([task])[0]
        if not outcome.ok:
            code = "pool-fault" if outcome.error_type == "PoolFault" else "task-error"
            raise ServeError(
                f"analysis failed ({outcome.error_type}): {outcome.error}",
                status=500,
                code=code,
            )
        result = CachedRequiredResult.from_outcome(outcome.value)
        result.circuit = entry.network.name
        if not result.aborted:
            with self._cache_lock:
                self.cache.put(key, result.to_payload())
        REGISTRY.counter("serve.computations").inc()
        payload = self._required_payload(entry, key, result, cache="miss")
        payload["attempts"] = outcome.attempts
        payload["wall_seconds"] = round(outcome.elapsed, 6)
        return payload

    @staticmethod
    def _required_payload(entry, key, result: CachedRequiredResult, cache: str) -> dict:
        """The response envelope around one canonical cached result."""
        return {
            "cache": cache,
            "key": key.digest,
            "circuit": {"digest": entry.digest, "name": entry.network.name},
            "method": result.method,
            "row": result.row(),
            "table_row": result.table_row(),
        }

    # ------------------------------------------------------------------
    # /sessions
    # ------------------------------------------------------------------
    async def _route_sessions(self, req: Request, parts: list[str]):
        """``/sessions``: every job runs on the dispatcher (atomicity)."""
        if len(parts) == 1:
            if req.method == "GET":
                listing = await self._submit(
                    "sessions:list", lambda: self.sessions.describe_all()
                )
                return 200, {"sessions": listing}, {}
            if req.method == "POST":
                return await self._handle_session_create(req)
        elif len(parts) == 2:
            sid = parts[1]
            if req.method == "GET":
                payload = await self._submit(
                    f"sessions:get:{sid}", lambda: self._session_view(sid)
                )
                return 200, payload, {}
            if req.method == "DELETE":
                payload = await self._submit(
                    f"sessions:delete:{sid}",
                    lambda: {"deleted": self.sessions.delete(sid).describe()},
                )
                return 200, payload, {}
        elif len(parts) == 3 and req.method == "POST":
            sid, action = parts[1], parts[2]
            if action == "edits":
                body = req.json()
                payload = await self._submit(
                    f"sessions:edit:{sid}",
                    lambda: self._session_apply_edits(sid, body),
                )
                return 200, payload, {}
            if action == "verify":
                payload = await self._submit(
                    f"sessions:verify:{sid}", lambda: self._session_verify(sid)
                )
                return 200, payload, {}
        raise ServeError(
            f"no such endpoint: {req.method} {req.path}",
            status=404,
            code="unknown-endpoint",
        )

    async def _handle_session_create(self, req: Request):
        """``POST /sessions``: build a live NetworkSession off-loop."""
        body = req.json()
        entry = self._resolve_circuit(body.get("circuit"))
        method, delays, output_required, options = self._parse_required_params(body)

        def job() -> dict:
            try:
                session = NetworkSession(
                    entry.network,
                    method=method,
                    delays=delays,
                    output_required=output_required,
                    options=options,
                    cache=ResultCache(self.config.cache_dir),
                    jobs=1,
                )
            except EcoError as exc:
                raise ServeError(
                    f"cannot open session: {exc}", status=400, code="bad-circuit"
                ) from exc
            stored = self.sessions.create(session, entry.digest)
            return self._session_view(stored.session_id)

        payload = await self._submit(f"sessions:create:{entry.digest[:12]}", job)
        return 200, payload, {}

    def _session_view(self, sid: str) -> dict:
        """Describe + rows + merged view of one session (dispatcher only)."""
        stored = self.sessions.get(sid)
        return {
            "session": stored.describe(),
            "rows": jsonify(stored.session.rows()),
            "merged": jsonify(stored.session.merged()),
            "failed": stored.session.failed,
        }

    def _session_apply_edits(self, sid: str, body: dict) -> dict:
        """Apply one edit or an edit list; invalid edits are atomic.

        A rejected edit raises the structured 400 with the session
        observably unchanged (the ECO pre-mutation contract).  In a
        multi-edit payload the edits before the invalid one stay applied
        — each edit is individually atomic, the list is not a
        transaction.
        """
        stored = self.sessions.get(sid)
        specs = body.get("edits")
        if specs is None and "edit" in body:
            specs = [body["edit"]]
        if not isinstance(specs, list) or not specs:
            raise ServeError(
                "payload needs 'edit' (object) or 'edits' (non-empty list)",
                status=400,
                code="bad-edit-payload",
            )
        reports = []
        for spec in specs:
            try:
                result = stored.session.apply_edit(spec)
            except EcoError as exc:
                stored.edits_rejected += 1
                raise ServeError(
                    f"edit rejected: {exc}", status=400, code="invalid-edit"
                ) from exc
            stored.edits_accepted += 1
            reports.append(result.report())
        view = self._session_view(sid)
        view["edits"] = reports
        return view

    def _session_verify(self, sid: str) -> dict:
        """``verify_against_full_recompute`` for one stored session."""
        stored = self.sessions.get(sid)
        problems = stored.session.verify_against_full_recompute()
        return {
            "session": stored.describe(),
            "ok": not problems,
            "problems": problems,
        }

    # ------------------------------------------------------------------
    # /debug
    # ------------------------------------------------------------------
    async def _route_debug(self, req: Request, parts: list[str]):
        """``/debug``: raw pool tasks and remote shutdown (opt-in)."""
        if not self.config.debug_handlers:
            raise ServeError(
                "debug handlers are disabled (start with --debug-handlers)",
                status=403,
                code="debug-disabled",
            )
        if parts[1:] == ["task"] and req.method == "POST":
            return await self._handle_debug_task(req)
        if parts[1:] == ["shutdown"] and req.method == "POST":
            assert self._loop is not None
            self._loop.call_later(
                0.05, lambda: asyncio.ensure_future(self._shutdown())
            )
            return 200, {"ok": True, "draining": True}, {}
        raise ServeError(
            f"no such endpoint: {req.method} {req.path}",
            status=404,
            code="unknown-endpoint",
        )

    async def _handle_debug_task(self, req: Request):
        """Run (or detach) one ``_test_*`` pool task through the full
        admission / dispatch / fault envelope — the serving path's
        fault-injection hook."""
        body = req.json()
        kind = body.get("kind")
        if kind not in DEBUG_TASK_KINDS:
            raise ServeError(
                f"debug task kind must be one of {list(DEBUG_TASK_KINDS)}",
                status=400,
                code="bad-debug-task",
            )
        if kind == "_test_kill" and self.config.jobs < 1:
            raise ServeError(
                "_test_kill needs a worker pool (jobs >= 1); in-process "
                "execution would kill the server itself",
                status=400,
                code="kill-needs-pool",
            )
        self._debug_seq += 1
        task = Task(
            task_id=f"debug-{self._debug_seq}",
            kind=kind,
            payload=dict(body.get("payload") or {}),
            circuit_key="debug",
            cost=float(body.get("cost", 1.0)),
            timeout=body.get("timeout"),
            max_retries=int(body.get("max_retries", 2)),
        )

        def job() -> dict:
            outcome = self._run_tasks([task])[0]
            return {
                "ok": outcome.ok,
                "task_id": outcome.task_id,
                "value": jsonify(outcome.value),
                "error": outcome.error,
                "error_type": outcome.error_type,
                "attempts": outcome.attempts,
                "worker_pid": outcome.worker_pid,
            }

        if body.get("detach"):
            future = self._enqueue(f"debug:{kind}", job)
            future.add_done_callback(
                lambda f: f.cancelled() or f.exception()
            )
            return 200, {"detached": True, "task_id": task.task_id}, {}
        payload = await self._submit(f"debug:{kind}", job)
        return 200, payload, {}

    # ------------------------------------------------------------------
    # /metrics
    # ------------------------------------------------------------------
    def _backend_resolution(self) -> dict:
        """Which BDD kernel this daemon's analyses default to (a request
        option still overrides per call)."""
        from ..bdd.api import backend_resolution

        return backend_resolution(self.config.backend)

    def _metrics_payload(self) -> dict:
        """The registry snapshot plus live server gauges."""
        return {
            "metrics": REGISTRY.snapshot().as_dict(),
            "server": {
                "uptime": round(time.monotonic() - self._t0, 3),
                "bdd_backend": self._backend_resolution(),
                "queue_depth": self._queue.qsize(),
                "active_requests": self._active,
                "draining": self._draining,
                "circuits": len(self.registry),
                "sessions": len(self.sessions),
                "coalesced_total": self._coalescer.joined,
                "computations_led": self._coalescer.led,
                "jobs": self.config.jobs,
            },
        }


__all__ = ["ReproServer", "ServerConfig", "METHODS", "DEBUG_TASK_KINDS"]
