"""Warm circuit registry keyed by the content digest.

The daemon parses each netlist once and keeps the resulting
:class:`~repro.network.Network` warm, keyed by the PR-5
structure-only digest (:func:`repro.cache.network_digest`).  Clients then
address circuits by digest — the same identity the result cache uses — so
"same circuit" is exact, not name-based.  A bounded LRU keeps memory
predictable under many distinct uploads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..cache import network_digest
from ..errors import ParseError, ServeError
from ..network import Network, parse_bench, parse_blif
from ..parallel.tasks import _builtin_factory


@dataclass
class RegisteredCircuit:
    """One warm entry: the parsed network plus its identity digest."""

    digest: str
    network: Network

    def describe(self) -> dict:
        """JSON summary used by ``GET /circuits``."""
        return {
            "digest": self.digest,
            "name": self.network.name,
            "inputs": self.network.num_inputs,
            "outputs": self.network.num_outputs,
            "gates": self.network.num_gates,
        }


class CircuitRegistry:
    """Bounded LRU of parsed networks keyed by content digest."""

    def __init__(self, max_circuits: int = 64):
        if max_circuits < 1:
            raise ValueError(f"max_circuits must be >= 1, got {max_circuits}")
        self.max_circuits = max_circuits
        self._entries: OrderedDict[str, RegisteredCircuit] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, network: Network) -> RegisteredCircuit:
        """Insert (or refresh) a parsed network; returns its entry.

        Registering the same structure twice is idempotent — the digest
        collides and the existing entry is reused.
        """
        digest = network_digest(network)
        entry = self._entries.get(digest)
        if entry is None:
            entry = RegisteredCircuit(digest=digest, network=network)
            self._entries[digest] = entry
        self._entries.move_to_end(digest)
        while len(self._entries) > self.max_circuits:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def register_source(self, spec: dict) -> RegisteredCircuit:
        """Parse and register a circuit from a client-supplied spec.

        Accepted shapes: ``{"netlist": <text>, "format": "blif"|"bench"}``
        or ``{"factory": "mcnc:c432"}`` (the built-in circuit factories).
        Raises :class:`ServeError` on anything else.
        """
        if "netlist" in spec:
            fmt = spec.get("format", "blif")
            text = spec["netlist"]
            if not isinstance(text, str):
                raise ServeError(
                    "'netlist' must be a string", status=400, code="bad-circuit"
                )
            try:
                if fmt == "blif":
                    network = parse_blif(text)
                elif fmt == "bench":
                    network = parse_bench(text)
                else:
                    raise ServeError(
                        f"unknown netlist format {fmt!r}",
                        status=400,
                        code="bad-circuit",
                    )
            except ParseError as exc:
                raise ServeError(
                    f"netlist parse failed: {exc}", status=400, code="bad-circuit"
                ) from exc
            return self.register(network)
        if "factory" in spec:
            name = spec["factory"]
            try:
                network = _builtin_factory(name)()
            except Exception as exc:
                raise ServeError(
                    f"unknown circuit factory {name!r}: {exc}",
                    status=400,
                    code="bad-circuit",
                ) from exc
            return self.register(network)
        raise ServeError(
            "circuit spec needs 'netlist' or 'factory'",
            status=400,
            code="bad-circuit",
        )

    def get(self, digest: str) -> RegisteredCircuit:
        """Look up a warm circuit; 404 :class:`ServeError` when absent."""
        entry = self._entries.get(digest)
        if entry is None:
            raise ServeError(
                f"no registered circuit with digest {digest!r}",
                status=404,
                code="circuit-not-found",
            )
        self._entries.move_to_end(digest)
        return entry

    def describe_all(self) -> list[dict]:
        """JSON summaries for every warm circuit (most recent last)."""
        return [entry.describe() for entry in self._entries.values()]
