"""In-flight request coalescing keyed by the result-cache digest.

Two identical ``required`` requests — same circuit digest, same method,
same delay spec, same semantic options, i.e. the same
:func:`repro.cache.required_key` digest — share one computation.  The
first arrival (the *leader*) creates an :class:`asyncio.Future`, runs the
work, and publishes the result; concurrent arrivals (*joiners*) await the
same future.  The cache key already makes "identical" exact, so
coalescing is safe by construction: a joiner gets byte-identical rows to
what the leader stored.

All methods run on the event-loop thread; no locking is needed beyond
the loop's own serialization.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..obs import REGISTRY


class Coalescer:
    """Single-flight map: digest -> in-flight :class:`asyncio.Future`."""

    def __init__(self):
        self._inflight: dict[str, asyncio.Future] = {}
        #: lifetime counts, mirrored into the ``serve.coalesced`` counter
        self.joined = 0
        self.led = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(self, digest: str, compute: Callable[[], Awaitable[dict]]) -> tuple[dict, bool]:
        """Run ``compute`` once per concurrent digest; returns
        ``(result, joined)`` where ``joined`` is True when this caller
        piggybacked on a leader's in-flight computation.

        The leader's exception (if any) propagates to every joiner — a
        failed computation fails the whole coalesced group rather than
        retrying N times.
        """
        existing = self._inflight.get(digest)
        if existing is not None:
            self.joined += 1
            REGISTRY.counter("serve.coalesced").inc()
            return await asyncio.shield(existing), True

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # Joiners may all be cancelled before the leader resolves the
        # future; retrieve the exception so the loop never logs an
        # "exception was never retrieved" warning.
        future.add_done_callback(lambda f: f.cancelled() or f.exception())
        self._inflight[digest] = future
        self.led += 1
        try:
            result = await compute()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            raise
        else:
            if not future.done():
                future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(digest, None)
