"""Minimal HTTP/1.1 framing for the analysis daemon.

The server speaks just enough HTTP for JSON request/response traffic:
request-line + headers + ``Content-Length`` bodies in, fixed-length JSON
responses out (no chunked encoding, no multipart, no TLS).  Everything is
stdlib — ``asyncio`` streams on the read side, plain byte assembly on the
write side — so the daemon adds no dependencies (docs/SERVING.md).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from ..errors import ServeError

#: Upper bound on a request body; larger uploads are rejected with 413.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Upper bound on a single header line (request line included).
MAX_LINE_BYTES = 16 * 1024

#: Reason phrases for the status codes the daemon actually emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request: method, split path, headers, raw body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def parts(self) -> list[str]:
        """Path segments with the query string stripped, e.g.
        ``/sessions/s-1/edits`` -> ``["sessions", "s-1", "edits"]``."""
        path = self.path.split("?", 1)[0]
        return [p for p in path.split("/") if p]

    @property
    def query(self) -> dict[str, str]:
        """Query parameters as a flat ``str -> str`` map (last wins)."""
        if "?" not in self.path:
            return {}
        out: dict[str, str] = {}
        for chunk in self.path.split("?", 1)[1].split("&"):
            if not chunk:
                continue
            key, _, value = chunk.partition("=")
            out[key] = value
        return out

    def json(self) -> dict:
        """Decode the body as a JSON object (empty body -> ``{}``).

        Raises :class:`ServeError` (400, ``invalid-json``) on malformed
        payloads so route handlers never see a ``json.JSONDecodeError``.
        """
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(
                f"request body is not valid JSON: {exc}",
                status=400,
                code="invalid-json",
            ) from exc
        if not isinstance(payload, dict):
            raise ServeError(
                "request body must be a JSON object",
                status=400,
                code="invalid-json",
            )
        return payload


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY_BYTES
) -> Request | None:
    """Read one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`ServeError` on malformed framing (bad request line,
    oversized body, truncated stream mid-request).
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line or not line.strip():
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ServeError("request line too long", status=400, code="bad-request-line")
    try:
        method, path, _version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError as exc:
        raise ServeError(
            "malformed request line", status=400, code="bad-request-line"
        ) from exc

    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            raise ServeError(
                "connection closed mid-headers", status=400, code="truncated-request"
            )
        if line in (b"\r\n", b"\n"):
            break
        if len(line) > MAX_LINE_BYTES:
            raise ServeError("header line too long", status=400, code="bad-request-line")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ServeError(
            f"bad Content-Length: {length_text!r}", status=400, code="bad-request-line"
        ) from exc
    if length > max_body:
        raise ServeError(
            f"request body of {length} bytes exceeds limit {max_body}",
            status=413,
            code="body-too-large",
        )
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ServeError(
                "connection closed mid-body", status=400, code="truncated-request"
            ) from exc
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def response_bytes(
    status: int,
    payload: dict,
    *,
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Assemble a complete JSON response (status line, headers, body)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def error_payload(exc: ServeError) -> tuple[int, dict, dict[str, str]]:
    """Map a :class:`ServeError` to ``(status, json_payload, extra_headers)``."""
    headers: dict[str, str] = {}
    if exc.retry_after is not None:
        headers["Retry-After"] = str(max(1, int(round(exc.retry_after))))
    payload = {"error": exc.code, "message": str(exc)}
    if exc.retry_after is not None:
        payload["retry_after"] = max(1, int(round(exc.retry_after)))
    return exc.status, payload, headers
