"""Serve benchmark: warm daemon latency vs cold CLI, under seeded load.

Timed claim (the acceptance bar of docs/SERVING.md): for the Table-1
MCNC-like circuits, a **warm** ``repro serve`` daemon must answer a
``POST /required`` request with a p50 latency at least
``WARM_SPEEDUP_FLOOR``x (10x) better than a **cold** ``repro required``
CLI invocation of the same analysis — the daemon amortizes interpreter
startup, parsing, and the engine run into its registry and result
cache.  Two exactness gates ride along: every served canonical row must
be byte-identical to the in-process
:func:`repro.cache.cached_analyze_required_times` row (serial ground
truth), and N identical concurrent requests for an uncached key must
lead to exactly **one** computation (single-flight coalescing, verified
through the daemon's own ``/metrics`` counters).

The load phase is a seeded open-loop generator: arrival times are drawn
up front from ``random.Random(SEED)`` and honored regardless of
completions (so a slow server cannot slow the offered load), and the
p50/p99/throughput of the warm phase land in the BENCH record.

Run:  pytest benchmarks/bench_serve.py --benchmark-only -q

Script mode — ``python benchmarks/bench_serve.py [--smoke] [--json OUT]``
— runs cold CLI timing, the daemon load test, the coalescing probe, and
the parity sweep with hard assertions, then writes the BENCH_serve.json
record; CI gates on it via
``scripts/check_bdd_engine_regression.py --serve --smoke``.
"""

import http.client
import json
import os
import random
import statistics
import subprocess
import sys
import tempfile
import threading
import time

from _harness import TableCollector

from repro.cache import ResultCache, cached_analyze_required_times
from repro.circuits import mcnc_suite
from repro.network import write_blif

TABLE = TableCollector(
    "Serve: warm daemon vs cold CLI (seeded open-loop load)",
    ["circuit", "cold CLI p50 (s)", "warm p50 (s)", "speedup", "parity"],
)

#: warm daemon p50 must beat the cold CLI p50 by this factor, per circuit
WARM_SPEEDUP_FLOOR = 10.0
#: identical concurrent requests in the coalescing probe
COALESCE_FANIN = 6
#: the analysis every request runs (matches the CLI default engine)
METHOD = "approx2"
OPTIONS = {"engine": "sat"}
SEED = 20260808

SPECS = {spec.name: spec for spec in mcnc_suite()}


# ----------------------------------------------------------------------
# minimal HTTP client (stdlib only, one connection per call)
# ----------------------------------------------------------------------
def request(port: int, method: str, path: str, body=None, timeout=60.0):
    """One HTTP exchange with the daemon; returns (status, payload)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        data = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if data else {}
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


def counter(port: int, name: str) -> float:
    """One ``/metrics`` counter value (0.0 when never incremented)."""
    _, payload = request(port, "GET", "/metrics")
    return float(payload["metrics"].get(name, 0.0))


# ----------------------------------------------------------------------
# the daemon under test (subprocess, free port, warm result cache)
# ----------------------------------------------------------------------
class Daemon:
    """A ``repro serve`` subprocess bound to a free port."""

    def __init__(self, cache_dir: str, preload: list[str]):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root(), "src")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "0", "--debug-handlers", "--cache-dir", cache_dir,
             "--preload", *preload],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        banner = self.proc.stdout.readline().strip()
        assert banner.startswith("serving on http://"), banner
        self.port = int(banner.rsplit(":", 1)[1])

    def stop(self):
        self.proc.terminate()
        self.proc.wait(timeout=10)


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_circuits(tmpdir: str, names: list[str]) -> dict[str, str]:
    """The benchmark circuits as BLIF files (the CLI's input currency)."""
    paths = {}
    for name in names:
        path = os.path.join(tmpdir, f"{name}.blif")
        with open(path, "w") as fh:
            fh.write(write_blif(SPECS[name].network))
        paths[name] = path
    return paths


def percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(p * (len(ordered) - 1))))
    return ordered[index]


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------
def cold_cli_p50(path: str, rounds: int) -> float:
    """p50 wall of ``repro required`` cold runs (``--no-cache``)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root(), "src")
    walls = []
    for _ in range(rounds):
        start = time.perf_counter()
        result = subprocess.run(
            [sys.executable, "-m", "repro", "required", path,
             "--method", METHOD, "--no-cache", "--json"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        walls.append(time.perf_counter() - start)
        assert result.returncode == 0, result.stdout
    return statistics.median(walls)


def prime_and_check_parity(port: int, digests: dict[str, str],
                           cache_dir: str) -> dict[str, bool]:
    """First request per circuit (the one real computation), with the
    served canonical row compared byte-for-byte against the serial
    in-process ground truth."""
    truth_cache = ResultCache(cache_dir=None)
    parity = {}
    for name, digest in digests.items():
        status, served = request(
            port, "POST", "/required",
            {"circuit": digest, "method": METHOD, "options": OPTIONS},
        )
        assert status == 200, served
        truth, _ = cached_analyze_required_times(
            SPECS[name].network, METHOD, truth_cache, options=dict(OPTIONS)
        )
        parity[name] = json.dumps(served["row"], sort_keys=True) == json.dumps(
            truth.row(), sort_keys=True
        )
    return parity


def open_loop_load(port: int, digests: dict[str, str], n_requests: int,
                   rate_rps: float) -> dict:
    """Seeded open-loop traffic: arrival offsets drawn up front, each
    request fired on schedule from its own thread no matter how earlier
    requests are doing.  Returns warm latency/throughput stats."""
    rng = random.Random(SEED)
    names = sorted(digests)
    offset = 0.0
    plan = []
    for _ in range(n_requests):
        offset += rng.expovariate(rate_rps)
        plan.append((offset, rng.choice(names)))

    latencies = [None] * len(plan)
    failures = []

    def fire(i: int, name: str):
        start = time.perf_counter()
        try:
            status, payload = request(
                port, "POST", "/required",
                {"circuit": digests[name], "method": METHOD,
                 "options": OPTIONS},
            )
            if status != 200:
                failures.append((name, status, payload))
        except Exception as exc:  # noqa: BLE001 - recorded, gated below
            failures.append((name, -1, repr(exc)))
        latencies[i] = time.perf_counter() - start

    epoch = time.perf_counter()
    threads = []
    for i, (offset, name) in enumerate(plan):
        delay = epoch + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(target=fire, args=(i, name))
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - epoch

    assert not failures, f"warm load saw failures: {failures[:3]}"
    per_name = {name: [] for name in names}
    for (offset, name), latency in zip(plan, latencies):
        per_name[name].append(latency)
    return {
        "requests": len(plan),
        "offered_rps": rate_rps,
        "throughput_rps": round(len(plan) / wall, 1),
        "p50_seconds": round(percentile(latencies, 0.50), 6),
        "p99_seconds": round(percentile(latencies, 0.99), 6),
        "p50_by_circuit": {
            name: round(statistics.median(samples), 6)
            for name, samples in per_name.items() if samples
        },
    }


def coalescing_probe(port: int, digests: dict[str, str]) -> dict:
    """N identical requests for an uncached key while the dispatcher is
    pinned by a detached sleep — must cost exactly one computation."""
    digest = digests[sorted(digests)[0]]
    before_computations = counter(port, "serve.computations")
    before_coalesced = counter(port, "serve.coalesced")

    # pin the single dispatcher thread so all N requests arrive while
    # the leader's computation is still queued behind the sleep
    status, payload = request(
        port, "POST", "/debug/task",
        {"kind": "_test_sleep", "payload": {"seconds": 0.4}, "detach": True},
    )
    assert status == 200 and payload.get("detached"), payload

    # output_required 1.5 was never requested before: guaranteed cache miss
    body = {"circuit": digest, "method": METHOD, "options": OPTIONS,
            "output_required": 1.5}
    results = []

    def fire():
        results.append(request(port, "POST", "/required", body))

    threads = [threading.Thread(target=fire) for _ in range(COALESCE_FANIN)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert all(status == 200 for status, _ in results), results
    tags = sorted(payload["cache"] for _, payload in results)
    computations = counter(port, "serve.computations") - before_computations
    coalesced = counter(port, "serve.coalesced") - before_coalesced
    return {
        "fanin": COALESCE_FANIN,
        "computations": int(computations),
        "coalesced": int(coalesced),
        "hit_rate": round(coalesced / COALESCE_FANIN, 3),
        "tags": tags,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entries (the warm hot path, in-process daemon)
# ----------------------------------------------------------------------
def test_warm_required_hit(benchmark):
    """One warm ``POST /required`` round trip against a live daemon."""
    from repro.serve import ReproServer, ServerConfig

    with ReproServer(ServerConfig(port=0, jobs=0)) as server:
        digest = server.registry.register(SPECS["m1"].network).digest
        body = {"circuit": digest, "method": METHOD, "options": OPTIONS}
        status, payload = request(server.port, "POST", "/required", body)
        assert status == 200 and payload["cache"] == "miss"

        def warm():
            return request(server.port, "POST", "/required", body)

        status, payload = benchmark(warm)
        assert status == 200 and payload["cache"] == "hit"


def test_zzz_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    TABLE.print_once()


# ----------------------------------------------------------------------
# script mode: the BENCH_serve.json record with hard gates
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Warm-daemon vs cold-CLI benchmark with seeded load."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fewer circuits and requests (the CI gate)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write the BENCH record to this path")
    args = parser.parse_args(argv)

    names = ["m1", "m8"] if args.smoke else ["m1", "m4", "m8"]
    cli_rounds = 3 if args.smoke else 5
    n_requests = 60 if args.smoke else 300
    rate_rps = 120.0 if args.smoke else 200.0

    ok = True
    with tempfile.TemporaryDirectory() as tmpdir:
        paths = write_circuits(tmpdir, names)
        cold = {name: cold_cli_p50(paths[name], cli_rounds) for name in names}

        cache_dir = os.path.join(tmpdir, "cache")
        daemon = Daemon(cache_dir, [paths[name] for name in names])
        try:
            _, listing = request(daemon.port, "GET", "/circuits")
            digests = {c["name"]: c["digest"] for c in listing["circuits"]}
            assert set(digests) == set(names), digests

            parity = prime_and_check_parity(daemon.port, digests, cache_dir)
            load = open_loop_load(daemon.port, digests, n_requests, rate_rps)
            coalescing = coalescing_probe(daemon.port, digests)
        finally:
            daemon.stop()

    speedups = {}
    for name in names:
        warm_p50 = load["p50_by_circuit"][name]
        speedups[name] = round(cold[name] / max(warm_p50, 1e-9), 1)
        TABLE.add(name, round(cold[name], 4), warm_p50,
                  f"{speedups[name]}x", parity[name])
        print(
            f"{name:<4} cold CLI p50 {cold[name]:.4f}s  warm p50 "
            f"{warm_p50:.6f}s  ({speedups[name]}x, parity "
            f"{'ok' if parity[name] else 'FAIL'})"
        )
        if not parity[name]:
            print(f"FAIL: {name} served row diverged from the serial "
                  f"in-process row", file=sys.stderr)
            ok = False
        if speedups[name] < WARM_SPEEDUP_FLOOR:
            print(
                f"FAIL: {name} warm p50 only {speedups[name]}x better than "
                f"cold CLI (floor {WARM_SPEEDUP_FLOOR}x)", file=sys.stderr)
            ok = False
    print(
        f"load: {load['requests']} requests at {load['offered_rps']} rps "
        f"offered -> {load['throughput_rps']} rps served, "
        f"p50 {load['p50_seconds']:.6f}s p99 {load['p99_seconds']:.6f}s"
    )
    print(
        f"coalescing: {coalescing['fanin']} identical requests -> "
        f"{coalescing['computations']} computation(s), "
        f"{coalescing['coalesced']} coalesced "
        f"(hit rate {coalescing['hit_rate']:.0%})"
    )
    if coalescing["computations"] != 1:
        print(
            f"FAIL: coalescing probe cost {coalescing['computations']} "
            f"computations (want exactly 1)", file=sys.stderr)
        ok = False
    if coalescing["coalesced"] != COALESCE_FANIN - 1:
        print(
            f"FAIL: only {coalescing['coalesced']} of "
            f"{COALESCE_FANIN - 1} duplicate requests coalesced",
            file=sys.stderr)
        ok = False

    if args.json:
        payload = {
            "benchmark": "serve",
            "smoke": args.smoke,
            "method": METHOD,
            "seed": SEED,
            "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
            "cold_cli_p50_seconds": {k: round(v, 4) for k, v in cold.items()},
            "speedups": speedups,
            "parity": parity,
            "load": load,
            "coalescing": coalescing,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"record written to {args.json}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
