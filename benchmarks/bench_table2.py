"""Table 2 — approximate algorithm 2 on the ISCAS-85 substitute suite.

Regenerates the paper's Table 2: for each circuit, whether a non-trivial
required time exists, the CPU time until the *first* r ≠ r_⊥ is
validated, and the CPU time until the maximal r is found.  Shape targets:

* the parity/ripple circuits (s499, s880, s1355 — the C499/C880/C1355
  analogues) report **No**;
* everything else reports **Yes**;
* on the hard circuits (s3540, s6288 — the "> 12 hours" rows) the run
  aborts on its budget but still reports its first non-trivial time,
  reproducing the paper's observation that useful information arrives
  within the first seconds.

Run:  pytest benchmarks/bench_table2.py --benchmark-only -q
"""

import pytest

from _harness import TableCollector
from conftest import bench_budget
from repro.circuits import iscas_suite
from repro.core.approx2 import Approx2Analysis

SPECS = {spec.name: spec for spec in iscas_suite()}

TABLE = TableCollector(
    "Table 2 -- Required Time Computation (approx 2) on the ISCAS-like suite",
    [
        "circuit",
        "paper",
        "#PI",
        "nontrivial",
        "first r != r_bot (s)",
        "r_max (s)",
        "status",
    ],
)

# the two C3540/C6288-style rows get a deliberately small budget so they
# abort, like the paper's "> 12 hours" entries (their full r_max takes
# minutes-to-hours; their first non-trivial r arrives within seconds)
HARD = {"s3540", "s6288"}


@pytest.mark.parametrize("name", sorted(SPECS))
def test_approx2(benchmark, name):
    spec = SPECS[name]
    budget = bench_budget(20.0) if name in HARD else bench_budget(60.0)

    def run():
        return Approx2Analysis(
            spec.network,
            output_required=0.0,
            engine="sat",
            time_budget=budget,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    TABLE.add(
        spec.name,
        spec.paper_name,
        spec.network.num_inputs,
        result.nontrivial,
        result.time_to_first_nontrivial,
        result.time_to_max,
        "> budget" if result.aborted else "ok",
    )


def test_zzz_shape_and_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {r[0]: r for r in TABLE.rows}

    # the parity/ripple controls report No — all their paths are true
    for name in ["s499", "s880", "s1355"]:
        assert rows[name][3] is False, f"{name} unexpectedly non-trivial"
    # the false-path rich circuits report Yes
    for name in ["s432", "s1908", "s2670", "s5315", "s7552"]:
        assert rows[name][3] is True, f"{name} unexpectedly trivial"

    # the hard rows abort on budget yet still found a non-trivial r fast
    for name in sorted(HARD):
        row = rows[name]
        if row[6] == "> budget":
            assert row[3] is True
            assert row[4] is not None
            # first non-trivial well inside the budget (the C3540/C6288
            # effect: "found non-trivial required times within a second")
            assert row[4] < bench_budget(20.0)

    # time-to-first <= time-to-max wherever both completed
    for row in TABLE.rows:
        if row[4] is not None and row[5] is not None:
            assert row[4] <= row[5] + 1e-9

    TABLE.print_once()
