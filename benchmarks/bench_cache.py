"""Result-cache benchmark: cold vs warm vs incremental, with parity gates.

Timed claims (the acceptance bar of docs/CACHING.md):

* a **warm** ``required`` analysis served from the cache is bit-identical
  to the cold run on the canonical row and ≥5x faster for the heavy
  methods (exact / approx1);
* an **incremental** re-analysis after a single-cone mutation recomputes
  only the dirty cones (asserted both on the result and on the
  ``cache.*`` metric deltas) and merges bit-identically to a full
  recompute.

Run:  pytest benchmarks/bench_cache.py --benchmark-only -q

Script mode — ``python benchmarks/bench_cache.py [--smoke] [--json OUT]``
— runs the full cold/warm/incremental matrix with hard assertions and
writes the BENCH_cache.json record; CI runs ``--smoke``.
"""

import json
import sys
import time

from _harness import TableCollector

from repro.cache import (
    ResultCache,
    cached_analyze_required_times,
    incremental_required_times,
)
from repro.circuits import c17, figure4
from repro.obs.metrics import REGISTRY

TABLE = TableCollector(
    "Result cache: cold vs warm (canonical-row parity enforced)",
    ["analysis", "cold (s)", "warm (s)", "speedup", "parity"],
)

#: methods whose warm path must be ≥ this much faster than cold
SPEEDUP_FLOOR = 5.0
HEAVY_METHODS = ("exact", "approx1")


def mutated_c17():
    """C17 with gate G10 rewritten NAND → AND: dirties only G22's cone."""
    from repro.network import Network

    net = Network("c17")
    for pi in ["G1", "G2", "G3", "G6", "G7"]:
        net.add_input(pi)
    net.add_gate("G10", "AND", ["G1", "G3"])
    net.add_gate("G11", "NAND", ["G3", "G6"])
    net.add_gate("G16", "NAND", ["G2", "G11"])
    net.add_gate("G19", "NAND", ["G11", "G7"])
    net.add_gate("G22", "NAND", ["G10", "G16"])
    net.add_gate("G23", "NAND", ["G16", "G19"])
    net.set_outputs(["G22", "G23"])
    return net


def _cold_warm(network, method, required, cache, options=None):
    """One cold+warm pair through ``cache``; returns the record dict."""
    t0 = time.perf_counter()
    cold, hit0 = cached_analyze_required_times(
        network, method, cache, output_required=required, options=options
    )
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm, hit1 = cached_analyze_required_times(
        network, method, cache, output_required=required, options=options
    )
    warm_s = time.perf_counter() - t0
    assert not hit0, f"{method}: first lookup hit a fresh cache"
    assert hit1, f"{method}: warm lookup missed"
    assert not cold.aborted, f"{method}: cold run aborted"
    parity = json.dumps(cold.row(), sort_keys=True) == json.dumps(
        warm.row(), sort_keys=True
    )
    assert parity, f"{method}: warm row differs from cold row"
    return {
        "circuit": network.name,
        "method": method,
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / max(warm_s, 1e-9), 1),
        "parity": parity,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entries (the warm lookup is the service hot path)
# ----------------------------------------------------------------------
def test_warm_exact_lookup(benchmark, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    record = _cold_warm(figure4(), "exact", 2.0, cache)

    def warm():
        return cached_analyze_required_times(
            figure4(), "exact", cache, output_required=2.0
        )

    result, hit = benchmark(warm)
    assert hit and result.nontrivial
    TABLE.add(
        "exact/figure4",
        record["cold_seconds"],
        record["warm_seconds"],
        f"{record['speedup']}x",
        record["parity"],
    )


def test_warm_approx1_lookup(benchmark, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    record = _cold_warm(figure4(), "approx1", 2.0, cache)

    def warm():
        return cached_analyze_required_times(
            figure4(), "approx1", cache, output_required=2.0
        )

    result, hit = benchmark(warm)
    assert hit and result.nontrivial
    TABLE.add(
        "approx1/figure4",
        record["cold_seconds"],
        record["warm_seconds"],
        f"{record['speedup']}x",
        record["parity"],
    )


def test_incremental_single_cone(benchmark, tmp_path):
    """Mutating one cone of C17 must recompute exactly that cone."""
    cache = ResultCache(str(tmp_path / "cache"))
    cold = incremental_required_times(c17(), "approx2", cache, output_required=5.0)
    assert sorted(cold.dirty) == ["G22", "G23"] and not cold.clean

    def incremental():
        return incremental_required_times(
            mutated_c17(), "approx2", cache, output_required=5.0
        )

    # the first timed round recomputes G22 and caches it, so later rounds
    # may serve both cones; G23's cone must hit in every round
    result = benchmark(incremental)
    assert "G23" in result.clean and not result.failed
    TABLE.add("incremental/c17", cold.wall, result.wall, "-", True)


def test_zzz_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    TABLE.print_once()


# ----------------------------------------------------------------------
# script mode: the BENCH_cache.json record with hard gates
# ----------------------------------------------------------------------
def script_matrix(smoke: bool):
    matrix = [
        (figure4, "exact", 2.0, None),
        (figure4, "approx1", 2.0, None),
        (c17, "approx2", 5.0, {"engine": "sat"}),
        (c17, "topological", 5.0, None),
    ]
    if not smoke:
        from repro.circuits import mcnc_suite

        m1 = next(s for s in mcnc_suite() if s.name == "m1")
        matrix += [
            (lambda m1=m1: m1.network.copy(), "approx1", 0.0, None),
            (lambda m1=m1: m1.network.copy(), "approx2", 0.0, {"engine": "sat"}),
        ]
    return matrix


def run_incremental_scenario(jobs: int = 1) -> dict:
    """Cold → warm → single-cone mutation, with metric-delta assertions."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as td:
        cache = ResultCache(td)
        cold = incremental_required_times(
            c17(), "approx2", cache, output_required=5.0, jobs=jobs
        )
        assert sorted(cold.dirty) == ["G22", "G23"], cold.report()
        warm = incremental_required_times(
            c17(), "approx2", cache, output_required=5.0, jobs=jobs
        )
        assert not warm.dirty and sorted(warm.clean) == ["G22", "G23"]
        assert warm.merged == cold.merged

        before = REGISTRY.snapshot()
        mutated = incremental_required_times(
            mutated_c17(), "approx2", cache, output_required=5.0, jobs=jobs
        )
        delta = REGISTRY.snapshot().diff(before)
        # only G22's cone contains the mutated gate: exactly one miss
        # (the dirty cone) and at least one hit (the clean cone)
        assert mutated.dirty == ["G22"], mutated.report()
        assert mutated.clean == ["G23"], mutated.report()
        assert delta.get("cache.misses", 0) == 1, delta
        assert delta.get("cache.hits", 0) >= 1, delta

        # the incremental merge must be bit-identical to a full recompute
        full = incremental_required_times(
            mutated_c17(),
            "approx2",
            ResultCache(None),
            output_required=5.0,
            jobs=jobs,
        )
        assert mutated.merged == full.merged
        return {
            "circuit": "c17",
            "method": "approx2",
            "cold_seconds": round(cold.wall, 6),
            "warm_seconds": round(warm.wall, 6),
            "mutated_seconds": round(mutated.wall, 6),
            "recomputed_after_mutation": mutated.dirty,
            "cached_after_mutation": mutated.clean,
            "full_recompute_parity": True,
        }


def main(argv=None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        description="Cold/warm/incremental result-cache benchmark."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small circuits only (the CI gate)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write the BENCH record to this path")
    args = parser.parse_args(argv)

    records = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as td:
        cache = ResultCache(td)
        for factory, method, required, options in script_matrix(args.smoke):
            record = _cold_warm(factory(), method, required, cache, options)
            records.append(record)
            floor = SPEEDUP_FLOOR if method in HEAVY_METHODS else None
            if floor is not None and record["speedup"] < floor:
                print(
                    f"FAIL: warm {method} on {record['circuit']} only "
                    f"{record['speedup']}x faster (floor {floor}x)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"{record['circuit']:<10} {method:<12} "
                f"cold {record['cold_seconds']:.4f}s  "
                f"warm {record['warm_seconds']:.4f}s  "
                f"({record['speedup']}x, parity ok)"
            )

    incremental = run_incremental_scenario()
    print(
        f"incremental c17: cold {incremental['cold_seconds']:.4f}s, "
        f"warm {incremental['warm_seconds']:.4f}s, after mutation "
        f"recomputed only {incremental['recomputed_after_mutation']}"
    )

    if args.json:
        payload = {
            "benchmark": "cache",
            "smoke": args.smoke,
            "speedup_floor": SPEEDUP_FLOOR,
            "results": records,
            "incremental": incremental,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"record written to {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
