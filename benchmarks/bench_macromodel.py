"""Extension bench — hierarchical analysis via black-box macro-models.

The paper's conclusions point to [7]: false-path-exact abstract delay
models for black boxes.  This bench measures extraction cost and model
footprint on carry-skip blocks, and the accuracy gap between the naive
pin-to-pin abstraction (topological) and the macro-model under a late
carry-in — the situation hierarchical flows hit constantly.

Run:  pytest benchmarks/bench_macromodel.py --benchmark-only -q
"""

import pytest

from _harness import TableCollector
from repro.circuits import carry_skip_block
from repro.core.macromodel import TimingMacroModel
from repro.timing import TopologicalTiming

TABLE = TableCollector(
    "Extension: black-box macro-model vs naive pin-to-pin abstraction",
    ["box", "model atoms", "naive delay (cin@10)", "exact delay (cin@10)", "pessimism"],
)


@pytest.mark.parametrize("pad", [1, 2, 3])
def test_extraction_and_accuracy(benchmark, pad):
    block = carry_skip_block(cin_pad=pad)

    def run():
        return TimingMacroModel.extract(block)

    model = benchmark(run)
    topo = TopologicalTiming.analyze(block, output_required=0.0)
    arr = {pi: 0.0 for pi in block.inputs}
    arr["cin"] = 10.0
    naive = 10.0 + topo.topological_delay()
    exact = model.worst_arrival("cout", arr)
    TABLE.add(
        f"cskip_pad{pad}",
        model.size(),
        naive,
        exact,
        naive - exact,
    )
    # the false ripple path must not be charged against the late carry-in
    assert exact < naive


def test_zzz_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    TABLE.print_once()
