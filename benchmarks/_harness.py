"""Shared helpers for the benchmark suite.

Each bench file regenerates one of the paper's tables (or one worked
example) and prints rows in the paper's format at the end of the module's
run, in addition to the pytest-benchmark timing records.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableCollector:
    """Accumulates rows and renders a paper-style table once."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    _printed: bool = False

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError("row arity mismatch")
        self.rows.append(list(values))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [_fmt(v) for v in row]
            widths = [max(w, len(r)) for w, r in zip(widths, rendered)]
            rendered_rows.append(rendered)
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for rendered in rendered_rows:
            lines.append("  ".join(r.ljust(w) for r, w in zip(rendered, widths)))
        return "\n".join(lines)

    def print_once(self) -> None:
        if not self._printed and self.rows:
            self._printed = True
            print("\n" + self.render() + "\n")


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "Yes" if value else "No"
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


def star(nontrivial: bool) -> str:
    """The paper's Table 1 annotation: '*' marks a non-trivial result."""
    return "*" if nontrivial else ""


def traced_pedantic(benchmark, fn, rounds: int = 1, iterations: int = 1):
    """``benchmark.pedantic`` with a span trace around each timed call.

    The phase breakdown of the last round lands in
    ``benchmark.extra_info["spans"]`` (seconds per top-level span), so
    every benchmark JSON row carries a per-phase breakdown.  Metric
    capture is off — snapshotting the registry at every span boundary
    would bill observability work to the benchmark under test.
    """
    from repro.obs.trace import start_trace, stop_trace

    spans: dict[str, float] = {}

    def timed():
        start_trace(capture_metrics=False)
        try:
            return fn()
        finally:
            trace = stop_trace()
            spans.clear()
            spans.update(trace.phase_breakdown())

    result = benchmark.pedantic(timed, rounds=rounds, iterations=iterations)
    benchmark.extra_info["spans"] = spans
    return result


@dataclass
class BddStatsCollector:
    """Accumulates :meth:`BddManager.statistics` snapshots per run.

    Renders one engine-counter row per analysis (cache lookups, hit rate,
    peak live nodes, GC and reorder activity) next to the paper-style
    table, so cache behavior regressions show up in benchmark logs.
    """

    title: str
    _table: TableCollector | None = None

    def __post_init__(self):
        self._table = TableCollector(
            self.title,
            ["run", "lookups", "hit rate", "peak nodes", "GC", "reclaimed",
             "evictions", "reorders"],
        )

    def add(self, label: str, stats: dict | None) -> None:
        """Record one run's ``statistics()`` dict (ignores ``None``)."""
        if not stats:
            return
        caches = stats.get("caches", {})
        evictions = sum(c.get("evictions", 0) for c in caches.values())
        lookups = stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
        self._table.add(
            label,
            lookups,
            f"{stats.get('cache_hit_rate', 0.0):.1%}",
            stats.get("peak_live_nodes", 0),
            stats.get("gc_runs", 0),
            stats.get("gc_reclaimed", 0),
            evictions,
            stats.get("reorder_events", 0),
        )

    def print_once(self) -> None:
        self._table.print_once()
